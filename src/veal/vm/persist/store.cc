#include "veal/vm/persist/store.h"

#include <algorithm>
#include <filesystem>

#include "veal/support/assert.h"
#include "veal/support/metrics/metrics.h"

namespace veal::persist {

namespace fs = std::filesystem;

namespace {

constexpr const char* kLockName = "LOCK";
constexpr const char* kLegacyManifestName = "MANIFEST";
constexpr const char* kLegacyBlobSuffix = ".vpb";
constexpr const char* kTmpSuffix = ".tmp";

bool
hasSuffix(const std::string& name, const char* suffix)
{
    const std::size_t n = std::char_traits<char>::length(suffix);
    return name.size() > n &&
           name.compare(name.size() - n, n, suffix) == 0;
}

}  // namespace

PersistentStore::PersistentStore(std::string directory,
                                 StoreOptions options,
                                 metrics::Registry* registry)
    : directory_(std::move(directory)),
      options_(options),
      registry_(registry),
      vfs_(options.vfs != nullptr ? options.vfs : realVfs()),
      segments_(directory_, vfs_, options.segment_bytes),
      manifest_(directory_, vfs_)
{
    VEAL_ASSERT(options_.max_entries >= 1,
                "persistent store needs at least one entry");
    options_.protected_percent =
        std::clamp(options_.protected_percent, 0, 100);
    options_.compact_garbage_percent =
        std::clamp(options_.compact_garbage_percent, 1, 100);
    if (!vfs_->createDirectories(directory_)) {
        countIoError();
        enterReadOnly();
    } else {
        lock_ = vfs_->tryLockExclusive(
            (fs::path(directory_) / kLockName).string());
        if (lock_ == nullptr) {
            // Another store (process or instance) owns the directory:
            // serve what is there, write nothing -- the read-only
            // cache tier.
            enterReadOnly();
        }
    }
    openIndex();
}

PersistentStore::~PersistentStore()
{
    flush();
}

void
PersistentStore::count(const char* name, std::int64_t delta)
{
    if (registry_ != nullptr && delta != 0)
        registry_->add(std::string("vm.persist.") + name, delta);
}

void
PersistentStore::countIoError()
{
    ++stats_.io_errors;
    count("io_error");
}

void
PersistentStore::enterReadOnly()
{
    if (read_only_)
        return;
    read_only_ = true;
    stats_.readonly = 1;
    count("readonly");
}

int
PersistentStore::allocSlot()
{
    if (free_head_ >= 0) {
        const int slot = free_head_;
        free_head_ = slots_[static_cast<std::size_t>(slot)].next;
        slots_[static_cast<std::size_t>(slot)] = Slot{};
        return slot;
    }
    slots_.emplace_back();
    return static_cast<int>(slots_.size()) - 1;
}

void
PersistentStore::freeSlot(int slot)
{
    Slot& s = slots_[static_cast<std::size_t>(slot)];
    s = Slot{};
    s.next = free_head_;
    free_head_ = slot;
}

void
PersistentStore::pushFront(List& list, int slot)
{
    Slot& s = slots_[static_cast<std::size_t>(slot)];
    s.prev = -1;
    s.next = list.head;
    if (list.head >= 0)
        slots_[static_cast<std::size_t>(list.head)].prev = slot;
    list.head = slot;
    if (list.tail < 0)
        list.tail = slot;
    ++list.count;
}

void
PersistentStore::unlink(List& list, int slot)
{
    Slot& s = slots_[static_cast<std::size_t>(slot)];
    if (s.prev >= 0)
        slots_[static_cast<std::size_t>(s.prev)].next = s.next;
    else
        list.head = s.next;
    if (s.next >= 0)
        slots_[static_cast<std::size_t>(s.next)].prev = s.prev;
    else
        list.tail = s.prev;
    s.prev = -1;
    s.next = -1;
    --list.count;
}

void
PersistentStore::touch(int slot)
{
    Slot& s = slots_[static_cast<std::size_t>(slot)];
    s.epoch = ++epoch_;
    // A touched entry moves to the protected front; probation is only
    // for keys that have not proven reuse yet.  Recency moves are
    // in-memory only -- the manifest log records the epoch at save
    // time and flush() snapshots the final order, so hits stay reads.
    unlink(lists_[s.segment], slot);
    s.segment = kProtected;
    pushFront(lists_[kProtected], slot);
    // Keep the protected segment within its share by demoting its tail
    // back to probation (not evicting -- it keeps its record).
    const int protected_cap = std::max(
        0, options_.max_entries * options_.protected_percent / 100);
    while (lists_[kProtected].count > protected_cap) {
        const int demoted = lists_[kProtected].tail;
        unlink(lists_[kProtected], demoted);
        slots_[static_cast<std::size_t>(demoted)].segment = kProbation;
        pushFront(lists_[kProbation], demoted);
    }
}

void
PersistentStore::insertIndexed(const std::string& key,
                               const RecordRef& ref, std::int64_t epoch,
                               int segment)
{
    const int slot = allocSlot();
    Slot& s = slots_[static_cast<std::size_t>(slot)];
    s.key = key;
    s.ref = ref;
    s.epoch = epoch;
    s.segment = segment;
    s.live = true;
    pushFront(lists_[segment], slot);
    index_[key] = slot;
}

void
PersistentStore::dropEntry(int slot)
{
    Slot& s = slots_[static_cast<std::size_t>(slot)];
    VEAL_ASSERT(s.live, "dropping a dead store slot");
    segments_.markDead(s.ref);
    index_.erase(s.key);
    unlink(lists_[s.segment], slot);
    freeSlot(slot);
}

void
PersistentStore::removeEntry(int slot, bool count_as_eviction)
{
    const std::string key = slots_[static_cast<std::size_t>(slot)].key;
    // Commit the removal so a restart cannot resurrect the entry; a
    // failed append degrades to read-only but the in-memory removal
    // still happens (this instance stops serving the entry either way).
    if (!read_only_) {
        const bool ok = count_as_eviction
                            ? manifest_.appendEvict(key)
                            : manifest_.appendInvalidate(key);
        if (!ok) {
            countIoError();
            enterReadOnly();
        }
    }
    dropEntry(slot);
    if (count_as_eviction) {
        ++stats_.evictions;
        count("evictions");
    }
}

void
PersistentStore::evictOne()
{
    // Probation tail first (the entry with the least proven reuse);
    // an all-protected store falls back to the protected tail.
    int victim = lists_[kProbation].tail;
    if (victim < 0)
        victim = lists_[kProtected].tail;
    VEAL_ASSERT(victim >= 0, "evicting from an empty store");
    removeEntry(victim, /*count_as_eviction=*/true);
}

// --- Recovery -------------------------------------------------------

void
PersistentStore::openIndex()
{
    const std::vector<std::string> names = vfs_->listDir(directory_);
    if (!read_only_)
        sweepTmpFiles(names);

    // High-water per segment: the end of the last *committed* record.
    // Collected from every manifest add (superseded ones too -- their
    // bytes were committed even if later garbage) or from a scan, then
    // used to truncate uncommitted tail bytes.
    std::unordered_map<std::int64_t, std::int64_t> high_water;
    bool needs_rewrite = false;

    const ManifestReplay replay = manifest_.replay();
    bool replayed = false;
    if (replay.header_ok) {
        for (const auto& record : replay.records) {
            if (record.kind != ManifestRecord::Kind::kAdd)
                continue;
            auto& hw = high_water[record.ref.segment];
            hw = std::max(hw, record.ref.offset + kSegmentRecordHeader +
                                  record.ref.length);
        }
        replayed = replayManifest(replay);
        if (replay.torn_tail) {
            ++stats_.tail_truncations;
            count("tail_truncations");
            if (!read_only_ && !manifest_.truncateTo(replay.valid_bytes))
                countIoError();
        }
        if (replay.corrupt_lines > 0) {
            stats_.corrupt += replay.corrupt_lines;
            count("corrupt", replay.corrupt_lines);
            needs_rewrite = true;
        }
    } else if (replay.present) {
        // Exists but is not our format (or the header itself tore):
        // set it aside for post-mortem and fall back to the scan.
        if (!read_only_ &&
            !vfs_->renameFile(manifest_.path(),
                              manifest_.path() + ".corrupt"))
            countIoError();
    }

    if (!replayed) {
        scanRebuild(names);
        // The scan trusts whole records wherever they sit, so the
        // high-water of each segment is everything the scan accepted
        // (recomputed inside scanRebuild via the per-file valid_bytes
        // it stashed in scan_high_water_).
        high_water = std::move(scan_high_water_);
        needs_rewrite = true;
    }

    reconcileSegments(names, high_water);

    // Seed segment occupancy from the entries that survived.
    for (const Slot& s : slots_) {
        if (s.live)
            segments_.addLiveRef(s.ref);
    }

    if (!read_only_) {
        migrateLegacy(names);
        if (std::find(names.begin(), names.end(), kLegacyManifestName) !=
                names.end() &&
            !vfs_->removeFile(
                (fs::path(directory_) / kLegacyManifestName).string()))
            countIoError();
    }

    // A shrunk --cache-capacity evicts the excess immediately, so the
    // on-disk footprint always respects the configured bound.
    while (static_cast<int>(index_.size()) > options_.max_entries)
        evictOne();

    if (needs_rewrite && !read_only_)
        rewriteManifest();
    stats_.size = size();
}

void
PersistentStore::sweepTmpFiles(const std::vector<std::string>& names)
{
    for (const std::string& name : names) {
        if (!hasSuffix(name, kTmpSuffix))
            continue;
        if (vfs_->removeFile((fs::path(directory_) / name).string())) {
            ++stats_.tmp_swept;
            count("tmp_swept");
        } else {
            countIoError();
        }
    }
}

bool
PersistentStore::replayManifest(const ManifestReplay& replay)
{
    // Last writer wins; evict/invalidate drop the key.  First-seen
    // order is kept so the epoch sort below has a deterministic tie
    // order.
    struct Final {
        std::string key;
        RecordRef ref;
        std::int64_t epoch = 0;
        int lru_segment = kProbation;
        bool live = false;
    };
    std::vector<Final> finals;
    std::unordered_map<std::string, std::size_t> by_key;
    for (const auto& record : replay.records) {
        const auto it = by_key.find(record.key);
        if (record.kind == ManifestRecord::Kind::kAdd) {
            Final entry;
            entry.key = record.key;
            entry.ref = record.ref;
            entry.epoch = record.epoch;
            entry.lru_segment = record.lru_segment == 1 ? kProtected
                                                        : kProbation;
            entry.live = true;
            if (it == by_key.end()) {
                by_key.emplace(record.key, finals.size());
                finals.push_back(std::move(entry));
            } else {
                finals[it->second] = std::move(entry);
            }
        } else if (it != by_key.end()) {
            finals[it->second].live = false;
        }
    }

    // Oldest-first insertion rebuilds the exact recency order (each
    // insert lands at its segment's front).
    std::vector<const Final*> alive;
    for (const Final& entry : finals) {
        if (entry.live)
            alive.push_back(&entry);
    }
    std::stable_sort(alive.begin(), alive.end(),
                     [](const Final* a, const Final* b) {
                         return a->epoch < b->epoch;
                     });
    for (const Final* entry : alive) {
        insertIndexed(entry->key, entry->ref, entry->epoch,
                      entry->lru_segment);
        epoch_ = std::max(epoch_, entry->epoch);
    }
    return true;
}

void
PersistentStore::scanRebuild(const std::vector<std::string>& names)
{
    // No (or untrustworthy) manifest log: re-derive the index from the
    // segment records themselves, oldest segment first so a later
    // record for the same key wins -- the same last-writer-wins rule
    // as the replay.  Every payload re-validates on the way in.
    std::vector<std::int64_t> segs;
    for (const std::string& name : names) {
        if (const auto seg = SegmentLog::parseSegmentName(name))
            segs.push_back(*seg);
    }
    std::sort(segs.begin(), segs.end());
    if (segs.empty())
        return;

    for (const std::int64_t seg : segs) {
        const SegmentScan scan =
            segments_.scanFile(segments_.segmentPath(seg));
        scan_high_water_[seg] = scan.valid_bytes;
        if (scan.corrupt_records > 0) {
            stats_.corrupt += scan.corrupt_records;
            count("corrupt", scan.corrupt_records);
        }
        for (const ScannedRecord& record : scan.records) {
            auto decoded =
                decodeBlob(record.payload.data(), record.payload.size());
            if (const auto* error = std::get_if<BlobError>(&decoded)) {
                if (*error == BlobError::kVersionSkew) {
                    ++stats_.version_skew;
                    count("version_skew");
                } else {
                    ++stats_.corrupt;
                    count("corrupt");
                }
                continue;
            }
            const auto& image = std::get<PersistedImage>(decoded);
            RecordRef ref;
            ref.segment = seg;
            ref.offset = record.offset;
            ref.length = static_cast<std::int64_t>(record.payload.size());
            const auto it = index_.find(image.key);
            if (it != index_.end()) {
                // Later record supersedes: retarget in place.
                slots_[static_cast<std::size_t>(it->second)].ref = ref;
            } else {
                insertIndexed(image.key, ref, ++epoch_, kProbation);
            }
        }
    }
    ++stats_.manifest_rebuilds;
    count("manifest_rebuilds");
}

void
PersistentStore::reconcileSegments(
    const std::vector<std::string>& names,
    const std::unordered_map<std::int64_t, std::int64_t>& high_water)
{
    // Which segments actually exist, and how big they really are.
    std::unordered_map<std::int64_t, std::int64_t> on_disk;
    for (const std::string& name : names) {
        const auto seg = SegmentLog::parseSegmentName(name);
        if (!seg.has_value())
            continue;
        const auto size =
            vfs_->fileSize(segments_.segmentPath(*seg));
        on_disk[*seg] = size.value_or(0);
    }

    // Uncommitted tail bytes (a record whose manifest commit never
    // landed, or a torn final append) get truncated so the file ends
    // at its last committed record.
    for (auto& [seg, size] : on_disk) {
        std::int64_t hw = 0;
        if (const auto it = high_water.find(seg); it != high_water.end())
            hw = it->second;
        if (size > hw) {
            if (!read_only_) {
                if (vfs_->truncateFile(segments_.segmentPath(seg), hw)) {
                    ++stats_.tail_truncations;
                    count("tail_truncations");
                    stats_.orphans_dropped += size - hw;
                    count("orphans_dropped", size - hw);
                    size = hw;
                } else {
                    countIoError();
                }
            } else {
                // A reader must not mutate; refs never point past the
                // high-water anyway, so just account the bounded size.
                size = hw;
            }
        }
    }

    // Entries whose bytes the segments can no longer back (externally
    // truncated or deleted files) are lost: drop them so loads miss
    // cleanly instead of flailing on reads.
    std::vector<int> doomed;
    for (int slot = 0; slot < static_cast<int>(slots_.size()); ++slot) {
        const Slot& s = slots_[static_cast<std::size_t>(slot)];
        if (!s.live)
            continue;
        const auto it = on_disk.find(s.ref.segment);
        const std::int64_t end =
            s.ref.offset + kSegmentRecordHeader + s.ref.length;
        if (it == on_disk.end() || it->second < end)
            doomed.push_back(slot);
    }
    for (const int slot : doomed) {
        // Not dropEntry(): occupancy is not seeded yet during open.
        Slot& s = slots_[static_cast<std::size_t>(slot)];
        index_.erase(s.key);
        unlink(lists_[s.segment], slot);
        freeSlot(slot);
        ++stats_.lost_records;
        count("lost_records");
    }

    // Referenced segments join the log's accounting; unreferenced
    // sealed segments (fully compacted, or orphaned by a crash between
    // compaction's copy and delete) are removed.  The highest id stays
    // as the active segment even when empty of live records, so new
    // appends never reuse an id.
    std::unordered_map<std::int64_t, bool> referenced;
    for (const Slot& s : slots_) {
        if (s.live)
            referenced[s.ref.segment] = true;
    }
    std::int64_t max_seg = -1;
    for (const auto& [seg, size] : on_disk)
        max_seg = std::max(max_seg, seg);
    for (const auto& [seg, size] : on_disk) {
        if (referenced.count(seg) != 0 || seg == max_seg) {
            segments_.adoptSegment(seg, size);
        } else if (!read_only_) {
            if (!vfs_->removeFile(segments_.segmentPath(seg)))
                countIoError();
        }
    }
}

void
PersistentStore::migrateLegacy(const std::vector<std::string>& names)
{
    // One-way migration from the PR-8 file-per-entry layout: each
    // *.vpb blob is appended to the segment log and committed, then
    // its file removed.  Sorted-name order keeps it deterministic;
    // interrupted migrations re-run idempotently on the next open
    // (already-indexed keys just lose their leftover file).
    std::vector<std::string> blobs;
    for (const std::string& name : names) {
        if (hasSuffix(name, kLegacyBlobSuffix))
            blobs.push_back(name);
    }
    std::sort(blobs.begin(), blobs.end());
    for (const std::string& name : blobs) {
        if (read_only_)
            return;  // Degraded mid-migration; the rest waits.
        const std::string path = (fs::path(directory_) / name).string();
        const auto bytes = vfs_->readFile(path);
        if (!bytes.has_value()) {
            countIoError();
            continue;
        }
        auto decoded = decodeBlob(bytes->data(), bytes->size());
        if (const auto* error = std::get_if<BlobError>(&decoded)) {
            if (*error == BlobError::kVersionSkew) {
                ++stats_.version_skew;
                count("version_skew");
            } else {
                ++stats_.corrupt;
                count("corrupt");
            }
            // Same quarantine rule as PR 8: keep the bytes for
            // post-mortem, out of the namespace the scanner trusts.
            if (!vfs_->renameFile(path, path + ".quarantined"))
                countIoError();
            continue;
        }
        const auto& image = std::get<PersistedImage>(decoded);
        if (index_.count(image.key) == 0) {
            const auto ref = segments_.append(*bytes);
            if (!ref.has_value()) {
                countIoError();
                enterReadOnly();
                return;
            }
            const std::int64_t epoch = ++epoch_;
            if (!manifest_.appendAdd(image.key, *ref, epoch,
                                     kProbation)) {
                countIoError();
                enterReadOnly();
                return;
            }
            insertIndexed(image.key, *ref, epoch, kProbation);
            ++stats_.migrated;
            count("migrated");
        }
        if (!vfs_->removeFile(path))
            countIoError();
    }
}

// --- Serving --------------------------------------------------------

std::optional<PersistedImage>
PersistentStore::load(const std::string& key)
{
    const auto it = index_.find(key);
    if (it == index_.end()) {
        ++stats_.misses;
        count("misses");
        return std::nullopt;
    }
    const int slot = it->second;

    auto miss = [&]() {
        ++stats_.misses;
        count("misses");
        return std::optional<PersistedImage>();
    };
    auto drop_corrupt = [&](const char* counter, std::int64_t* stat) {
        // Degrade, never crash: commit the removal (a restart must not
        // resurrect the bytes), drop the entry, report a miss so the
        // caller re-translates.  The garbage bytes stay in the segment
        // for post-mortem until compaction reclaims them.
        removeEntry(slot, /*count_as_eviction=*/false);
        ++*stat;
        count(counter);
        stats_.size = size();
        return miss();
    };

    auto result =
        segments_.read(slots_[static_cast<std::size_t>(slot)].ref);
    if (const auto* error = std::get_if<RecordError>(&result)) {
        if (*error == RecordError::kIo) {
            // Transient I/O trouble is not corruption: keep the entry
            // (a later load may succeed), count it apart.
            countIoError();
            return miss();
        }
        return drop_corrupt("corrupt", &stats_.corrupt);
    }
    const auto& payload = std::get<std::vector<std::uint8_t>>(result);
    auto decoded = decodeBlob(payload.data(), payload.size());
    if (const auto* error = std::get_if<BlobError>(&decoded)) {
        if (*error == BlobError::kVersionSkew)
            return drop_corrupt("version_skew", &stats_.version_skew);
        return drop_corrupt("corrupt", &stats_.corrupt);
    }
    auto image = std::move(std::get<PersistedImage>(decoded));
    if (image.key != key)
        return drop_corrupt("corrupt", &stats_.corrupt);
    touch(slot);
    ++stats_.hits;
    count("hits");
    return image;
}

bool
PersistentStore::contains(const std::string& key) const
{
    return index_.count(key) != 0;
}

bool
PersistentStore::save(const PersistedImage& image)
{
    if (read_only_) {
        // The read-only tier serves hits and skips persists -- the
        // caller keeps its translation, nothing is lost but reuse.
        ++stats_.readonly_skips;
        count("readonly_skips");
        return false;
    }
    auto it = index_.find(image.key);
    if (it == index_.end()) {
        while (static_cast<int>(index_.size()) >= options_.max_entries)
            evictOne();
        if (read_only_)
            return false;  // The eviction commit failed.
        it = index_.end();  // Iterators may have been invalidated.
    }

    const auto blob = encodeBlob(image);
    const auto ref = segments_.append(blob);
    if (!ref.has_value()) {
        countIoError();
        enterReadOnly();
        return false;
    }

    // The manifest append is the commit point: only after it lands is
    // the save acked.  A crash in between leaves an orphan record that
    // recovery truncates -- the acked state is exactly preserved.
    it = index_.find(image.key);
    if (it != index_.end()) {
        Slot& s = slots_[static_cast<std::size_t>(it->second)];
        const RecordRef old = s.ref;
        s.ref = *ref;
        touch(it->second);
        if (!manifest_.appendAdd(image.key, *ref, s.epoch,
                                 s.segment == kProtected ? 1 : 0)) {
            countIoError();
            enterReadOnly();
            return false;
        }
        segments_.markDead(old);
    } else {
        const std::int64_t epoch = ++epoch_;
        if (!manifest_.appendAdd(image.key, *ref, epoch, kProbation)) {
            countIoError();
            enterReadOnly();
            return false;
        }
        insertIndexed(image.key, *ref, epoch, kProbation);
    }
    ++stats_.saves;
    count("saves");
    stats_.size = size();
    compactIfNeeded();
    maybeRewriteManifest();
    return true;
}

bool
PersistentStore::invalidate(const std::string& key)
{
    const auto it = index_.find(key);
    if (it == index_.end())
        return false;
    if (read_only_) {
        // No disk write allowed; drop from this instance's view so the
        // caller's re-translation is served fresh.
        ++stats_.readonly_skips;
        count("readonly_skips");
        dropEntry(it->second);
    } else {
        removeEntry(it->second, /*count_as_eviction=*/false);
    }
    ++stats_.invalidations;
    count("invalidations");
    stats_.size = size();
    return true;
}

// --- Log upkeep -----------------------------------------------------

void
PersistentStore::compactIfNeeded()
{
    const auto victim =
        segments_.compactionCandidate(options_.compact_garbage_percent);
    if (victim.has_value())
        compactSegment(*victim);
}

bool
PersistentStore::compactNow()
{
    if (read_only_)
        return false;
    const auto victim = segments_.compactionCandidate(1);
    if (!victim.has_value())
        return false;
    return compactSegment(*victim);
}

bool
PersistentStore::compactSegment(std::int64_t victim)
{
    if (read_only_)
        return false;
    const auto info_it = segments_.segments().find(victim);
    if (info_it == segments_.segments().end())
        return false;
    const std::int64_t garbage =
        info_it->second.bytes - info_it->second.live_bytes;

    // Live records of the victim, in file order (deterministic).
    std::vector<int> movers;
    for (int slot = 0; slot < static_cast<int>(slots_.size()); ++slot) {
        const Slot& s = slots_[static_cast<std::size_t>(slot)];
        if (s.live && s.ref.segment == victim)
            movers.push_back(slot);
    }
    std::sort(movers.begin(), movers.end(), [this](int a, int b) {
        return slots_[static_cast<std::size_t>(a)].ref.offset <
               slots_[static_cast<std::size_t>(b)].ref.offset;
    });

    for (const int slot : movers) {
        Slot& s = slots_[static_cast<std::size_t>(slot)];
        auto result = segments_.read(s.ref);
        if (const auto* error = std::get_if<RecordError>(&result)) {
            if (*error == RecordError::kIo) {
                countIoError();
                enterReadOnly();
                return false;  // Half-compacted is still consistent:
                               // every ref points at a valid copy.
            }
            // Corrupt live record: it was going to fail its next load
            // anyway; commit the removal now instead of copying rot.
            removeEntry(slot, /*count_as_eviction=*/false);
            ++stats_.corrupt;
            count("corrupt");
            stats_.size = size();
            if (read_only_)
                return false;
            continue;
        }
        const auto& payload = std::get<std::vector<std::uint8_t>>(result);
        const auto moved = segments_.append(payload);
        if (!moved.has_value()) {
            countIoError();
            enterReadOnly();
            return false;
        }
        if (!manifest_.appendAdd(s.key, *moved, s.epoch,
                                 s.segment == kProtected ? 1 : 0)) {
            countIoError();
            enterReadOnly();
            return false;
        }
        const RecordRef old = s.ref;
        s.ref = *moved;
        segments_.markDead(old);
    }

    // Every live record moved; the file is garbage.  A crash before
    // this delete leaves an unreferenced segment that the next open
    // removes.
    if (!vfs_->removeFile(segments_.segmentPath(victim))) {
        countIoError();
        enterReadOnly();
        return false;
    }
    segments_.dropSegment(victim);
    ++stats_.compactions;
    count("compactions");
    stats_.reclaimed_bytes += garbage;
    count("reclaimed_bytes", garbage);
    maybeRewriteManifest();
    return true;
}

std::vector<ManifestRecord>
PersistentStore::snapshotRecords() const
{
    // Tail-to-head (oldest first) per LRU segment; replay re-sorts by
    // epoch stamp anyway, so the order is cosmetic but deterministic.
    std::vector<ManifestRecord> records;
    records.reserve(index_.size());
    for (const int segment : {kProbation, kProtected}) {
        for (int slot = lists_[segment].tail; slot >= 0;
             slot = slots_[static_cast<std::size_t>(slot)].prev) {
            const Slot& s = slots_[static_cast<std::size_t>(slot)];
            ManifestRecord record;
            record.kind = ManifestRecord::Kind::kAdd;
            record.key = s.key;
            record.ref = s.ref;
            record.epoch = s.epoch;
            record.lru_segment = segment == kProtected ? 1 : 0;
            records.push_back(std::move(record));
        }
    }
    return records;
}

bool
PersistentStore::rewriteManifest()
{
    if (read_only_)
        return false;
    if (!manifest_.rewrite(snapshotRecords())) {
        countIoError();
        enterReadOnly();
        return false;
    }
    ++stats_.manifest_rewrites;
    count("manifest_rewrites");
    return true;
}

void
PersistentStore::maybeRewriteManifest()
{
    if (read_only_)
        return;
    const std::int64_t threshold = std::max<std::int64_t>(
        256, 4 * static_cast<std::int64_t>(index_.size()));
    if (manifest_.appendsSinceRewrite() > threshold)
        rewriteManifest();
}

void
PersistentStore::flush()
{
    if (read_only_)
        return;
    rewriteManifest();
}

// --- Introspection --------------------------------------------------

StoreStats
PersistentStore::stats() const
{
    StoreStats stats = stats_;
    stats.size = size();
    stats.segments =
        static_cast<std::int64_t>(segments_.segments().size());
    stats.live_bytes = segments_.liveBytes();
    stats.log_bytes = segments_.totalBytes();
    return stats;
}

void
PersistentStore::recordInto(metrics::Registry& registry,
                            const std::string& prefix) const
{
    const StoreStats stats = this->stats();
    registry.add(prefix + ".saves", stats.saves);
    registry.add(prefix + ".hits", stats.hits);
    registry.add(prefix + ".misses", stats.misses);
    registry.add(prefix + ".evictions", stats.evictions);
    registry.add(prefix + ".invalidations", stats.invalidations);
    registry.add(prefix + ".corrupt", stats.corrupt);
    registry.add(prefix + ".version_skew", stats.version_skew);
    registry.add(prefix + ".manifest_rebuilds", stats.manifest_rebuilds);
    registry.add(prefix + ".io_error", stats.io_errors);
    registry.add(prefix + ".readonly", stats.readonly);
    registry.add(prefix + ".readonly_skips", stats.readonly_skips);
    registry.add(prefix + ".tmp_swept", stats.tmp_swept);
    registry.add(prefix + ".tail_truncations", stats.tail_truncations);
    registry.add(prefix + ".orphans_dropped", stats.orphans_dropped);
    registry.add(prefix + ".lost_records", stats.lost_records);
    registry.add(prefix + ".migrated", stats.migrated);
    registry.add(prefix + ".compactions", stats.compactions);
    registry.add(prefix + ".reclaimed_bytes", stats.reclaimed_bytes);
    registry.add(prefix + ".manifest_rewrites", stats.manifest_rewrites);
    registry.add(prefix + ".resident", stats.size);
    registry.add(prefix + ".segments", stats.segments);
    registry.add(prefix + ".live_bytes", stats.live_bytes);
    registry.add(prefix + ".log_bytes", stats.log_bytes);
}

std::vector<std::string>
PersistentStore::keys() const
{
    std::vector<std::string> keys;
    keys.reserve(index_.size());
    for (const auto& [key, slot] : index_)
        keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    return keys;
}

std::optional<RecordLocation>
PersistentStore::recordLocation(const std::string& key) const
{
    const auto it = index_.find(key);
    if (it == index_.end())
        return std::nullopt;
    const Slot& s = slots_[static_cast<std::size_t>(it->second)];
    RecordLocation location;
    location.path = segments_.segmentPath(s.ref.segment);
    location.offset = s.ref.offset + kSegmentRecordHeader;
    location.length = s.ref.length;
    return location;
}

}  // namespace veal::persist
