#include "veal/vm/persist/store.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "veal/support/assert.h"
#include "veal/support/metrics/metrics.h"
#include "veal/support/parse.h"

namespace veal::persist {

namespace fs = std::filesystem;

namespace {

constexpr const char* kManifestName = "MANIFEST";
constexpr const char* kManifestHeader = "veal-persist-v1";
constexpr const char* kBlobSuffix = ".vpb";

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t
fnv1a(const std::string& text)
{
    std::uint64_t digest = kFnvOffset;
    for (const char c : text) {
        digest ^= static_cast<std::uint8_t>(c);
        digest *= kFnvPrime;
    }
    return digest;
}

/**
 * Blob file name for @p key: the sanitized key (readable in `ls`) plus
 * an FNV-64 tag so two keys that sanitize identically still get
 * distinct files.  The embedded key inside the blob is the authority;
 * a tag collision (~2^-64) decodes as a key mismatch and quarantines.
 */
std::string
blobFileName(const std::string& key)
{
    std::string name;
    name.reserve(key.size() + 24);
    for (const char c : key) {
        const bool safe = (c >= 'a' && c <= 'z') ||
                          (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '-' || c == '.';
        name.push_back(safe ? c : '_');
    }
    std::ostringstream os;
    os << name << '-' << std::hex << fnv1a(key) << kBlobSuffix;
    return os.str();
}

std::optional<std::vector<std::uint8_t>>
readFileBytes(const fs::path& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (in.bad())
        return std::nullopt;
    return bytes;
}

bool
writeFileAtomic(const fs::path& path, const void* data, std::size_t size)
{
    const fs::path temp = path.string() + ".tmp";
    {
        std::ofstream out(temp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        out.write(static_cast<const char*>(data),
                  static_cast<std::streamsize>(size));
        if (!out.good())
            return false;
    }
    std::error_code ec;
    fs::rename(temp, path, ec);
    return !ec;
}

}  // namespace

PersistentStore::PersistentStore(std::string directory,
                                 StoreOptions options,
                                 metrics::Registry* registry)
    : directory_(std::move(directory)),
      options_(options),
      registry_(registry)
{
    VEAL_ASSERT(options_.max_entries >= 1,
                "persistent store needs at least one entry");
    options_.protected_percent =
        std::clamp(options_.protected_percent, 0, 100);
    std::error_code ec;
    fs::create_directories(directory_, ec);
    openIndex();
}

PersistentStore::~PersistentStore()
{
    flush();
}

void
PersistentStore::count(const char* name, std::int64_t delta)
{
    if (registry_ != nullptr)
        registry_->add(std::string("vm.persist.") + name, delta);
}

int
PersistentStore::allocSlot()
{
    if (free_head_ >= 0) {
        const int slot = free_head_;
        free_head_ = slots_[static_cast<std::size_t>(slot)].next;
        slots_[static_cast<std::size_t>(slot)] = Slot{};
        return slot;
    }
    slots_.emplace_back();
    return static_cast<int>(slots_.size()) - 1;
}

void
PersistentStore::freeSlot(int slot)
{
    Slot& s = slots_[static_cast<std::size_t>(slot)];
    s = Slot{};
    s.next = free_head_;
    free_head_ = slot;
}

void
PersistentStore::pushFront(List& list, int slot)
{
    Slot& s = slots_[static_cast<std::size_t>(slot)];
    s.prev = -1;
    s.next = list.head;
    if (list.head >= 0)
        slots_[static_cast<std::size_t>(list.head)].prev = slot;
    list.head = slot;
    if (list.tail < 0)
        list.tail = slot;
    ++list.count;
}

void
PersistentStore::unlink(List& list, int slot)
{
    Slot& s = slots_[static_cast<std::size_t>(slot)];
    if (s.prev >= 0)
        slots_[static_cast<std::size_t>(s.prev)].next = s.next;
    else
        list.head = s.next;
    if (s.next >= 0)
        slots_[static_cast<std::size_t>(s.next)].prev = s.prev;
    else
        list.tail = s.prev;
    s.prev = -1;
    s.next = -1;
    --list.count;
}

void
PersistentStore::touch(int slot)
{
    Slot& s = slots_[static_cast<std::size_t>(slot)];
    s.epoch = ++epoch_;
    // A touched entry moves to the protected front; probation is only
    // for keys that have not proven reuse yet.
    unlink(lists_[s.segment], slot);
    s.segment = kProtected;
    pushFront(lists_[kProtected], slot);
    // Keep the protected segment within its share by demoting its tail
    // back to probation (not evicting -- it keeps its blob).
    const int protected_cap = std::max(
        0, options_.max_entries * options_.protected_percent / 100);
    while (lists_[kProtected].count > protected_cap) {
        const int demoted = lists_[kProtected].tail;
        unlink(lists_[kProtected], demoted);
        slots_[static_cast<std::size_t>(demoted)].segment = kProbation;
        pushFront(lists_[kProbation], demoted);
    }
}

void
PersistentStore::removeEntry(int slot, bool count_as_eviction)
{
    Slot& s = slots_[static_cast<std::size_t>(slot)];
    VEAL_ASSERT(s.live, "removing a dead store slot");
    std::error_code ec;
    fs::remove(fs::path(directory_) / s.file, ec);
    index_.erase(s.key);
    unlink(lists_[s.segment], slot);
    freeSlot(slot);
    if (count_as_eviction) {
        ++stats_.evictions;
        count("evictions");
    }
}

void
PersistentStore::evictOne()
{
    // Probation tail first (the entry with the least proven reuse);
    // an all-protected store falls back to the protected tail.
    int victim = lists_[kProbation].tail;
    if (victim < 0)
        victim = lists_[kProtected].tail;
    VEAL_ASSERT(victim >= 0, "evicting from an empty store");
    removeEntry(victim, /*count_as_eviction=*/true);
}

void
PersistentStore::quarantineFile(const std::string& file)
{
    // Keep the bytes for post-mortem but move them out of the namespace
    // the scanner and loader trust.
    std::error_code ec;
    const fs::path path = fs::path(directory_) / file;
    fs::rename(path, path.string() + ".quarantined", ec);
    if (ec)
        fs::remove(path, ec);
}

void
PersistentStore::insertIndexed(const std::string& key,
                               const std::string& file,
                               std::int64_t epoch, int segment)
{
    const int slot = allocSlot();
    Slot& s = slots_[static_cast<std::size_t>(slot)];
    s.key = key;
    s.file = file;
    s.epoch = epoch;
    s.segment = segment;
    s.live = true;
    pushFront(lists_[segment], slot);
    index_[key] = slot;
}

void
PersistentStore::openIndex()
{
    if (!loadManifest())
        scanRebuild();
    // A shrunk --cache-capacity evicts the excess immediately, so the
    // on-disk footprint always respects the configured bound.
    while (static_cast<int>(index_.size()) > options_.max_entries)
        evictOne();
    stats_.size = size();
}

bool
PersistentStore::loadManifest()
{
    const fs::path path = fs::path(directory_) / kManifestName;
    std::ifstream in(path);
    if (!in)
        return false;

    struct ManifestEntry {
        std::string key;
        std::string file;
        std::int64_t epoch = 0;
        int segment = kProbation;
    };
    std::vector<ManifestEntry> entries;
    std::string line;
    if (!std::getline(in, line) || line != kManifestHeader)
        return false;
    std::int64_t stored_epoch = 0;
    bool saw_epoch = false;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::istringstream tokens(line);
        std::string word;
        tokens >> word;
        if (word == "epoch") {
            std::string value;
            tokens >> value;
            const auto parsed = parseU64Strict(value);
            if (!parsed.has_value())
                return false;
            stored_epoch = static_cast<std::int64_t>(*parsed);
            saw_epoch = true;
        } else if (word == "entry") {
            ManifestEntry entry;
            std::string segment_text;
            std::string epoch_text;
            tokens >> segment_text >> epoch_text >> entry.file;
            const auto epoch = parseU64Strict(epoch_text);
            if ((segment_text != "probation" &&
                 segment_text != "protected") ||
                !epoch.has_value() || entry.file.empty())
                return false;
            entry.segment =
                segment_text == "protected" ? kProtected : kProbation;
            entry.epoch = static_cast<std::int64_t>(*epoch);
            std::getline(tokens, entry.key);
            if (!entry.key.empty() && entry.key.front() == ' ')
                entry.key.erase(0, 1);
            if (entry.key.empty())
                return false;
            entries.push_back(std::move(entry));
        } else {
            return false;
        }
    }
    if (!saw_epoch)
        return false;

    // Oldest-first insertion rebuilds the exact recency order (each
    // insert lands at its segment's front).
    std::stable_sort(entries.begin(), entries.end(),
                     [](const ManifestEntry& a, const ManifestEntry& b) {
                         return a.epoch < b.epoch;
                     });
    std::error_code ec;
    for (const auto& entry : entries) {
        if (index_.count(entry.key) != 0)
            return false;  // Duplicate key: the manifest is not sane.
        if (!fs::exists(fs::path(directory_) / entry.file, ec))
            continue;  // Blob vanished; drop the entry, keep the rest.
        insertIndexed(entry.key, entry.file, entry.epoch, entry.segment);
        epoch_ = std::max(epoch_, entry.epoch);
    }
    epoch_ = std::max(epoch_, stored_epoch);
    return true;
}

void
PersistentStore::scanRebuild()
{
    // No (or untrustworthy) manifest: re-derive the index from the blob
    // files themselves, in sorted-name order so the rebuilt recency
    // order is deterministic.  Every blob re-validates on the way in;
    // bad ones are quarantined right here.
    for (auto& list : lists_)
        list = List{};
    slots_.clear();
    free_head_ = -1;
    index_.clear();

    std::vector<std::string> files;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(directory_, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.size() > 4 &&
            name.compare(name.size() - 4, 4, kBlobSuffix) == 0)
            files.push_back(name);
    }
    std::sort(files.begin(), files.end());

    bool found_any = false;
    for (const std::string& file : files) {
        found_any = true;
        const auto bytes = readFileBytes(fs::path(directory_) / file);
        if (!bytes.has_value()) {
            quarantineFile(file);
            ++stats_.corrupt;
            count("corrupt");
            continue;
        }
        auto decoded = decodeBlob(bytes->data(), bytes->size());
        if (const auto* error = std::get_if<BlobError>(&decoded)) {
            if (*error == BlobError::kVersionSkew) {
                ++stats_.version_skew;
                count("version_skew");
            } else {
                ++stats_.corrupt;
                count("corrupt");
            }
            quarantineFile(file);
            continue;
        }
        const auto& image = std::get<PersistedImage>(decoded);
        if (index_.count(image.key) != 0) {
            quarantineFile(file);  // Duplicate key: keep the first.
            ++stats_.corrupt;
            count("corrupt");
            continue;
        }
        insertIndexed(image.key, file, ++epoch_, kProbation);
    }
    if (found_any) {
        ++stats_.manifest_rebuilds;
        count("manifest_rebuilds");
    }
}

std::optional<PersistedImage>
PersistentStore::load(const std::string& key)
{
    const auto it = index_.find(key);
    if (it == index_.end()) {
        ++stats_.misses;
        count("misses");
        return std::nullopt;
    }
    const int slot = it->second;
    const std::string file = slots_[static_cast<std::size_t>(slot)].file;
    const auto bytes = readFileBytes(fs::path(directory_) / file);
    auto fail = [&](const char* counter, std::int64_t* stat) {
        // Degrade, never crash: quarantine the bytes, drop the index
        // entry (not an eviction -- the payload is untrustworthy, the
        // same distinction CodeCache::erase() draws), report a miss so
        // the caller re-translates.
        quarantineFile(file);
        index_.erase(key);
        unlink(lists_[slots_[static_cast<std::size_t>(slot)].segment],
               slot);
        freeSlot(slot);
        ++*stat;
        count(counter);
        ++stats_.misses;
        count("misses");
        stats_.size = size();
        return std::optional<PersistedImage>();
    };
    if (!bytes.has_value())
        return fail("corrupt", &stats_.corrupt);
    auto decoded = decodeBlob(bytes->data(), bytes->size());
    if (const auto* error = std::get_if<BlobError>(&decoded)) {
        if (*error == BlobError::kVersionSkew)
            return fail("version_skew", &stats_.version_skew);
        return fail("corrupt", &stats_.corrupt);
    }
    auto image = std::move(std::get<PersistedImage>(decoded));
    if (image.key != key)
        return fail("corrupt", &stats_.corrupt);  // Filename collision.
    touch(slot);
    ++stats_.hits;
    count("hits");
    return image;
}

bool
PersistentStore::contains(const std::string& key) const
{
    return index_.count(key) != 0;
}

void
PersistentStore::save(const PersistedImage& image)
{
    const std::string file = blobFileName(image.key);
    const auto blob = encodeBlob(image);
    if (!writeFileAtomic(fs::path(directory_) / file, blob.data(),
                         blob.size()))
        return;  // Disk trouble: stay a volatile cache, don't crash.

    const auto it = index_.find(image.key);
    if (it != index_.end()) {
        touch(it->second);
    } else {
        if (static_cast<int>(index_.size()) >= options_.max_entries)
            evictOne();
        insertIndexed(image.key, file, ++epoch_, kProbation);
    }
    ++stats_.saves;
    count("saves");
    stats_.size = size();
}

bool
PersistentStore::invalidate(const std::string& key)
{
    const auto it = index_.find(key);
    if (it == index_.end())
        return false;
    removeEntry(it->second, /*count_as_eviction=*/false);
    ++stats_.invalidations;
    count("invalidations");
    stats_.size = size();
    return true;
}

void
PersistentStore::flush()
{
    std::ostringstream os;
    os << kManifestHeader << "\n";
    os << "epoch " << epoch_ << "\n";
    // Tail-to-head (oldest first) per segment; load re-sorts by epoch
    // stamp anyway, so the order here is cosmetic but deterministic.
    for (const int segment : {kProbation, kProtected}) {
        for (int slot = lists_[segment].tail; slot >= 0;
             slot = slots_[static_cast<std::size_t>(slot)].prev) {
            const Slot& s = slots_[static_cast<std::size_t>(slot)];
            os << "entry "
               << (segment == kProtected ? "protected" : "probation")
               << " " << s.epoch << " " << s.file << " " << s.key
               << "\n";
        }
    }
    const std::string text = os.str();
    writeFileAtomic(fs::path(directory_) / kManifestName, text.data(),
                    text.size());
}

StoreStats
PersistentStore::stats() const
{
    StoreStats stats = stats_;
    stats.size = size();
    return stats;
}

void
PersistentStore::recordInto(metrics::Registry& registry,
                            const std::string& prefix) const
{
    registry.add(prefix + ".saves", stats_.saves);
    registry.add(prefix + ".hits", stats_.hits);
    registry.add(prefix + ".misses", stats_.misses);
    registry.add(prefix + ".evictions", stats_.evictions);
    registry.add(prefix + ".invalidations", stats_.invalidations);
    registry.add(prefix + ".corrupt", stats_.corrupt);
    registry.add(prefix + ".version_skew", stats_.version_skew);
    registry.add(prefix + ".manifest_rebuilds", stats_.manifest_rebuilds);
    registry.add(prefix + ".resident", size());
}

std::string
PersistentStore::blobPath(const std::string& key) const
{
    return (fs::path(directory_) / blobFileName(key)).string();
}

}  // namespace veal::persist
