#ifndef VEAL_VM_PERSIST_MANIFEST_LOG_H_
#define VEAL_VM_PERSIST_MANIFEST_LOG_H_

/**
 * @file
 * The store's append-only commit log (replaces the rewritten MANIFEST).
 *
 * `MANIFEST.log` is a text file: a header line, then one checksummed
 * record per line:
 *
 *   veal-persist-log-v2
 *   <crc> add <segment> <offset> <length> <epoch> <lru> <key>
 *   <crc> evict <key>
 *   <crc> invalidate <key>
 *
 * <crc> is the low 32 bits of FNV-1a over the body (everything after
 * "<crc> "), in hex.  A save commits by appending an `add` line *after*
 * its segment append, so recovery is a replay: apply records in order,
 * last writer wins, stop at the first torn line (a crash can only tear
 * the tail; the tail is truncated and the segment bytes past the last
 * committed record are orphans, dropped by the store).  A mid-file line
 * that fails its crc (bit flip, not a crash artifact) is skipped, and
 * the remaining lines still apply -- line framing survives because
 * newlines inside keys are percent-escaped.
 *
 * Compaction moves are plain `add` records for the new location --
 * replay order makes them supersede the old one, so no extra record
 * type is needed and a crash mid-compaction leaves every key pointing
 * at a valid copy (old or new, both checksummed).
 *
 * flush() rewrites the log as a snapshot (one `add` per live entry)
 * via temp-then-rename, bounding replay time; the store also rewrites
 * opportunistically when the log grows well past the live-entry count.
 *
 * Keys are percent-escaped (%, space, control, non-ASCII) so hostile
 * keys -- including embedded newlines -- round-trip exactly.
 */

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "veal/vm/persist/segment_log.h"
#include "veal/vm/persist/vfs.h"

namespace veal::persist {

/** Manifest-log format header. */
constexpr const char* kManifestLogHeader = "veal-persist-log-v2";

/** One replayed record. */
struct ManifestRecord {
    enum class Kind : int { kAdd = 0, kEvict, kInvalidate };

    Kind kind = Kind::kAdd;
    std::string key;

    // kAdd only.
    RecordRef ref;
    std::int64_t epoch = 0;
    int lru_segment = 0;  ///< PersistentStore::kProbation / kProtected.
};

/** Everything replay() learned. */
struct ManifestReplay {
    /** False when the file exists but the header is not ours. */
    bool header_ok = false;

    /** True when MANIFEST.log exists at all. */
    bool present = false;

    std::vector<ManifestRecord> records;

    /** Byte offset just past the last good line (truncation target). */
    std::int64_t valid_bytes = 0;

    /** True when damaged bytes follow valid_bytes (torn final append). */
    bool torn_tail = false;

    /** Bad lines *before* the last good line (bit flips, skipped). */
    std::int64_t corrupt_lines = 0;
};

/** Percent-escape @p key for single-line storage. */
std::string escapeManifestKey(const std::string& key);

/** Inverse of escapeManifestKey(); nullopt on malformed escapes. */
std::optional<std::string> unescapeManifestKey(const std::string& text);

/** The commit-log half of the store; see file doc. */
class ManifestLog {
  public:
    ManifestLog(std::string directory, std::shared_ptr<Vfs> vfs);

    std::string path() const;

    /** Parse the log (never throws; see ManifestReplay). */
    ManifestReplay replay();

    /** Append one record; false on I/O failure (caller goes read-only). */
    bool appendAdd(const std::string& key, const RecordRef& ref,
                   std::int64_t epoch, int lru_segment);
    bool appendEvict(const std::string& key);
    bool appendInvalidate(const std::string& key);

    /**
     * Replace the log with a snapshot of @p records (all kAdd),
     * temp-then-rename; false on I/O failure.  Resets the append
     * counter.
     */
    bool rewrite(const std::vector<ManifestRecord>& records);

    /** Truncate the on-disk log to @p bytes (torn-tail repair). */
    bool truncateTo(std::int64_t bytes);

    /** Records appended since open/rewrite (rewrite-policy input). */
    std::int64_t appendsSinceRewrite() const
    {
        return appends_since_rewrite_;
    }

  private:
    bool appendLine(const std::string& body);

    std::string directory_;
    std::shared_ptr<Vfs> vfs_;
    std::int64_t appends_since_rewrite_ = 0;
};

}  // namespace veal::persist

#endif  // VEAL_VM_PERSIST_MANIFEST_LOG_H_
