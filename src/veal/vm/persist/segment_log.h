#ifndef VEAL_VM_PERSIST_SEGMENT_LOG_H_
#define VEAL_VM_PERSIST_SEGMENT_LOG_H_

/**
 * @file
 * Packed append-only segment files holding the store's blob payloads.
 *
 * Blobs (persist/blob.h) are appended to `seg-<n>.vlog` files as
 * length-prefixed records:
 *
 *   [u32 magic "VLR1"][u32 payload_len][u64 fnv1a(payload)][payload]
 *
 * all little-endian.  The active segment seals at segment_bytes and a
 * new one opens; only the highest-numbered segment ever grows, which is
 * the invariant recovery leans on: a crash can tear at most the tail of
 * one file, and the length prefix makes the torn tail detectable (a
 * record whose header or payload runs past EOF) and truncatable.
 *
 * The log tracks per-segment total vs. live bytes; a record becomes
 * garbage when its key is re-saved, evicted, invalidated, or moved by
 * compaction.  The store's compactor asks for the sealed segment with
 * the worst garbage ratio, rewrites its live records into the active
 * segment, and deletes the file.
 *
 * Failure policy matches the Vfs contract: any mutation returning
 * false is reported to the caller (who degrades to read-only); this
 * class never throws and never crashes on malformed bytes.
 */

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "veal/vm/persist/vfs.h"

namespace veal::persist {

/** Segment record header size (magic + length + checksum). */
constexpr std::int64_t kSegmentRecordHeader = 16;

/** Record magic "VLR1", little-endian. */
constexpr std::uint32_t kSegmentRecordMagic = 0x31524c56u;

/** Where one record's payload lives. */
struct RecordRef {
    std::int64_t segment = 0;
    std::int64_t offset = 0;  ///< Of the record header in the file.
    std::int64_t length = 0;  ///< Payload bytes (header excluded).
};

/** Why a record read failed (the store maps these to counters). */
enum class RecordError : int {
    kIo = 0,   ///< Short read / unreadable file: transient, keep entry.
    kCorrupt,  ///< Bad magic/length/checksum: drop the entry.
};

/** One record recovered by a full-segment scan. */
struct ScannedRecord {
    std::int64_t offset = 0;
    std::vector<std::uint8_t> payload;
};

/** Result of scanning one segment file. */
struct SegmentScan {
    std::vector<ScannedRecord> records;

    /** End of the last whole record (EOF when the tail is clean). */
    std::int64_t valid_bytes = 0;

    /** True when trailing bytes past valid_bytes must be truncated. */
    bool torn_tail = false;

    /** Mid-file records whose checksum failed (skipped, not torn). */
    std::int64_t corrupt_records = 0;
};

/** Per-segment occupancy (drives the compaction policy). */
struct SegmentInfo {
    std::int64_t bytes = 0;       ///< File size (headers + payloads).
    std::int64_t live_bytes = 0;  ///< Bytes still referenced.
    std::int64_t live_records = 0;
};

/** The append/rotate/scan half of the store; see file doc. */
class SegmentLog {
  public:
    SegmentLog(std::string directory, std::shared_ptr<Vfs> vfs,
               std::int64_t segment_bytes);

    /** `seg-<n>.vlog` under the store directory. */
    std::string segmentPath(std::int64_t segment) const;

    /** Parse `seg-<n>.vlog` names; nullopt for anything else. */
    static std::optional<std::int64_t> parseSegmentName(
        const std::string& name);

    /**
     * Adopt an on-disk segment discovered during recovery: seeds its
     * occupancy (live bytes accrue via addLiveRef) and keeps the
     * active-segment id past it.
     */
    void adoptSegment(std::int64_t segment, std::int64_t bytes);

    /** Recovery found a live record; account it. */
    void addLiveRef(const RecordRef& ref);

    /**
     * Append one record (rotating first when the active segment is
     * full); nullopt on I/O failure -- the caller goes read-only.  On
     * success the new record is live.
     */
    std::optional<RecordRef> append(
        const std::vector<std::uint8_t>& payload);

    /**
     * Read + verify the record at @p ref.  The error distinguishes
     * transient I/O trouble from corrupt bytes (different counters and
     * different entry fates in the store).
     */
    std::variant<std::vector<std::uint8_t>, RecordError> read(
        const RecordRef& ref);

    /** The record at @p ref became garbage. */
    void markDead(const RecordRef& ref);

    /** Forget @p segment entirely (after its file is removed). */
    void dropSegment(std::int64_t segment);

    /**
     * Sealed segment with the highest garbage fraction at or above
     * @p min_garbage_percent (ties break toward the oldest), or
     * nullopt.  The active segment never compacts -- it is still
     * growing.
     */
    std::optional<std::int64_t> compactionCandidate(
        int min_garbage_percent) const;

    /** Parse every record of @p path (recovery + tests). */
    SegmentScan scanFile(const std::string& path);

    std::int64_t activeSegment() const { return active_; }
    const std::map<std::int64_t, SegmentInfo>& segments() const
    {
        return segments_;
    }

    /** Sum of live payload+header bytes across segments. */
    std::int64_t liveBytes() const;

    /** Sum of segment file bytes. */
    std::int64_t totalBytes() const;

  private:
    std::string directory_;
    std::shared_ptr<Vfs> vfs_;
    std::int64_t segment_bytes_;

    std::map<std::int64_t, SegmentInfo> segments_;
    std::int64_t active_ = 0;
};

/** Frame @p payload as one segment record (header + payload). */
std::vector<std::uint8_t> encodeSegmentRecord(
    const std::vector<std::uint8_t>& payload);

}  // namespace veal::persist

#endif  // VEAL_VM_PERSIST_SEGMENT_LOG_H_
