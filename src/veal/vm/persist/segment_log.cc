#include "veal/vm/persist/segment_log.h"

#include <algorithm>
#include <filesystem>
#include <limits>
#include <sstream>

#include "veal/support/parse.h"

namespace veal::persist {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t
fnv1a(const std::uint8_t* data, std::size_t size)
{
    std::uint64_t digest = kFnvOffset;
    for (std::size_t i = 0; i < size; ++i) {
        digest ^= data[i];
        digest *= kFnvPrime;
    }
    return digest;
}

void
putU32(std::vector<std::uint8_t>& out, std::uint32_t value)
{
    out.push_back(static_cast<std::uint8_t>(value & 0xffu));
    out.push_back(static_cast<std::uint8_t>((value >> 8) & 0xffu));
    out.push_back(static_cast<std::uint8_t>((value >> 16) & 0xffu));
    out.push_back(static_cast<std::uint8_t>((value >> 24) & 0xffu));
}

void
putU64(std::vector<std::uint8_t>& out, std::uint64_t value)
{
    putU32(out, static_cast<std::uint32_t>(value & 0xffffffffu));
    putU32(out, static_cast<std::uint32_t>(value >> 32));
}

std::uint32_t
getU32(const std::uint8_t* data)
{
    return static_cast<std::uint32_t>(data[0]) |
           (static_cast<std::uint32_t>(data[1]) << 8) |
           (static_cast<std::uint32_t>(data[2]) << 16) |
           (static_cast<std::uint32_t>(data[3]) << 24);
}

std::uint64_t
getU64(const std::uint8_t* data)
{
    return static_cast<std::uint64_t>(getU32(data)) |
           (static_cast<std::uint64_t>(getU32(data + 4)) << 32);
}

}  // namespace

std::vector<std::uint8_t>
encodeSegmentRecord(const std::vector<std::uint8_t>& payload)
{
    std::vector<std::uint8_t> record;
    record.reserve(static_cast<std::size_t>(kSegmentRecordHeader) +
                   payload.size());
    putU32(record, kSegmentRecordMagic);
    putU32(record, static_cast<std::uint32_t>(payload.size()));
    putU64(record, fnv1a(payload.data(), payload.size()));
    record.insert(record.end(), payload.begin(), payload.end());
    return record;
}

SegmentLog::SegmentLog(std::string directory, std::shared_ptr<Vfs> vfs,
                       std::int64_t segment_bytes)
    : directory_(std::move(directory)),
      vfs_(std::move(vfs)),
      segment_bytes_(std::max<std::int64_t>(segment_bytes,
                                            kSegmentRecordHeader + 1))
{
}

std::string
SegmentLog::segmentPath(std::int64_t segment) const
{
    std::ostringstream os;
    os << "seg-" << segment << ".vlog";
    return (std::filesystem::path(directory_) / os.str()).string();
}

std::optional<std::int64_t>
SegmentLog::parseSegmentName(const std::string& name)
{
    constexpr const char* kPrefix = "seg-";
    constexpr const char* kSuffix = ".vlog";
    const std::size_t prefix_len = 4;
    const std::size_t suffix_len = 5;
    if (name.size() <= prefix_len + suffix_len ||
        name.compare(0, prefix_len, kPrefix) != 0 ||
        name.compare(name.size() - suffix_len, suffix_len, kSuffix) != 0)
        return std::nullopt;
    const std::string digits =
        name.substr(prefix_len, name.size() - prefix_len - suffix_len);
    const auto parsed = parseU64Strict(digits);
    if (!parsed.has_value() ||
        *parsed > static_cast<std::uint64_t>(
                      std::numeric_limits<std::int64_t>::max()))
        return std::nullopt;
    return static_cast<std::int64_t>(*parsed);
}

void
SegmentLog::adoptSegment(std::int64_t segment, std::int64_t bytes)
{
    segments_[segment].bytes = bytes;
    active_ = std::max(active_, segment);
}

void
SegmentLog::addLiveRef(const RecordRef& ref)
{
    SegmentInfo& info = segments_[ref.segment];
    info.live_bytes += kSegmentRecordHeader + ref.length;
    ++info.live_records;
}

std::optional<RecordRef>
SegmentLog::append(const std::vector<std::uint8_t>& payload)
{
    const std::int64_t record_bytes =
        kSegmentRecordHeader + static_cast<std::int64_t>(payload.size());
    SegmentInfo* info = &segments_[active_];
    if (info->bytes > 0 && info->bytes + record_bytes > segment_bytes_) {
        ++active_;
        info = &segments_[active_];
    }
    RecordRef ref;
    ref.segment = active_;
    ref.offset = info->bytes;
    ref.length = static_cast<std::int64_t>(payload.size());
    if (!vfs_->append(segmentPath(active_), encodeSegmentRecord(payload)))
        return std::nullopt;
    info->bytes += record_bytes;
    info->live_bytes += record_bytes;
    ++info->live_records;
    return ref;
}

std::variant<std::vector<std::uint8_t>, RecordError>
SegmentLog::read(const RecordRef& ref)
{
    const auto bytes =
        vfs_->readRange(segmentPath(ref.segment), ref.offset,
                        kSegmentRecordHeader + ref.length);
    if (!bytes.has_value()) {
        // Distinguish "file unreadable / vanished record" (corrupt
        // store state) from a transient read failure: if the file
        // still covers the record, the read itself failed.
        const auto size = vfs_->fileSize(segmentPath(ref.segment));
        if (size.has_value() &&
            *size >= ref.offset + kSegmentRecordHeader + ref.length)
            return RecordError::kIo;
        return RecordError::kCorrupt;
    }
    const std::uint8_t* data = bytes->data();
    if (getU32(data) != kSegmentRecordMagic ||
        getU32(data + 4) != static_cast<std::uint32_t>(ref.length))
        return RecordError::kCorrupt;
    const std::uint64_t checksum = getU64(data + 8);
    std::vector<std::uint8_t> payload(
        bytes->begin() + kSegmentRecordHeader, bytes->end());
    if (fnv1a(payload.data(), payload.size()) != checksum)
        return RecordError::kCorrupt;
    return payload;
}

void
SegmentLog::markDead(const RecordRef& ref)
{
    const auto it = segments_.find(ref.segment);
    if (it == segments_.end())
        return;
    it->second.live_bytes -= kSegmentRecordHeader + ref.length;
    --it->second.live_records;
}

void
SegmentLog::dropSegment(std::int64_t segment)
{
    segments_.erase(segment);
}

std::optional<std::int64_t>
SegmentLog::compactionCandidate(int min_garbage_percent) const
{
    std::optional<std::int64_t> best;
    std::int64_t best_garbage_x100 = -1;
    for (const auto& [segment, info] : segments_) {
        if (segment == active_ || info.bytes <= 0)
            continue;
        const std::int64_t garbage = info.bytes - info.live_bytes;
        const std::int64_t garbage_x100 = garbage * 100 / info.bytes;
        if (garbage_x100 < min_garbage_percent)
            continue;
        if (garbage_x100 > best_garbage_x100) {
            best_garbage_x100 = garbage_x100;
            best = segment;
        }
    }
    return best;
}

SegmentScan
SegmentLog::scanFile(const std::string& path)
{
    SegmentScan scan;
    const auto bytes = vfs_->readFile(path);
    if (!bytes.has_value())
        return scan;
    const std::uint8_t* data = bytes->data();
    const std::int64_t size = static_cast<std::int64_t>(bytes->size());
    std::int64_t offset = 0;
    while (offset + kSegmentRecordHeader <= size) {
        if (getU32(data + offset) != kSegmentRecordMagic)
            break;  // Torn or trashed header: the tail ends here.
        const std::int64_t length = getU32(data + offset + 4);
        if (offset + kSegmentRecordHeader + length > size)
            break;  // Payload runs past EOF: torn tail.
        const std::uint64_t checksum = getU64(data + offset + 8);
        const std::uint8_t* payload = data + offset + kSegmentRecordHeader;
        if (fnv1a(payload, static_cast<std::size_t>(length)) == checksum) {
            ScannedRecord record;
            record.offset = offset;
            record.payload.assign(payload, payload + length);
            scan.records.push_back(std::move(record));
        } else {
            // Length prefix intact but payload flipped: skip this
            // record, keep scanning -- later records are still framed.
            ++scan.corrupt_records;
        }
        offset += kSegmentRecordHeader + length;
    }
    scan.valid_bytes = offset;
    scan.torn_tail = offset < size;
    return scan;
}

std::int64_t
SegmentLog::liveBytes() const
{
    std::int64_t total = 0;
    for (const auto& [segment, info] : segments_)
        total += info.live_bytes;
    return total;
}

std::int64_t
SegmentLog::totalBytes() const
{
    std::int64_t total = 0;
    for (const auto& [segment, info] : segments_)
        total += info.bytes;
    return total;
}

}  // namespace veal::persist
