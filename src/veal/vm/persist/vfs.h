#ifndef VEAL_VM_PERSIST_VFS_H_
#define VEAL_VM_PERSIST_VFS_H_

/**
 * @file
 * The filesystem seam under the persistent store.
 *
 * Every byte the store reads or writes goes through a Vfs, for two
 * reasons.  First, crash testing: the fault layer's FaultyVfs wraps a
 * real Vfs and kills the "process" at the Nth mutating operation
 * (partial final write, then every later call fails), which is how the
 * `veal-faultsim --mode persist` campaign enumerates every crash point
 * of a workload without actually forking and killing processes.
 * Second, the degradation ladder: the store treats any mutation
 * returning false as "the disk is gone" and drops to the read-only
 * tier instead of crashing, so the failure policy lives in one place.
 *
 * The crash model is process death (kill -9), not power loss: a write()
 * that returned is assumed durable, so syncFile() is a scheduling hint
 * rather than a correctness requirement.  Mutations are the crash
 * points; reads never mutate and only fail once the fake process is
 * dead.
 *
 * tryLockExclusive() is the multi-process safety hook: RealVfs takes a
 * non-blocking flock(LOCK_EX) on the given lock file.  flock locks
 * belong to the open file description, so two stores in one process
 * conflict exactly like two processes do -- which is what lets the
 * two-instances-one-dir tests run in-process.
 */

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace veal::persist {

/** Held advisory lock; releases on destruction. */
class VfsLock {
  public:
    virtual ~VfsLock() = default;
};

/** Filesystem operations the store is written against; see file doc. */
class Vfs {
  public:
    virtual ~Vfs() = default;

    // --- Reads (never mutate; fail only when the fake process died).

    /** Whole file, or nullopt when unreadable. */
    virtual std::optional<std::vector<std::uint8_t>> readFile(
        const std::string& path) = 0;

    /**
     * Exactly @p size bytes at @p offset, or nullopt (short reads are
     * nullopt too -- the caller treats them as torn records).
     */
    virtual std::optional<std::vector<std::uint8_t>> readRange(
        const std::string& path, std::int64_t offset,
        std::int64_t size) = 0;

    virtual bool exists(const std::string& path) = 0;

    /** File size in bytes, or nullopt. */
    virtual std::optional<std::int64_t> fileSize(
        const std::string& path) = 0;

    /** Plain file names in @p dir, sorted (deterministic). */
    virtual std::vector<std::string> listDir(const std::string& dir) = 0;

    // --- Mutations (the crash points; false == disk failure).

    /** Append @p bytes to @p path, creating it if needed. */
    virtual bool append(const std::string& path,
                        const std::vector<std::uint8_t>& bytes) = 0;

    /** Replace @p path with @p bytes (truncating write, not atomic). */
    virtual bool writeFile(const std::string& path,
                           const std::vector<std::uint8_t>& bytes) = 0;

    virtual bool renameFile(const std::string& from,
                            const std::string& to) = 0;

    virtual bool removeFile(const std::string& path) = 0;

    virtual bool truncateFile(const std::string& path,
                              std::int64_t size) = 0;

    /** Durability hint (see the crash model in the file doc). */
    virtual bool syncFile(const std::string& path) = 0;

    virtual bool createDirectories(const std::string& dir) = 0;

    // --- Locking (not a crash point: acquisition happens before any
    // mutation and failure already has a policy -- read-only mode).

    /**
     * Non-blocking exclusive advisory lock on @p path (created if
     * missing); null when another holder (process *or* in-process
     * store) has it.
     */
    virtual std::unique_ptr<VfsLock> tryLockExclusive(
        const std::string& path) = 0;
};

/** The POSIX filesystem. */
class RealVfs : public Vfs {
  public:
    std::optional<std::vector<std::uint8_t>> readFile(
        const std::string& path) override;
    std::optional<std::vector<std::uint8_t>> readRange(
        const std::string& path, std::int64_t offset,
        std::int64_t size) override;
    bool exists(const std::string& path) override;
    std::optional<std::int64_t> fileSize(const std::string& path) override;
    std::vector<std::string> listDir(const std::string& dir) override;
    bool append(const std::string& path,
                const std::vector<std::uint8_t>& bytes) override;
    bool writeFile(const std::string& path,
                   const std::vector<std::uint8_t>& bytes) override;
    bool renameFile(const std::string& from,
                    const std::string& to) override;
    bool removeFile(const std::string& path) override;
    bool truncateFile(const std::string& path, std::int64_t size) override;
    bool syncFile(const std::string& path) override;
    bool createDirectories(const std::string& dir) override;
    std::unique_ptr<VfsLock> tryLockExclusive(
        const std::string& path) override;
};

/** Process-wide shared RealVfs (the default when StoreOptions::vfs is null). */
std::shared_ptr<Vfs> realVfs();

}  // namespace veal::persist

#endif  // VEAL_VM_PERSIST_VFS_H_
