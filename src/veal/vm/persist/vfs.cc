#include "veal/vm/persist/vfs.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>

namespace veal::persist {

namespace fs = std::filesystem;

namespace {

/**
 * Write all of @p size bytes through @p fd (write() may be short on
 * signals or pipes even for regular files, so loop).
 */
bool
writeAll(int fd, const std::uint8_t* data, std::size_t size)
{
    std::size_t done = 0;
    while (done < size) {
        const ssize_t n = ::write(fd, data + done, size - done);
        if (n < 0)
            return false;
        done += static_cast<std::size_t>(n);
    }
    return true;
}

bool
writeWholeFile(const std::string& path,
               const std::vector<std::uint8_t>& bytes, int flags)
{
    const int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0)
        return false;
    const bool ok = writeAll(fd, bytes.data(), bytes.size());
    return (::close(fd) == 0) && ok;
}

class RealVfsLock : public VfsLock {
  public:
    explicit RealVfsLock(int fd) : fd_(fd) {}
    ~RealVfsLock() override
    {
        // Closing the descriptor releases the flock.
        ::close(fd_);
    }
    RealVfsLock(const RealVfsLock&) = delete;
    RealVfsLock& operator=(const RealVfsLock&) = delete;

  private:
    int fd_;
};

}  // namespace

std::optional<std::vector<std::uint8_t>>
RealVfs::readFile(const std::string& path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return std::nullopt;
    std::vector<std::uint8_t> bytes;
    std::uint8_t chunk[1 << 16];
    for (;;) {
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n < 0) {
            ::close(fd);
            return std::nullopt;
        }
        if (n == 0)
            break;
        bytes.insert(bytes.end(), chunk, chunk + n);
    }
    ::close(fd);
    return bytes;
}

std::optional<std::vector<std::uint8_t>>
RealVfs::readRange(const std::string& path, std::int64_t offset,
                   std::int64_t size)
{
    if (offset < 0 || size < 0)
        return std::nullopt;
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return std::nullopt;
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
    std::size_t done = 0;
    while (done < bytes.size()) {
        const ssize_t n = ::pread(
            fd, bytes.data() + done, bytes.size() - done,
            static_cast<off_t>(offset) + static_cast<off_t>(done));
        if (n <= 0) {
            ::close(fd);
            return std::nullopt;  // Error or short read: torn record.
        }
        done += static_cast<std::size_t>(n);
    }
    ::close(fd);
    return bytes;
}

bool
RealVfs::exists(const std::string& path)
{
    std::error_code ec;
    return fs::exists(path, ec);
}

std::optional<std::int64_t>
RealVfs::fileSize(const std::string& path)
{
    std::error_code ec;
    const auto size = fs::file_size(path, ec);
    if (ec)
        return std::nullopt;
    return static_cast<std::int64_t>(size);
}

std::vector<std::string>
RealVfs::listDir(const std::string& dir)
{
    std::vector<std::string> names;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
        if (entry.is_regular_file(ec))
            names.push_back(entry.path().filename().string());
    }
    std::sort(names.begin(), names.end());
    return names;
}

bool
RealVfs::append(const std::string& path,
                const std::vector<std::uint8_t>& bytes)
{
    return writeWholeFile(path, bytes, O_WRONLY | O_CREAT | O_APPEND);
}

bool
RealVfs::writeFile(const std::string& path,
                   const std::vector<std::uint8_t>& bytes)
{
    return writeWholeFile(path, bytes, O_WRONLY | O_CREAT | O_TRUNC);
}

bool
RealVfs::renameFile(const std::string& from, const std::string& to)
{
    return ::rename(from.c_str(), to.c_str()) == 0;
}

bool
RealVfs::removeFile(const std::string& path)
{
    return ::unlink(path.c_str()) == 0;
}

bool
RealVfs::truncateFile(const std::string& path, std::int64_t size)
{
    return ::truncate(path.c_str(), static_cast<off_t>(size)) == 0;
}

bool
RealVfs::syncFile(const std::string& path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return false;
    const bool ok = ::fsync(fd) == 0;
    ::close(fd);
    return ok;
}

bool
RealVfs::createDirectories(const std::string& dir)
{
    std::error_code ec;
    fs::create_directories(dir, ec);
    return !ec;
}

std::unique_ptr<VfsLock>
RealVfs::tryLockExclusive(const std::string& path)
{
    const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd < 0)
        return nullptr;
    if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
        ::close(fd);
        return nullptr;
    }
    return std::make_unique<RealVfsLock>(fd);
}

std::shared_ptr<Vfs>
realVfs()
{
    static const std::shared_ptr<Vfs> instance =
        std::make_shared<RealVfs>();
    return instance;
}

}  // namespace veal::persist
