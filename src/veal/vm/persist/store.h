#ifndef VEAL_VM_PERSIST_STORE_H_
#define VEAL_VM_PERSIST_STORE_H_

/**
 * @file
 * The file-backed persistent code cache behind the warm tier.
 *
 * One directory holds one blob file per persisted translation (see
 * persist/blob.h) plus a MANIFEST recording the recency order, so a
 * `veal-serve --cache-dir` run warm-starts from what previous runs
 * translated.  Ownership discipline: the store is the *third* owner of
 * a translation (after a shard's CodeCache and the WarmTier), and the
 * eviction contract extends to disk -- evicting or invalidating an
 * entry deletes its blob file, so a later run can never resurrect an
 * image the service dropped.
 *
 * Eviction is an epoch-stamped segmented LRU (probation + protected)
 * over a flat slot array with intrusive prev/next links -- the same
 * flat-array discipline as PR 5's MRT rebuild, so every steady-state
 * operation (hit, save, evict) is O(1) no matter how many entries the
 * store holds.  First sight of a key lands in probation; a hit promotes
 * it to the protected segment (demoting the protected tail back to
 * probation when over its share), so one cold scan cannot flush the
 * hot set.  Eviction takes the probation tail first.
 *
 * Degradation contract (PR 4 lineage): nothing here crashes the
 * service.  A corrupt or version-skewed blob is quarantined on disk
 * (renamed *.quarantined, dropped from the index) and the load reports
 * a miss; a corrupt or missing MANIFEST rebuilds the index by scanning
 * the blob files.  Every event is counted and, when a registry is
 * attached, metered as `vm.persist.*`.
 *
 * Thread-safety: none by design, exactly like CodeCache -- the service
 * touches the store only from its sequential phases, which is also what
 * keeps warm-started reports byte-identical at any shard/thread count.
 */

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "veal/vm/persist/blob.h"

namespace veal {
namespace metrics {
class Registry;
}  // namespace metrics
}  // namespace veal

namespace veal::persist {

/** Store sizing knobs (mirrors the veal-serve CLI). */
struct StoreOptions {
    /** Maximum resident entries; the probation tail evicts beyond it. */
    int max_entries = 4096;

    /**
     * Protected-segment share of max_entries, in percent.  The rest is
     * probation (scan-resistance: new keys must prove reuse to enter
     * the protected segment).
     */
    int protected_percent = 50;
};

/** Event counters (all deterministic for a fixed request sequence). */
struct StoreStats {
    std::int64_t saves = 0;
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t evictions = 0;
    std::int64_t invalidations = 0;
    std::int64_t corrupt = 0;       ///< Blob checksum/decode failures.
    std::int64_t version_skew = 0;  ///< Blobs from another format version.
    std::int64_t manifest_rebuilds = 0;
    std::int64_t size = 0;
};

/** The persistent, shareable code cache; see file comment. */
class PersistentStore {
  public:
    /**
     * Open (creating @p directory if needed) and index the store.  A
     * valid MANIFEST restores the exact recency order of the previous
     * run; otherwise the index rebuilds by scanning blob files in
     * sorted-name order (deterministic).  When @p registry is non-null,
     * every event also bumps a "vm.persist.*" counter.
     */
    PersistentStore(std::string directory, StoreOptions options,
                    metrics::Registry* registry = nullptr);

    /** Writes the MANIFEST (same as flush()). */
    ~PersistentStore();

    PersistentStore(const PersistentStore&) = delete;
    PersistentStore& operator=(const PersistentStore&) = delete;

    /**
     * Load @p key: reads + validates its blob.  A hit promotes the
     * entry toward the protected segment.  A corrupt/skewed blob is
     * quarantined and reported as a miss (the caller re-translates and
     * the next save replaces it).
     */
    std::optional<PersistedImage> load(const std::string& key);

    /** True without touching recency, statistics, or the file. */
    bool contains(const std::string& key) const;

    /**
     * Persist @p image (write-temp-then-rename, so a crash mid-save
     * never leaves a half blob under the live name).  Re-saving a key
     * replaces its blob in place.  May evict (deleting the victim's
     * blob file).
     */
    void save(const PersistedImage& image);

    /**
     * Drop @p key and delete its blob -- the on-disk half of the
     * checksum-invalidation path; true when it was resident.  Not an
     * eviction (counted separately, like CodeCache::erase()).
     */
    bool invalidate(const std::string& key);

    /** Write the MANIFEST (recency order survives the next open). */
    void flush();

    StoreStats stats() const;

    /** Add counters as "<prefix>.saves" etc. into @p registry. */
    void recordInto(metrics::Registry& registry,
                    const std::string& prefix) const;

    std::int64_t
    size() const
    {
        return static_cast<std::int64_t>(index_.size());
    }

    const std::string&
    directory() const
    {
        return directory_;
    }

    /** Blob path for @p key (tests corrupt bytes through this). */
    std::string blobPath(const std::string& key) const;

  private:
    /** Segment ids double as list indices. */
    enum Segment : int { kProbation = 0, kProtected = 1 };

    /** One flat-array slot; free slots chain through `next`. */
    struct Slot {
        std::string key;
        std::string file;        ///< Blob file name (directory-relative).
        std::int64_t epoch = 0;  ///< Stamp of the last touch.
        int segment = kProbation;
        int prev = -1;
        int next = -1;
        bool live = false;
    };

    /** Doubly-linked list head/tail over slot indices. */
    struct List {
        int head = -1;
        int tail = -1;
        int count = 0;
    };

    int allocSlot();
    void freeSlot(int slot);
    void pushFront(List& list, int slot);
    void unlink(List& list, int slot);
    void touch(int slot);
    void evictOne();
    void removeEntry(int slot, bool count_as_eviction);
    void quarantineFile(const std::string& file);
    void openIndex();
    bool loadManifest();
    void scanRebuild();
    void insertIndexed(const std::string& key, const std::string& file,
                       std::int64_t epoch, int segment);
    void count(const char* name, std::int64_t delta = 1);

    std::string directory_;
    StoreOptions options_;
    metrics::Registry* registry_ = nullptr;

    std::vector<Slot> slots_;
    int free_head_ = -1;
    List lists_[2];  ///< Probation, protected.
    std::unordered_map<std::string, int> index_;  ///< key -> slot.
    std::int64_t epoch_ = 0;

    StoreStats stats_;
};

}  // namespace veal::persist

#endif  // VEAL_VM_PERSIST_STORE_H_
