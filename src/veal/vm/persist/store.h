#ifndef VEAL_VM_PERSIST_STORE_H_
#define VEAL_VM_PERSIST_STORE_H_

/**
 * @file
 * The log-structured persistent code cache behind the warm tier.
 *
 * One directory holds packed segment files (persist/segment_log.h)
 * whose records are PR-8 checksummed blobs, an append-only commit log
 * (persist/manifest_log.h), and a LOCK file.  A save is: append the
 * blob to the active segment, then append an `add` record to the
 * manifest log -- the manifest append is the commit point, so a crash
 * anywhere leaves either both (durable) or a manifest-less orphan in
 * the segment (truncated on the next open).  Recovery is a replay:
 * apply manifest records to the last valid line, truncate torn tails
 * (manifest and segment), drop refs the segment bytes can no longer
 * back, and fall back to scanning the segment files themselves when
 * the manifest is gone -- the PR-8 scan-rebuild, now over records
 * instead of files.  Recovery is total by construction: every acked
 * save is present, every unacked one is cleanly absent, and a warm
 * veal-serve run over a recovered store renders byte-identical reports
 * (the `veal-faultsim --mode persist` campaign enumerates every crash
 * point and asserts exactly this).
 *
 * Re-saving, evicting, invalidating, or compacting a key turns its old
 * record into garbage; a compactor rewrites live records out of the
 * most-garbage sealed segment and deletes the file.  Eviction policy
 * is unchanged from PR 8: an epoch-stamped segmented LRU (probation +
 * protected) over a flat slot array, O(1) per operation.
 *
 * Multi-process safety: opening takes a non-blocking flock on
 * `<dir>/LOCK`.  Losing the race -- or any I/O failure later -- drops
 * the store to a *read-only tier* (PR-4 degradation-ladder lineage):
 * loads keep serving, saves/invalidates are skipped and counted
 * (`vm.persist.readonly`, `vm.persist.io_error`), nothing ever
 * crashes, and a read-only open performs no disk mutation at all (no
 * truncation, no sweep, no eviction deletes).
 *
 * A store written by the PR-8 file-per-entry layout (one `*.vpb` per
 * key plus a rewritten MANIFEST) migrates one-way on the first
 * writable open: each blob is appended to the segment log, committed
 * to the manifest log, and its file removed.
 *
 * Thread-safety: none by design, exactly like CodeCache -- the service
 * touches the store only from its sequential phases, which is also what
 * keeps warm-started reports byte-identical at any shard/thread count.
 */

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "veal/vm/persist/blob.h"
#include "veal/vm/persist/manifest_log.h"
#include "veal/vm/persist/segment_log.h"
#include "veal/vm/persist/vfs.h"

namespace veal {
namespace metrics {
class Registry;
}  // namespace metrics
}  // namespace veal

namespace veal::persist {

/** Store sizing knobs (mirrors the veal-serve CLI). */
struct StoreOptions {
    /** Maximum resident entries; the probation tail evicts beyond it. */
    int max_entries = 4096;

    /**
     * Protected-segment share of max_entries, in percent.  The rest is
     * probation (scan-resistance: new keys must prove reuse to enter
     * the protected segment).
     */
    int protected_percent = 50;

    /** Segment file size that seals the active segment. */
    std::int64_t segment_bytes = 256 * 1024;

    /** Sealed-segment garbage percent that triggers compaction. */
    int compact_garbage_percent = 50;

    /** Filesystem seam; null means the real filesystem. */
    std::shared_ptr<Vfs> vfs;
};

/** Event counters (all deterministic for a fixed request sequence). */
struct StoreStats {
    std::int64_t saves = 0;  ///< Acked (committed to the manifest log).
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t evictions = 0;
    std::int64_t invalidations = 0;
    std::int64_t corrupt = 0;       ///< Blob checksum/decode failures.
    std::int64_t version_skew = 0;  ///< Blobs from another format version.
    std::int64_t manifest_rebuilds = 0;  ///< Scan-rebuild fallbacks.

    // --- The I/O-failure taxonomy (distinct from corruption).
    std::int64_t io_errors = 0;      ///< Failed writes/renames/reads.
    std::int64_t readonly = 0;       ///< 1 once degraded to read-only.
    std::int64_t readonly_skips = 0; ///< Saves/invalidates skipped.

    // --- Recovery accounting.
    std::int64_t tmp_swept = 0;         ///< Stale *.tmp files deleted.
    std::int64_t tail_truncations = 0;  ///< Torn manifest/segment tails.
    std::int64_t orphans_dropped = 0;   ///< Unacked segment bytes cut.
    std::int64_t lost_records = 0;      ///< Refs the bytes can't back.
    std::int64_t migrated = 0;          ///< Legacy *.vpb blobs absorbed.

    // --- Log upkeep.
    std::int64_t compactions = 0;
    std::int64_t reclaimed_bytes = 0;   ///< Garbage deleted by compaction.
    std::int64_t manifest_rewrites = 0;

    std::int64_t size = 0;
    std::int64_t segments = 0;    ///< Segment files resident.
    std::int64_t live_bytes = 0;  ///< Referenced record bytes.
    std::int64_t log_bytes = 0;   ///< Total segment file bytes.
};

/** Where one key's payload currently lives (tests corrupt bytes here). */
struct RecordLocation {
    std::string path;          ///< Segment file.
    std::int64_t offset = 0;   ///< Of the *payload* (header skipped).
    std::int64_t length = 0;   ///< Payload bytes.
};

/** The persistent, shareable code cache; see file comment. */
class PersistentStore {
  public:
    /**
     * Open (creating @p directory if needed), lock, recover, and index
     * the store.  Losing the flock opens read-only.  When @p registry
     * is non-null, every event also bumps a "vm.persist.*" counter.
     */
    PersistentStore(std::string directory, StoreOptions options,
                    metrics::Registry* registry = nullptr);

    /** Flushes a manifest snapshot (same as flush()). */
    ~PersistentStore();

    PersistentStore(const PersistentStore&) = delete;
    PersistentStore& operator=(const PersistentStore&) = delete;

    /**
     * Load @p key: reads + validates its record.  A hit promotes the
     * entry toward the protected segment.  Corrupt bytes drop the
     * entry and report a miss (the caller re-translates); a transient
     * I/O failure keeps the entry and reports a miss (io_errors, not
     * corrupt).
     */
    std::optional<PersistedImage> load(const std::string& key);

    /** True without touching recency, statistics, or the files. */
    bool contains(const std::string& key) const;

    /**
     * Persist @p image: segment append, then manifest commit.  True
     * when acked (both appends landed); false when skipped (read-only
     * tier) or failed (degrades to read-only).  May evict and may
     * trigger compaction.
     */
    bool save(const PersistedImage& image);

    /**
     * Drop @p key and commit the removal -- the on-disk half of the
     * checksum-invalidation path; true when it was resident.  Not an
     * eviction (counted separately, like CodeCache::erase()).
     */
    bool invalidate(const std::string& key);

    /** Rewrite the manifest log as a snapshot (bounds replay time). */
    void flush();

    /**
     * Compact the worst sealed segment now regardless of threshold;
     * true when a segment was rewritten (tests and benches).
     */
    bool compactNow();

    StoreStats stats() const;

    /** Add counters as "<prefix>.saves" etc. into @p registry. */
    void recordInto(metrics::Registry& registry,
                    const std::string& prefix) const;

    std::int64_t
    size() const
    {
        return static_cast<std::int64_t>(index_.size());
    }

    const std::string&
    directory() const
    {
        return directory_;
    }

    /** True once degraded (lock lost at open, or I/O failure later). */
    bool readOnly() const { return read_only_; }

    /** Resident keys in sorted order (tests and the crash campaign). */
    std::vector<std::string> keys() const;

    /** Current payload location of @p key, or nullopt. */
    std::optional<RecordLocation> recordLocation(
        const std::string& key) const;

  private:
    /** LRU segment ids double as list indices. */
    enum Segment : int { kProbation = 0, kProtected = 1 };

    /** One flat-array slot; free slots chain through `next`. */
    struct Slot {
        std::string key;
        RecordRef ref;           ///< Where the payload lives.
        std::int64_t epoch = 0;  ///< Stamp of the last touch.
        int segment = kProbation;
        int prev = -1;
        int next = -1;
        bool live = false;
    };

    /** Doubly-linked list head/tail over slot indices. */
    struct List {
        int head = -1;
        int tail = -1;
        int count = 0;
    };

    int allocSlot();
    void freeSlot(int slot);
    void pushFront(List& list, int slot);
    void unlink(List& list, int slot);
    void touch(int slot);
    void evictOne();
    void dropEntry(int slot);
    void removeEntry(int slot, bool count_as_eviction);
    void insertIndexed(const std::string& key, const RecordRef& ref,
                       std::int64_t epoch, int segment);
    void count(const char* name, std::int64_t delta = 1);
    void countIoError();
    void enterReadOnly();

    void openIndex();
    void sweepTmpFiles(const std::vector<std::string>& names);
    bool replayManifest(const ManifestReplay& replay);
    void scanRebuild(const std::vector<std::string>& names);
    void migrateLegacy(const std::vector<std::string>& names);
    void reconcileSegments(
        const std::vector<std::string>& names,
        const std::unordered_map<std::int64_t, std::int64_t>&
            high_water);
    void compactIfNeeded();
    bool compactSegment(std::int64_t victim);
    void maybeRewriteManifest();
    bool rewriteManifest();
    std::vector<ManifestRecord> snapshotRecords() const;

    std::string directory_;
    StoreOptions options_;
    metrics::Registry* registry_ = nullptr;

    std::shared_ptr<Vfs> vfs_;
    std::unique_ptr<VfsLock> lock_;
    SegmentLog segments_;
    ManifestLog manifest_;
    bool read_only_ = false;

    std::vector<Slot> slots_;
    int free_head_ = -1;
    List lists_[2];  ///< Probation, protected.
    std::unordered_map<std::string, int> index_;  ///< key -> slot.
    std::int64_t epoch_ = 0;

    /** Per-segment valid-prefix ends stashed by scanRebuild(). */
    std::unordered_map<std::int64_t, std::int64_t> scan_high_water_;

    StoreStats stats_;
};

}  // namespace veal::persist

#endif  // VEAL_VM_PERSIST_STORE_H_
