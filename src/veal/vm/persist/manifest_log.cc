#include "veal/vm/persist/manifest_log.h"

#include <filesystem>
#include <limits>
#include <sstream>

#include "veal/support/parse.h"

namespace veal::persist {

namespace {

constexpr const char* kManifestLogName = "MANIFEST.log";

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint32_t
lineCrc(const std::string& body)
{
    std::uint64_t digest = kFnvOffset;
    for (const char c : body) {
        digest ^= static_cast<std::uint8_t>(c);
        digest *= kFnvPrime;
    }
    return static_cast<std::uint32_t>(digest & 0xffffffffu);
}

std::string
crcHex(std::uint32_t crc)
{
    std::ostringstream os;
    os << std::hex << crc;
    return os.str();
}

int
hexDigit(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

/** Strict signed parse via the shared u64 parser (no sign needed). */
std::optional<std::int64_t>
parseI64Field(const std::string& text)
{
    const auto parsed = parseU64Strict(text);
    if (!parsed.has_value() ||
        *parsed > static_cast<std::uint64_t>(
                      std::numeric_limits<std::int64_t>::max()))
        return std::nullopt;
    return static_cast<std::int64_t>(*parsed);
}

/** Parse one record body (after the crc); nullopt when malformed. */
std::optional<ManifestRecord>
parseBody(const std::string& body)
{
    std::istringstream tokens(body);
    std::string word;
    if (!(tokens >> word))
        return std::nullopt;
    ManifestRecord record;
    if (word == "add") {
        record.kind = ManifestRecord::Kind::kAdd;
        std::string segment, offset, length, epoch, lru, key;
        if (!(tokens >> segment >> offset >> length >> epoch >> lru >>
              key))
            return std::nullopt;
        std::string extra;
        if (tokens >> extra)
            return std::nullopt;
        const auto seg = parseI64Field(segment);
        const auto off = parseI64Field(offset);
        const auto len = parseI64Field(length);
        const auto ep = parseI64Field(epoch);
        if (!seg || !off || !len || !ep ||
            (lru != "probation" && lru != "protected"))
            return std::nullopt;
        const auto unescaped = unescapeManifestKey(key);
        if (!unescaped.has_value() || unescaped->empty())
            return std::nullopt;
        record.ref.segment = *seg;
        record.ref.offset = *off;
        record.ref.length = *len;
        record.epoch = *ep;
        record.lru_segment = lru == "protected" ? 1 : 0;
        record.key = *unescaped;
        return record;
    }
    if (word == "evict" || word == "invalidate") {
        record.kind = word == "evict"
                          ? ManifestRecord::Kind::kEvict
                          : ManifestRecord::Kind::kInvalidate;
        std::string key;
        if (!(tokens >> key))
            return std::nullopt;
        std::string extra;
        if (tokens >> extra)
            return std::nullopt;
        const auto unescaped = unescapeManifestKey(key);
        if (!unescaped.has_value() || unescaped->empty())
            return std::nullopt;
        record.key = *unescaped;
        return record;
    }
    return std::nullopt;
}

std::string
formatBody(const ManifestRecord& record)
{
    std::ostringstream os;
    switch (record.kind) {
        case ManifestRecord::Kind::kAdd:
            os << "add " << record.ref.segment << " " << record.ref.offset
               << " " << record.ref.length << " " << record.epoch << " "
               << (record.lru_segment == 1 ? "protected" : "probation")
               << " " << escapeManifestKey(record.key);
            break;
        case ManifestRecord::Kind::kEvict:
            os << "evict " << escapeManifestKey(record.key);
            break;
        case ManifestRecord::Kind::kInvalidate:
            os << "invalidate " << escapeManifestKey(record.key);
            break;
    }
    return os.str();
}

}  // namespace

std::string
escapeManifestKey(const std::string& key)
{
    static const char* kHex = "0123456789abcdef";
    std::string out;
    out.reserve(key.size());
    for (const char c : key) {
        const auto byte = static_cast<std::uint8_t>(c);
        // Space and below, DEL and above, and '%' itself all escape:
        // record bodies are whitespace-tokenized lines.
        if (byte <= 0x20 || byte >= 0x7f || c == '%') {
            out.push_back('%');
            out.push_back(kHex[byte >> 4]);
            out.push_back(kHex[byte & 0xf]);
        } else {
            out.push_back(c);
        }
    }
    return out;
}

std::optional<std::string>
unescapeManifestKey(const std::string& text)
{
    std::string out;
    out.reserve(text.size());
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (text[i] != '%') {
            out.push_back(text[i]);
            continue;
        }
        if (i + 2 >= text.size())
            return std::nullopt;
        const int hi = hexDigit(text[i + 1]);
        const int lo = hexDigit(text[i + 2]);
        if (hi < 0 || lo < 0)
            return std::nullopt;
        out.push_back(static_cast<char>((hi << 4) | lo));
        i += 2;
    }
    return out;
}

ManifestLog::ManifestLog(std::string directory, std::shared_ptr<Vfs> vfs)
    : directory_(std::move(directory)), vfs_(std::move(vfs))
{
}

std::string
ManifestLog::path() const
{
    return (std::filesystem::path(directory_) / kManifestLogName)
        .string();
}

ManifestReplay
ManifestLog::replay()
{
    ManifestReplay replay;
    if (!vfs_->exists(path()))
        return replay;
    replay.present = true;
    const auto bytes = vfs_->readFile(path());
    if (!bytes.has_value())
        return replay;
    const std::string text(bytes->begin(), bytes->end());

    std::size_t pos = 0;
    // Header line first; anything else means "not our format" and the
    // store falls back to a segment scan.
    {
        const std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            return replay;  // Torn before the header completed.
        if (text.substr(pos, eol - pos) != kManifestLogHeader)
            return replay;
        replay.header_ok = true;
        pos = eol + 1;
        replay.valid_bytes = static_cast<std::int64_t>(pos);
    }

    // valid_bytes tracks the byte right after the LAST good line: the
    // truncation target when everything beyond it is damaged.  With a
    // single appender, a crash can only tear the final line, so bad
    // bytes after the last good line are the torn tail; bad lines
    // *before* a later good line can only be bit flips (counted, kept
    // in place -- truncating would lose the good records behind them;
    // the store schedules a snapshot rewrite instead).
    std::int64_t bad_before_last_good = 0;
    std::int64_t bad_pending = 0;  ///< Bad lines since the last good one.
    while (pos < text.size()) {
        const std::size_t eol = text.find('\n', pos);
        const bool unterminated = eol == std::string::npos;
        const std::string line =
            unterminated ? text.substr(pos)
                         : text.substr(pos, eol - pos);
        bool line_ok = false;
        const std::size_t space = line.find(' ');
        if (!unterminated && space != std::string::npos && space > 0) {
            const std::string crc_text = line.substr(0, space);
            const std::string body = line.substr(space + 1);
            bool crc_valid = !crc_text.empty() && crc_text.size() <= 8;
            std::uint32_t crc = 0;
            for (const char c : crc_text) {
                const int digit = hexDigit(c);
                if (digit < 0) {
                    crc_valid = false;
                    break;
                }
                crc = (crc << 4) | static_cast<std::uint32_t>(digit);
            }
            if (crc_valid && crc == lineCrc(body)) {
                auto record = parseBody(body);
                if (record.has_value()) {
                    replay.records.push_back(std::move(*record));
                    line_ok = true;
                }
            }
        }
        if (line_ok) {
            replay.valid_bytes = static_cast<std::int64_t>(eol + 1);
            bad_before_last_good += bad_pending;
            bad_pending = 0;
        } else {
            ++bad_pending;
        }
        if (unterminated)
            break;
        pos = eol + 1;
    }
    replay.corrupt_lines = bad_before_last_good;
    replay.torn_tail =
        replay.valid_bytes < static_cast<std::int64_t>(text.size());
    return replay;
}

bool
ManifestLog::appendLine(const std::string& body)
{
    const std::string line =
        crcHex(lineCrc(body)) + " " + body + "\n";
    std::vector<std::uint8_t> bytes(line.begin(), line.end());
    if (!vfs_->append(path(), bytes))
        return false;
    ++appends_since_rewrite_;
    return true;
}

bool
ManifestLog::appendAdd(const std::string& key, const RecordRef& ref,
                       std::int64_t epoch, int lru_segment)
{
    ManifestRecord record;
    record.kind = ManifestRecord::Kind::kAdd;
    record.key = key;
    record.ref = ref;
    record.epoch = epoch;
    record.lru_segment = lru_segment;
    return appendLine(formatBody(record));
}

bool
ManifestLog::appendEvict(const std::string& key)
{
    ManifestRecord record;
    record.kind = ManifestRecord::Kind::kEvict;
    record.key = key;
    return appendLine(formatBody(record));
}

bool
ManifestLog::appendInvalidate(const std::string& key)
{
    ManifestRecord record;
    record.kind = ManifestRecord::Kind::kInvalidate;
    record.key = key;
    return appendLine(formatBody(record));
}

bool
ManifestLog::rewrite(const std::vector<ManifestRecord>& records)
{
    std::ostringstream os;
    os << kManifestLogHeader << "\n";
    for (const auto& record : records) {
        const std::string body = formatBody(record);
        os << crcHex(lineCrc(body)) << " " << body << "\n";
    }
    const std::string text = os.str();
    const std::string temp = path() + ".tmp";
    std::vector<std::uint8_t> bytes(text.begin(), text.end());
    if (!vfs_->writeFile(temp, bytes))
        return false;
    if (!vfs_->renameFile(temp, path()))
        return false;
    appends_since_rewrite_ = 0;
    return true;
}

bool
ManifestLog::truncateTo(std::int64_t bytes)
{
    return vfs_->truncateFile(path(), bytes);
}

}  // namespace veal::persist
