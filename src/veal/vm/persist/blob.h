#ifndef VEAL_VM_PERSIST_BLOB_H_
#define VEAL_VM_PERSIST_BLOB_H_

/**
 * @file
 * Versioned, checksummed serialization of one translated loop -- the
 * unit the persistent code cache stores on disk.
 *
 * The code cache dying with the process forfeits VEAL's whole premise
 * (translation cost amortized across reuse), so a blob captures enough
 * of a `TranslationResult` to serve the key on the next run without
 * re-translating: the encoded `ControlImage` words plus a
 * `TranslationSummary` -- the handful of scalars the analytic LA cost
 * model (sim/la_timing) actually reads.  `summaryLoopCost()` reproduces
 * `acceleratorLoopCost()` bit-exactly from the summary alone, which is
 * what makes warm-started service reports byte-identical to in-process
 * warm serves without persisting schedules or dataflow graphs.
 *
 * Negative results persist too (ok == false with the reject reason), so
 * a key that rejected translation stays rejected across restarts
 * instead of burning a re-translation, mirroring the warm tier's
 * negative entries.
 *
 * Robustness contract (PR 4 lineage): decodeBlob() never panics.  A
 * truncated, version-skewed, or bit-flipped blob comes back as a typed
 * BlobError; the store quarantines the file and the service falls back
 * to a cold translation -- degrade, don't crash.
 */

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "veal/arch/la_config.h"
#include "veal/sim/la_timing.h"
#include "veal/vm/translator.h"

namespace veal::persist {

/**
 * Blob format magic ("VPB1" little-endian) and versions.  Version 1 is
 * the PR-8 layout; version 2 appends an optional fleet-score section
 * (see FleetScoreSet).  Blobs without fleet scores still encode as
 * version 1, byte-identical to PR-8 output, so single-design-point
 * stores and their pinned benchmarks never change.
 */
constexpr std::uint32_t kBlobMagic = 0x31425056u;
constexpr std::uint32_t kBlobVersion = 1;
constexpr std::uint32_t kBlobVersionFleet = 2;

/**
 * One backend's price for a loop, as computed by the fleet scorer.
 * Cycle fields are the full modeled invocation totals (TLB-inclusive
 * when the service runs with --tlb) at the canonical scoring iteration
 * count, so rehydrated placements reproduce live scoring bit-exactly.
 */
struct FleetBackendScore {
    bool ok = false;
    TranslationReject reject = TranslationReject::kNone;
    std::int32_t ii = 0;
    std::int32_t stage_count = 0;
    std::int64_t first_cycles = 0;  ///< First invocation, setup included.
    std::int64_t warm_cycles = 0;   ///< Steady-state re-invocation.
};

/**
 * The fleet scorer's verdict for one key: one FleetBackendScore per
 * backend, index-aligned with the FleetConfig that produced them.  The
 * signature is an FNV fold of every backend's knobs; a blob whose
 * signature doesn't match the running fleet is treated as unscored
 * (the fleet changed shape, so the prices are stale).
 */
struct FleetScoreSet {
    std::uint64_t signature = 0;
    std::int64_t scoring_iterations = 0;
    std::int64_t cpu_cycles = 0;  ///< Scalar-CPU price at the same count.
    std::vector<FleetBackendScore> backends;
};

/**
 * The scalars the analytic invocation-cost model reads, lifted out of a
 * TranslationResult so pricing survives without the heavyweight parts.
 */
struct TranslationSummary {
    bool ok = false;
    TranslationReject reject = TranslationReject::kNone;
    TranslationMode mode = TranslationMode::kFullyDynamic;

    // Schedule shape (pipeline term of the cost model).
    std::int32_t ii = 0;
    std::int32_t stage_count = 0;
    std::int32_t length = 0;

    // Setup/drain terms.
    std::int32_t fu_units = 0;       ///< graph.numFuUnits()
    std::int32_t live_in_regs = 0;   ///< reg_of_source_op entries >= 0
    std::int32_t live_outs = 0;      ///< units with is_live_out

    /**
     * Per-stream element strides (loads first, then stores), feeding the
     * TLB distinct-page model.  Sizes double as the stream counts of the
     * setup term.
     */
    std::vector<std::int64_t> load_strides;
    std::vector<std::int64_t> store_strides;

    /**
     * Fleet extension (blob version 2): which backend the steerer chose
     * for this key (-1 = CPU fallback / none), and the per-backend score
     * set so a warm restart rehydrates placements without re-scoring.
     * Absent on single-design-point blobs, which stay version 1.
     */
    std::int32_t fleet_backend = -1;
    std::optional<FleetScoreSet> fleet;
};

/** Lift the cost-model scalars out of @p translation. */
TranslationSummary summarize(const TranslationResult& translation);

/**
 * Invocation cost computed from the summary alone -- bit-identical to
 * acceleratorLoopCost() on the summarized translation (pinned by a
 * differential test).  @p summary must be ok.
 */
LaInvocationCost summaryLoopCost(const TranslationSummary& summary,
                                 const LaConfig& config,
                                 std::int64_t iterations,
                                 bool first_invocation);

/** One persisted translation: key + summary + encoded image words. */
struct PersistedImage {
    std::string key;
    TranslationSummary summary;

    /** ControlImage words (empty when !summary.ok). */
    std::vector<std::uint32_t> image_words;
};

/** Why a blob failed to decode or read (never a crash). */
enum class BlobError : int {
    kTruncated = 0,  ///< Ran out of bytes mid-field.
    kBadMagic,       ///< Not a blob at all.
    kVersionSkew,    ///< Future (or retired) format version.
    kChecksum,       ///< Payload bytes corrupt.
    kMalformed,      ///< Checksummed OK but fields are inconsistent.

    /**
     * The bytes could not be *read* (failed read, short write, ENOSPC,
     * vanished file) -- an I/O failure, not corruption.  The store
     * counts these as `vm.persist.io_error` and keeps the entry (the
     * next read may succeed), unlike the corruption errors above which
     * drop it.
     */
    kIoError,
};

/** Error name, e.g. "version-skew". */
const char* toString(BlobError error);

/** Serialize @p image (little-endian, FNV-1a checksummed). */
std::vector<std::uint8_t> encodeBlob(const PersistedImage& image);

/**
 * Parse @p size bytes at @p data.  Total function: any input yields
 * either a validated PersistedImage or a typed error.
 */
std::variant<PersistedImage, BlobError> decodeBlob(
    const std::uint8_t* data, std::size_t size);

}  // namespace veal::persist

#endif  // VEAL_VM_PERSIST_BLOB_H_
