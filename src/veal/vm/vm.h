#ifndef VEAL_VM_VM_H_
#define VEAL_VM_VM_H_

/**
 * @file
 * The co-designed virtual machine (paper §4.2).
 *
 * The VM monitors an application, dynamically translates hot modulo-
 * schedulable loops for whatever LA the system has, caches the generated
 * control in a software code cache, and falls back to the baseline CPU
 * whenever translation is impossible or unprofitable.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "veal/arch/cpu_config.h"
#include "veal/arch/la_config.h"
#include "veal/sim/tlb_model.h"
#include "veal/vm/application.h"
#include "veal/vm/code_cache.h"
#include "veal/vm/translator.h"

namespace veal {

namespace metrics {
class Registry;
}  // namespace metrics

/** Runtime policy knobs for the VM. */
struct VmOptions {
    TranslationMode mode = TranslationMode::kFullyDynamic;

    /** Code cache entries (paper §4.3: 16 translations, LRU). */
    int code_cache_entries = 16;

    /**
     * Fraction of invocations that must re-translate despite the cache
     * (Figure 6's miss-rate lines).  0 = each loop translates once.
     */
    double retranslation_rate = 0.0;

    /**
     * When >= 0, overrides the metered per-translation penalty with a
     * fixed cycle count (the x-axis of Figure 6).
     */
    double penalty_override = -1.0;

    /**
     * Stream-TLB cost model (sim/tlb_model.h).  Off by default; when
     * enabled, page-walk stalls ride on the LA invocation prices, so
     * the LA-vs-CPU path choice and the code-cache fixed point see TLB
     * pressure exactly like any other cycle (the Figure-6 TLB
     * sensitivity axis).
     */
    TlbConfig tlb = TlbConfig::off();
};

/** Outcome for one loop site. */
struct SiteResult {
    std::string loop_name;
    bool accelerated = false;

    /**
     * Why translation gave up: the *first* failed piece's reason (the
     * one the VM hit first; later pieces' reasons are in the metrics
     * trace).  kNone when every piece translated.
     */
    TranslationReject reject = TranslationReject::kNone;

    /** Cycles this site costs on the baseline CPU (original binary). */
    std::int64_t baseline_cycles = 0;

    /** Cycles actually spent (LA or CPU path, plus translation). */
    std::int64_t actual_cycles = 0;

    /** Cycles spent inside the translator for this site. */
    std::int64_t translation_cycles = 0;

    /** Number of translations performed. */
    std::int64_t translations = 0;

    /** Metered instructions per translation (Figure 8's metric). */
    double instructions_per_translation = 0.0;

    /** Achieved II / MII / stage count (accelerated pieces only). */
    int ii = 0;
    int mii = 0;
    int stage_count = 0;
};

/** Dispatch-level outcome of one hardened piece (fault runs only). */
struct FaultPieceReport {
    /** The dispatched loop (owned by the caller's Application). */
    const Loop* loop = nullptr;

    /** Final translation (ok, or the last ladder failure when pinned). */
    TranslationResult translation;

    /** Rung the piece's translation settled on. */
    DegradationRung rung = DegradationRung::kNominal;

    std::int64_t la_dispatches = 0;
    std::int64_t cpu_dispatches = 0;

    /** Checksum mismatches detected on this piece's cached image. */
    std::int64_t checksum_invalidations = 0;

    /** Re-translations forced by invalidation (bounded by the plan). */
    std::int64_t retranslations = 0;

    /** Pinned to the CPU after repeated strikes / exhausted retries. */
    bool quarantined = false;
};

/** Hardened outcome of one loop site. */
struct FaultSiteReport {
    std::string loop_name;

    /** Deepest degradation rung the site needed. */
    DegradationRung rung = DegradationRung::kNominal;

    /** Pieces actually dispatched (the unfissioned loop after a
        no-fission retry; the site loop when CPU-pinned). */
    std::vector<FaultPieceReport> pieces;
};

/** Everything a hardened run recovered from (see DESIGN.md §11). */
struct FaultRunReport {
    std::vector<FaultSiteReport> sites;

    std::int64_t checksum_invalidations = 0;
    std::int64_t quarantines = 0;
    std::int64_t retranslations = 0;
    std::int64_t la_dispatches = 0;
    std::int64_t cpu_dispatches = 0;
};

/** Whole-application outcome. */
struct AppRunResult {
    std::string app_name;

    /** Cycles with no LA at all (the speedup denominator's numerator). */
    std::int64_t baseline_cycles = 0;

    /** Cycles with the VM + LA, including all translation penalties. */
    std::int64_t accelerated_cycles = 0;

    /** Total translation penalty included above. */
    std::int64_t translation_cycles = 0;

    double speedup = 1.0;

    std::int64_t cache_hits = 0;
    std::int64_t cache_misses = 0;

    std::vector<SiteResult> sites;
};

/**
 * The co-designed VM for one (LA, baseline CPU) system.
 *
 * Thread-safety: a VirtualMachine is immutable after construction and
 * run() keeps all per-run state on the stack, so distinct threads may
 * run() distinct (or even the same) instance concurrently.  The parallel
 * sweep engine (veal/explore) relies on this contract; keep run() const.
 */
class VirtualMachine {
  public:
    VirtualMachine(LaConfig la, CpuConfig baseline, VmOptions options);

    /** Run @p app to completion and report timing. */
    AppRunResult run(const Application& app) const;

    /**
     * As run(), additionally reporting into @p registry (counters
     * "vm.*", the "vm.ii" histogram, and per-loop trace events; see
     * DESIGN.md §10).  The per-phase "vm.phase_cycles.*" counters this
     * run adds sum *exactly* to the returned translation_cycles -- the
     * attribution is audited with an assertion, not approximated.
     * @p registry may be nullptr (equivalent to the plain overload) and
     * may already hold counts from earlier runs (deltas accumulate).
     */
    AppRunResult run(const Application& app,
                     metrics::Registry* registry) const;

    /**
     * Hardened run: as run(app, registry) but with @p faults injecting
     * deterministic failures into the translation pipeline, which the VM
     * survives by climbing the degradation ladder (relaxed II -> no CCA
     * -> no fission -> pinned CPU), validating control-image checksums
     * before every cached dispatch, and quarantining sites whose images
     * keep corrupting (DESIGN.md §11).  Architectural results are
     * bit-identical to the interpreter under *any* fault plan; only
     * timing degrades.  @p faults == nullptr delegates to the nominal
     * overload.  Fault-taxonomy counters land under "vm.fault.*"; the
     * per-run story is written to @p fault_report when non-null.
     *
     * The cache is *simulated* here (round-robin dispatch through a real
     * CodeCache) rather than modelled, LA-ok pieces always take the LA
     * path, and VmOptions::retranslation_rate / penalty_override do not
     * apply -- this overload answers "does the VM survive faults", not
     * Figure 6's analytic sweep.
     */
    AppRunResult run(const Application& app, metrics::Registry* registry,
                     FaultInjector* faults,
                     FaultRunReport* fault_report = nullptr) const;

    const LaConfig& laConfig() const { return la_; }
    const CpuConfig& cpuConfig() const { return cpu_; }
    const VmOptions& options() const { return options_; }

  private:
    LaConfig la_;
    CpuConfig cpu_;
    VmOptions options_;
};

/**
 * Cycles for the whole application on @p cpu alone (no LA): used both as
 * the speedup baseline and for the 2-/4-issue comparison bars.
 */
std::int64_t cpuOnlyCycles(const Application& app, const CpuConfig& cpu);

}  // namespace veal

#endif  // VEAL_VM_VM_H_
