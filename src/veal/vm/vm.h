#ifndef VEAL_VM_VM_H_
#define VEAL_VM_VM_H_

/**
 * @file
 * The co-designed virtual machine (paper §4.2).
 *
 * The VM monitors an application, dynamically translates hot modulo-
 * schedulable loops for whatever LA the system has, caches the generated
 * control in a software code cache, and falls back to the baseline CPU
 * whenever translation is impossible or unprofitable.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "veal/arch/cpu_config.h"
#include "veal/arch/la_config.h"
#include "veal/vm/application.h"
#include "veal/vm/code_cache.h"
#include "veal/vm/translator.h"

namespace veal {

namespace metrics {
class Registry;
}  // namespace metrics

/** Runtime policy knobs for the VM. */
struct VmOptions {
    TranslationMode mode = TranslationMode::kFullyDynamic;

    /** Code cache entries (paper §4.3: 16 translations, LRU). */
    int code_cache_entries = 16;

    /**
     * Fraction of invocations that must re-translate despite the cache
     * (Figure 6's miss-rate lines).  0 = each loop translates once.
     */
    double retranslation_rate = 0.0;

    /**
     * When >= 0, overrides the metered per-translation penalty with a
     * fixed cycle count (the x-axis of Figure 6).
     */
    double penalty_override = -1.0;
};

/** Outcome for one loop site. */
struct SiteResult {
    std::string loop_name;
    bool accelerated = false;

    /**
     * Why translation gave up: the *first* failed piece's reason (the
     * one the VM hit first; later pieces' reasons are in the metrics
     * trace).  kNone when every piece translated.
     */
    TranslationReject reject = TranslationReject::kNone;

    /** Cycles this site costs on the baseline CPU (original binary). */
    std::int64_t baseline_cycles = 0;

    /** Cycles actually spent (LA or CPU path, plus translation). */
    std::int64_t actual_cycles = 0;

    /** Cycles spent inside the translator for this site. */
    std::int64_t translation_cycles = 0;

    /** Number of translations performed. */
    std::int64_t translations = 0;

    /** Metered instructions per translation (Figure 8's metric). */
    double instructions_per_translation = 0.0;

    /** Achieved II / MII / stage count (accelerated pieces only). */
    int ii = 0;
    int mii = 0;
    int stage_count = 0;
};

/** Whole-application outcome. */
struct AppRunResult {
    std::string app_name;

    /** Cycles with no LA at all (the speedup denominator's numerator). */
    std::int64_t baseline_cycles = 0;

    /** Cycles with the VM + LA, including all translation penalties. */
    std::int64_t accelerated_cycles = 0;

    /** Total translation penalty included above. */
    std::int64_t translation_cycles = 0;

    double speedup = 1.0;

    std::int64_t cache_hits = 0;
    std::int64_t cache_misses = 0;

    std::vector<SiteResult> sites;
};

/**
 * The co-designed VM for one (LA, baseline CPU) system.
 *
 * Thread-safety: a VirtualMachine is immutable after construction and
 * run() keeps all per-run state on the stack, so distinct threads may
 * run() distinct (or even the same) instance concurrently.  The parallel
 * sweep engine (veal/explore) relies on this contract; keep run() const.
 */
class VirtualMachine {
  public:
    VirtualMachine(LaConfig la, CpuConfig baseline, VmOptions options);

    /** Run @p app to completion and report timing. */
    AppRunResult run(const Application& app) const;

    /**
     * As run(), additionally reporting into @p registry (counters
     * "vm.*", the "vm.ii" histogram, and per-loop trace events; see
     * DESIGN.md §10).  The per-phase "vm.phase_cycles.*" counters this
     * run adds sum *exactly* to the returned translation_cycles -- the
     * attribution is audited with an assertion, not approximated.
     * @p registry may be nullptr (equivalent to the plain overload) and
     * may already hold counts from earlier runs (deltas accumulate).
     */
    AppRunResult run(const Application& app,
                     metrics::Registry* registry) const;

    const LaConfig& laConfig() const { return la_; }
    const CpuConfig& cpuConfig() const { return cpu_; }
    const VmOptions& options() const { return options_; }

  private:
    LaConfig la_;
    CpuConfig cpu_;
    VmOptions options_;
};

/**
 * Cycles for the whole application on @p cpu alone (no LA): used both as
 * the speedup baseline and for the 2-/4-issue comparison bars.
 */
std::int64_t cpuOnlyCycles(const Application& app, const CpuConfig& cpu);

}  // namespace veal

#endif  // VEAL_VM_VM_H_
