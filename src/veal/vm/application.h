#ifndef VEAL_VM_APPLICATION_H_
#define VEAL_VM_APPLICATION_H_

/**
 * @file
 * The VM's view of an application: its loop sites with execution profile,
 * plus the acyclic remainder.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "veal/ir/loop.h"

namespace veal {

/** One static loop in an application binary. */
struct LoopSite {
    /** The loop as the (transformed or plain) binary expresses it. */
    Loop loop;

    /**
     * Non-empty when the static compiler fissioned the loop to fit stream
     * limits: the LA executes (and the transformed binary contains) these
     * pieces in sequence instead of @p loop.
     */
    std::vector<Loop> fissioned;

    /** Times this site is entered over the whole run. */
    std::int64_t invocations = 1;

    /** Trip count per invocation. */
    std::int64_t iterations = 100;
};

/** A whole program, profiled at the loop level. */
struct Application {
    std::string name;
    std::vector<LoopSite> sites;

    /**
     * Baseline (1-issue) cycles spent outside any loop.  Wider CPUs scale
     * this by CpuConfig::acyclic_speedup; the LA never touches it.
     */
    std::int64_t acyclic_cycles = 0;
};

}  // namespace veal

#endif  // VEAL_VM_APPLICATION_H_
