#ifndef VEAL_VM_WARM_TIER_H_
#define VEAL_VM_WARM_TIER_H_

/**
 * @file
 * The shared warm tier behind every shard's private CodeCache.
 *
 * The translation service (veal/service) gives each worker shard its
 * own LRU CodeCache, but a loop translated by shard A must never be
 * re-translated by shard B: once any shard finishes a translation, the
 * result (and its encoded control image + checksum) is published here,
 * and every shard consults the tier on a shard-local miss.  Negative
 * results are published too -- a key that rejected translation stays
 * rejected until invalidated, instead of burning a re-translation every
 * time a different tenant resubmits it.
 *
 * Concurrency discipline (how the service keeps byte-identical output
 * at any shard/thread count): all writes -- publish() and invalidate()
 * -- happen in the service's *sequential* phases, ordered by request
 * sequence number; the parallel shard phase only reads via find().
 * The tier therefore needs no locking, and the epoch/sequence tags on
 * every entry make "who translated this, when" auditable in tests.
 *
 * Entries are handed out as shared_ptr: a request served early in a
 * tick keeps its entry alive for reduction-time pricing even if a later
 * request in the same tick invalidates the key (fault-layer checksum
 * mismatch).  Invalidation drops the key, not the outstanding readers.
 */

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "veal/vm/control_image.h"
#include "veal/vm/persist/blob.h"
#include "veal/vm/translator.h"

namespace veal {

/** Shared second-level translation cache; see file comment. */
class WarmTier {
  public:
    /**
     * One published translation outcome.  Two flavors share the slot:
     * in-process entries carry the full TranslationResult; entries
     * rehydrated from the persistent store carry only the compact
     * summary (summaryBacked() == true) -- pricing through
     * persist::summaryLoopCost() is bit-identical, so serves cannot
     * tell the difference.
     */
    struct Entry {
        /** Full result; `translation.ok == false` is a negative entry.
            Untrustworthy when `summary` is set (default-constructed). */
        TranslationResult translation;

        /** Set for store-rehydrated entries; the pricing authority. */
        std::optional<persist::TranslationSummary> summary;

        bool
        summaryBacked() const
        {
            return summary.has_value();
        }

        /** The serving verdict, whichever flavor backs the entry. */
        bool
        ok() const
        {
            return summary.has_value() ? summary->ok : translation.ok;
        }

        TranslationReject
        reject() const
        {
            return summary.has_value() ? summary->reject
                                       : translation.reject;
        }

        /** Encoded image (successful entries only).  The fault layer
            flips bits here in place; `translation` stays pristine. */
        std::optional<ControlImage> image;

        /** image->checksum() at publish time, validated on serves. */
        std::uint32_t expected_checksum = 0;

        /** Service tick that published this entry. */
        std::int64_t epoch = 0;

        /** Sequence number of the publishing request (audit trail). */
        std::int64_t sequence = 0;

        /**
         * Fleet backend index this entry was translated for, or -1 in
         * single-design-point mode.  A warm serve is only valid when
         * the steerer's placement matches: an entry translated for
         * backend 2 cannot price an invocation on backend 0.
         */
        int backend = -1;
    };

    using EntryRef = std::shared_ptr<const Entry>;

    /** Accounting snapshot (all values shard-count invariant). */
    struct Stats {
        std::int64_t publishes = 0;
        std::int64_t republishes = 0;  ///< Publish over an existing key.
        std::int64_t serves = 0;
        std::int64_t invalidations = 0;
        std::int64_t size = 0;
    };

    /**
     * Publish @p translation (with its pre-encoded @p image when ok)
     * for @p key at (@p epoch, @p sequence).  Re-publishing an existing
     * key (a re-translation after invalidation) replaces the entry.
     */
    void publish(const std::string& key, TranslationResult translation,
                 std::optional<ControlImage> image, std::int64_t epoch,
                 std::int64_t sequence, int backend = -1);

    /**
     * Publish a store-rehydrated entry: the compact @p summary plus the
     * validated @p image (successful entries only).  Serves and the
     * fault layer's corruption probes treat it exactly like a full
     * entry; only pricing reads the summary.
     */
    void publishSummary(const std::string& key,
                        persist::TranslationSummary summary,
                        std::optional<ControlImage> image,
                        std::int64_t epoch, std::int64_t sequence,
                        int backend = -1);

    /** Entry for @p key, or null.  Never mutates (parallel-phase safe). */
    EntryRef find(const std::string& key) const;

    /**
     * As find(), also counting a serve -- call from sequential phases
     * only (mutates statistics).
     */
    EntryRef serve(const std::string& key);

    /**
     * Mutable entry for @p key (the fault layer flips image bits in
     * place, as the hardened VM does).  Sequential phases only.
     */
    std::shared_ptr<Entry> mutableEntry(const std::string& key);

    /**
     * Drop @p key (checksum mismatch); true when it was resident.
     * Outstanding EntryRefs stay valid.
     */
    bool invalidate(const std::string& key);

    Stats stats() const;

    std::int64_t size() const
    {
        return static_cast<std::int64_t>(entries_.size());
    }

    using ScoreRef = std::shared_ptr<const persist::FleetScoreSet>;

    /**
     * Fleet-score side table (DESIGN.md §17): scoring a key against
     * every backend is the expensive part of steering, so the verdict
     * is cached here beside the translations.  Scores are pure derived
     * data (loop shape x fleet signature), so invalidate() -- which
     * exists for image corruption -- leaves them resident.  Same write
     * discipline as entries: sequential phases only.
     */
    void publishScores(const std::string& key, ScoreRef scores);

    /** Cached score set for @p key, or null.  Parallel-phase safe. */
    ScoreRef findScores(const std::string& key) const;

  private:
    std::unordered_map<std::string, std::shared_ptr<Entry>> entries_;
    std::unordered_map<std::string, ScoreRef> scores_;
    std::int64_t publishes_ = 0;
    std::int64_t republishes_ = 0;
    std::int64_t serves_ = 0;
    std::int64_t invalidations_ = 0;
};

}  // namespace veal

#endif  // VEAL_VM_WARM_TIER_H_
