#include "veal/vm/vm.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>

#include "veal/sim/batch.h"
#include "veal/sim/cpu_sim.h"
#include "veal/vm/control_image.h"
#include "veal/sim/la_timing.h"
#include "veal/support/assert.h"
#include "veal/support/metrics/metrics.h"

namespace veal {

VirtualMachine::VirtualMachine(LaConfig la, CpuConfig baseline,
                               VmOptions options)
    : la_(std::move(la)), cpu_(std::move(baseline)),
      options_(std::move(options))
{}

namespace {

/** Everything the VM derives for one translated piece of one site. */
struct PiecePlan {
    const Loop* loop = nullptr;
    TranslationResult translation;
    std::int64_t cpu_cycles_per_invocation = 0;
    std::int64_t la_first_invocation = 0;  ///< Cache-miss invocation cost.
    std::int64_t la_warm_invocation = 0;   ///< Cache-hit invocation cost.
    TlbCharge tlb_first;  ///< TLB share of la_first_invocation.
    TlbCharge tlb_warm;   ///< TLB share of la_warm_invocation.
};

/** Rejects the degradation ladder can recover from; anything else (bad
    analysis, missing FU classes, stream overflow) would fail identically
    at every rung, so the site pins straight to the CPU. */
bool
recoverableReject(TranslationReject reject)
{
    return reject == TranslationReject::kScheduleFailed ||
           reject == TranslationReject::kTooFewRegisters ||
           reject == TranslationReject::kCcaMapping ||
           reject == TranslationReject::kBudgetExhausted;
}

}  // namespace

AppRunResult
VirtualMachine::run(const Application& app) const
{
    return run(app, nullptr);
}

AppRunResult
VirtualMachine::run(const Application& app,
                    metrics::Registry* registry) const
{
    AppRunResult out;
    out.app_name = app.name;

    // First pass: translate every piece and price both execution paths.
    struct SitePlan {
        const LoopSite* site = nullptr;
        std::int64_t baseline_cpu_cycles_per_invocation = 0;
        std::vector<PiecePlan> pieces;
    };
    std::vector<SitePlan> plans;

    for (const auto& site : app.sites) {
        SitePlan plan;
        plan.site = &site;
        std::vector<const Loop*> pieces;
        if (site.fissioned.empty()) {
            pieces.push_back(&site.loop);
        } else {
            for (const auto& piece : site.fissioned)
                pieces.push_back(&piece);
        }
        for (const Loop* loop : pieces) {
            PiecePlan piece;
            piece.loop = loop;
            StaticAnnotations annotations;
            const StaticAnnotations* annotations_ptr = nullptr;
            if (options_.mode ==
                TranslationMode::kHybridStaticCcaPriority) {
                annotations = precompileAnnotations(*loop, la_);
                annotations_ptr = &annotations;
            }
            piece.translation =
                translateLoop(*loop, la_, options_.mode, annotations_ptr);
            plan.pieces.push_back(std::move(piece));
        }
        plans.push_back(std::move(plan));
    }

    // Price every execution path through the batch engine: all pieces
    // of all sites (plus the fissioned sites' unfissioned baselines)
    // become lanes of one simulateCpuBatch() call, and every translated
    // piece's first/warm invocation charges become lanes of one
    // acceleratorCostBatch() call.  Bit-identical to per-call pricing.
    {
        BatchSimulator simulator;
        std::vector<CpuSimRequest> cpu_requests;
        std::vector<std::int64_t*> cpu_fills;
        std::vector<LaCostRequest> la_requests;
        std::vector<std::int64_t*> la_fills;
        for (auto& plan : plans) {
            const std::int64_t iterations = plan.site->iterations;
            for (auto& piece : plan.pieces) {
                cpu_requests.push_back({piece.loop, iterations});
                cpu_fills.push_back(&piece.cpu_cycles_per_invocation);
                if (piece.translation.ok) {
                    const auto& tr = piece.translation;
                    la_requests.push_back({&tr.schedule, &*tr.graph,
                                           &tr.analysis, &tr.registers,
                                           iterations,
                                           /*first_invocation=*/true});
                    la_fills.push_back(&piece.la_first_invocation);
                    la_requests.push_back({&tr.schedule, &*tr.graph,
                                           &tr.analysis, &tr.registers,
                                           iterations,
                                           /*first_invocation=*/false});
                    la_fills.push_back(&piece.la_warm_invocation);
                }
            }
            // An unfissioned site's only piece *is* site.loop; reuse its
            // lane instead of adding one for the baseline.
            if (!plan.site->fissioned.empty()) {
                cpu_requests.push_back({&plan.site->loop, iterations});
                cpu_fills.push_back(
                    &plan.baseline_cpu_cycles_per_invocation);
            }
        }
        const auto timings = simulator.simulateCpuBatch(cpu_, cpu_requests);
        for (std::size_t i = 0; i < cpu_fills.size(); ++i)
            *cpu_fills[i] = timings[i].total_cycles;
        const auto charges = simulator.acceleratorCostBatch(la_, la_requests);
        for (std::size_t i = 0; i < la_fills.size(); ++i)
            *la_fills[i] = charges[i].total();
        // TLB surcharge (opt-in): page-walk stalls ride on the
        // invocation prices, so laWins() and the cache fixed point
        // below see TLB pressure exactly like any other cycle.
        if (options_.tlb.enabled) {
            for (auto& plan : plans) {
                const std::int64_t iterations = plan.site->iterations;
                for (auto& piece : plan.pieces) {
                    if (!piece.translation.ok)
                        continue;
                    piece.tlb_first = streamTlbCharge(
                        piece.translation.analysis, options_.tlb,
                        iterations, /*first_invocation=*/true);
                    piece.tlb_warm = streamTlbCharge(
                        piece.translation.analysis, options_.tlb,
                        iterations, /*first_invocation=*/false);
                    piece.la_first_invocation += piece.tlb_first.cycles;
                    piece.la_warm_invocation += piece.tlb_warm.cycles;
                }
            }
        }
        for (auto& plan : plans) {
            if (plan.site->fissioned.empty()) {
                plan.baseline_cpu_cycles_per_invocation =
                    plan.pieces.front().cpu_cycles_per_invocation;
            }
        }
    }

    // Cache-miss count for one piece of @p site under a fits assumption:
    // a resident working set misses once, a thrashing one misses every
    // invocation, and Figure 6's forced-retranslation rate floors both.
    const auto missesFor = [&](const LoopSite& site, bool fits) {
        std::int64_t misses = fits ? 1 : site.invocations;
        const auto forced = static_cast<std::int64_t>(
            std::llround(options_.retranslation_rate *
                         static_cast<double>(site.invocations)));
        return std::clamp<std::int64_t>(std::max(misses, 1 + forced), 1,
                                        site.invocations);
    };

    // LA-vs-CPU path choice for one translated-ok piece.  Translation
    // work is sunk cost either way, so it is not part of the comparison.
    const auto laWins = [&](const SitePlan& plan, const PiecePlan& piece,
                            bool fits) {
        const std::int64_t misses = missesFor(*plan.site, fits);
        const std::int64_t hits = plan.site->invocations - misses;
        const std::int64_t la_total = misses * piece.la_first_invocation +
                                      hits * piece.la_warm_invocation;
        return la_total <=
               piece.cpu_cycles_per_invocation * plan.site->invocations;
    };

    // Code-cache behaviour: with round-robin site interleaving and LRU
    // replacement, either every hot translation stays resident (one miss
    // each) or the working set thrashes (every invocation misses).  The
    // working set counts only pieces that actually *take* the LA path --
    // a piece whose CPU path wins is translated once for the comparison
    // but never occupies a cache entry.  Fixed point: decide paths under
    // the fits assumption; if the winners overflow the cache, re-decide
    // everything under thrash pricing (the conservative resolution of
    // mixed equilibria -- see DESIGN.md §10).
    int resident_pieces = 0;
    for (const auto& plan : plans) {
        for (const auto& piece : plan.pieces) {
            if (piece.translation.ok && laWins(plan, piece, true))
                ++resident_pieces;
        }
    }
    const bool cache_fits =
        resident_pieces <= options_.code_cache_entries;
    if (registry != nullptr) {
        registry->add("vm.apps");
        registry->add("vm.resident_pieces", resident_pieces);
        registry->trace("vm/" + app.name, "cache",
                        cache_fits ? "fits" : "thrash", resident_pieces);
    }

    // Translation-cycle attribution is exact: every int64 charged below
    // is mirrored into the registry's vm.phase_cycles.* counters, and
    // audited_cycles re-sums those mirrors for the closing assertion.
    std::int64_t audited_cycles = 0;

    for (const auto& plan : plans) {
        const auto& site = *plan.site;
        SiteResult site_result;
        site_result.loop_name = site.loop.name();

        site_result.baseline_cycles =
            plan.baseline_cpu_cycles_per_invocation * site.invocations;

        for (const auto& piece : plan.pieces) {
            const auto& tr = piece.translation;
            const std::string trace_scope =
                "vm/" + app.name + "/" + piece.loop->name();
            const double metered_penalty =
                options_.penalty_override >= 0.0
                    ? options_.penalty_override
                    : tr.penaltyCycles();

            if (registry != nullptr) {
                registry->add("vm.pieces");
                metrics::recordCostMeter(*registry, "vm", tr.meter);
                registry->add("vm.sched.attempted_iis",
                              tr.sched_stats.attempted_iis);
                registry->add("vm.sched.placement_failures",
                              tr.sched_stats.placement_failures);
                registry->add("vm.sched.register_retries",
                              tr.register_retries);
                if (tr.height_fallback)
                    registry->add("vm.sched.height_fallbacks");
            }

            if (!tr.ok) {
                // Failed translations still charge the analysis the VM
                // performed before giving up (once).  Keep the *first*
                // piece's reject as the site verdict; later pieces are
                // visible in the trace.
                if (site_result.reject == TranslationReject::kNone)
                    site_result.reject = tr.reject;
                const bool metered =
                    tr.mode != TranslationMode::kStatic;
                const auto failure_cycles = static_cast<std::int64_t>(
                    metered ? tr.meter.totalInstructions() : 0.0);
                site_result.translation_cycles += failure_cycles;
                site_result.actual_cycles +=
                    piece.cpu_cycles_per_invocation * site.invocations;
                if (registry != nullptr) {
                    registry->add(std::string("vm.translate.reject.") +
                                  toString(tr.reject));
                    registry->trace(trace_scope, "translate",
                                    toString(tr.reject), failure_cycles);
                    if (metered) {
                        audited_cycles += metrics::chargePhaseCycles(
                            *registry, "vm.phase_cycles", tr.meter, 1);
                    }
                }
                continue;
            }

            // A CPU-winning piece is translated exactly once (to price
            // the comparison) and never re-enters the cache; a resident
            // LA piece re-translates on every cache miss.
            const bool la_path = laWins(plan, piece, cache_fits);
            const std::int64_t misses =
                la_path ? missesFor(site, cache_fits) : 1;
            const std::int64_t hits = site.invocations - misses;

            const std::int64_t translation_cycles =
                static_cast<std::int64_t>(metered_penalty *
                                          static_cast<double>(misses));
            site_result.translation_cycles += translation_cycles;

            if (registry != nullptr) {
                registry->add("vm.translate.ok");
                registry->add("vm.translations", misses);
                registry->trace(trace_scope, "translate", "ok",
                                translation_cycles);
                if (options_.penalty_override >= 0.0) {
                    registry->add("vm.phase_cycles.override",
                                  translation_cycles);
                    audited_cycles += translation_cycles;
                } else if (tr.mode != TranslationMode::kStatic) {
                    const std::int64_t charged =
                        metrics::chargePhaseCycles(*registry,
                                                   "vm.phase_cycles",
                                                   tr.meter, misses);
                    VEAL_ASSERT(charged == translation_cycles,
                                "phase split diverged for ",
                                piece.loop->name());
                    audited_cycles += charged;
                }
            }

            if (la_path) {
                site_result.accelerated = true;
                site_result.actual_cycles +=
                    misses * piece.la_first_invocation +
                    hits * piece.la_warm_invocation;
                site_result.translations += misses;
                site_result.instructions_per_translation =
                    tr.meter.totalInstructions();
                site_result.ii = tr.schedule.ii;
                site_result.mii = tr.mii;
                site_result.stage_count = tr.schedule.stage_count;
                out.cache_hits += hits;
                out.cache_misses += misses;
                if (registry != nullptr) {
                    registry->add("vm.path.la");
                    registry->add("vm.cache.hits", hits);
                    registry->add("vm.cache.misses", misses);
                    registry->observe("vm.ii", tr.schedule.ii);
                    registry->trace(trace_scope, "path", "la",
                                    tr.schedule.ii);
                    if (options_.tlb.enabled) {
                        registry->add("vm.tlb.pages",
                                      misses * piece.tlb_first.pages +
                                          hits * piece.tlb_warm.pages);
                        registry->add("vm.tlb.walks",
                                      misses * piece.tlb_first.walks +
                                          hits * piece.tlb_warm.walks);
                        registry->add("vm.tlb.cycles",
                                      misses * piece.tlb_first.cycles +
                                          hits * piece.tlb_warm.cycles);
                    }
                }
            } else {
                site_result.actual_cycles +=
                    piece.cpu_cycles_per_invocation * site.invocations;
                site_result.translations += 1;
                if (registry != nullptr) {
                    registry->add("vm.path.cpu");
                    registry->trace(trace_scope, "path", "cpu",
                                    piece.cpu_cycles_per_invocation);
                }
            }
        }
        site_result.actual_cycles += site_result.translation_cycles;

        out.translation_cycles += site_result.translation_cycles;
        out.baseline_cycles += site_result.baseline_cycles;
        out.accelerated_cycles += site_result.actual_cycles;
        out.sites.push_back(std::move(site_result));
    }

    out.baseline_cycles += app.acyclic_cycles;
    out.accelerated_cycles += app.acyclic_cycles;
    out.speedup = out.accelerated_cycles > 0
                      ? static_cast<double>(out.baseline_cycles) /
                            static_cast<double>(out.accelerated_cycles)
                      : 1.0;
    if (registry != nullptr) {
        // The acceptance contract of DESIGN.md §10: the per-phase
        // vm.phase_cycles.* deltas this run recorded sum exactly to the
        // translation cycles the cost model reports.
        VEAL_ASSERT(audited_cycles == out.translation_cycles,
                    "phase attribution lost cycles for ", app.name, ": ",
                    audited_cycles, " != ", out.translation_cycles);
    }
    return out;
}

AppRunResult
VirtualMachine::run(const Application& app, metrics::Registry* registry,
                    FaultInjector* faults,
                    FaultRunReport* fault_report) const
{
    if (fault_report != nullptr)
        *fault_report = FaultRunReport{};
    if (faults == nullptr)
        return run(app, registry);

    AppRunResult out;
    out.app_name = app.name;
    const FaultPlan& plan = faults->plan();

    const auto annotationsFor =
        [&](const Loop& loop,
            StaticAnnotations* storage) -> const StaticAnnotations* {
        if (options_.mode != TranslationMode::kHybridStaticCcaPriority)
            return nullptr;
        *storage = precompileAnnotations(loop, la_);
        return storage;
    };

    // --- Translation phase: climb the loop-level ladder per piece.  A
    // piece that exhausts its rungs escalates the whole site: one
    // no-fission retry of the unfissioned loop (every relaxation on,
    // extra budget relief), then a permanent CPU pin.
    struct HardenedPiece {
        const Loop* loop = nullptr;
        TranslationResult translation;
        DegradationRung rung = DegradationRung::kNominal;
        std::int64_t cpu_cycles_per_invocation = 0;
        std::int64_t la_first_invocation = 0;
        std::int64_t la_warm_invocation = 0;
        std::string key;
        // Dispatch-time recovery state.  Deliberately *not* stored with
        // the cached image: quarantine must survive eviction.
        int strikes = 0;
        std::int64_t retranslations = 0;
        bool quarantined = false;
        bool rebuild_pending = false;
        std::int64_t cache_hits = 0;
        std::int64_t cache_misses = 0;
        std::int64_t invalidations = 0;
        std::int64_t la_dispatches = 0;
        std::int64_t cpu_dispatches = 0;
    };
    struct HardenedSite {
        const LoopSite* site = nullptr;
        std::int64_t baseline_cpu_cycles_per_invocation = 0;
        DegradationRung rung = DegradationRung::kNominal;
        bool pinned = false;
        TranslationReject reject = TranslationReject::kNone;
        std::vector<HardenedPiece> pieces;
        /** Work performed then abandoned (failed attempts, pieces a
            no-fission retry superseded): charged exactly once each. */
        std::vector<TranslationResult> charged_once;
        std::int64_t pinned_cpu_cycles_per_invocation = 0;
    };
    std::vector<HardenedSite> sites;

    for (std::size_t site_index = 0; site_index < app.sites.size();
         ++site_index) {
        const LoopSite& site = app.sites[site_index];
        HardenedSite hs;
        hs.site = &site;

        std::vector<const Loop*> piece_loops;
        if (site.fissioned.empty()) {
            piece_loops.push_back(&site.loop);
        } else {
            for (const auto& piece : site.fissioned)
                piece_loops.push_back(&piece);
        }

        bool pinned = false;
        bool retry_unfissioned = false;
        for (const Loop* loop : piece_loops) {
            StaticAnnotations storage;
            const StaticAnnotations* annotations =
                annotationsFor(*loop, &storage);
            LadderOutcome outcome = climbTranslationLadder(
                *loop, la_, options_.mode, annotations, faults);
            for (auto& attempt : outcome.failed_attempts)
                hs.charged_once.push_back(std::move(attempt));
            if (!outcome.translation.ok) {
                hs.reject = outcome.translation.reject;
                retry_unfissioned =
                    recoverableReject(outcome.translation.reject);
                hs.charged_once.push_back(std::move(outcome.translation));
                pinned = true;
                break;  // Later pieces are moot: the site either
                        // re-translates unfissioned or pins.
            }
            hs.rung = std::max(hs.rung, outcome.rung);
            HardenedPiece piece;
            piece.loop = loop;
            piece.rung = outcome.rung;
            piece.translation = std::move(outcome.translation);
            hs.pieces.push_back(std::move(piece));
        }

        if (pinned && retry_unfissioned) {
            StaticAnnotations storage;
            TranslationOptions nf;
            nf.annotations = annotationsFor(site.loop, &storage);
            nf.faults = faults;
            nf.ii_slack = 2;
            nf.disable_cca = true;
            nf.budget_relief = 3;
            TranslationResult tr =
                translateLoop(site.loop, la_, options_.mode, nf);
            if (tr.ok) {
                // Sibling pieces that did translate are sunk work now
                // that the unfissioned loop replaces them.
                for (auto& piece : hs.pieces)
                    hs.charged_once.push_back(
                        std::move(piece.translation));
                hs.pieces.clear();
                HardenedPiece piece;
                piece.loop = &site.loop;
                piece.rung = DegradationRung::kNoFission;
                piece.translation = std::move(tr);
                hs.pieces.push_back(std::move(piece));
                hs.rung = DegradationRung::kNoFission;
                hs.reject = TranslationReject::kNone;
                pinned = false;
            } else {
                hs.charged_once.push_back(std::move(tr));
            }
        }

        if (pinned) {
            hs.pinned = true;
            hs.rung = DegradationRung::kCpuPinned;
            for (auto& piece : hs.pieces)
                hs.charged_once.push_back(std::move(piece.translation));
            hs.pieces.clear();
        }

        for (auto& piece : hs.pieces) {
            piece.key =
                std::to_string(site_index) + "/" + piece.loop->name();
        }
        sites.push_back(std::move(hs));
    }

    // Price the surviving pieces through the batch engine (one lane per
    // piece, per pinned site, and per fissioned site's unfissioned
    // baseline; two LA lanes per translated piece).  Bit-identical to
    // per-call pricing; pointers are taken only now, after the sites
    // vector has stopped moving.
    {
        BatchSimulator simulator;
        std::vector<CpuSimRequest> cpu_requests;
        std::vector<std::int64_t*> cpu_fills;
        std::vector<LaCostRequest> la_requests;
        std::vector<std::int64_t*> la_fills;
        for (auto& hs : sites) {
            const std::int64_t iterations = hs.site->iterations;
            if (hs.pinned) {
                cpu_requests.push_back({&hs.site->loop, iterations});
                cpu_fills.push_back(&hs.pinned_cpu_cycles_per_invocation);
            }
            for (auto& piece : hs.pieces) {
                cpu_requests.push_back({piece.loop, iterations});
                cpu_fills.push_back(&piece.cpu_cycles_per_invocation);
                const auto& tr = piece.translation;
                la_requests.push_back({&tr.schedule, &*tr.graph,
                                       &tr.analysis, &tr.registers,
                                       iterations,
                                       /*first_invocation=*/true});
                la_fills.push_back(&piece.la_first_invocation);
                la_requests.push_back({&tr.schedule, &*tr.graph,
                                       &tr.analysis, &tr.registers,
                                       iterations,
                                       /*first_invocation=*/false});
                la_fills.push_back(&piece.la_warm_invocation);
            }
            // A pinned site's baseline reuses the pinned lane, and an
            // unfissioned single piece *is* site.loop; only a fissioned,
            // unpinned site needs a baseline lane of its own.
            if (!hs.pinned &&
                !(!hs.pieces.empty() &&
                  hs.pieces.front().loop == &hs.site->loop)) {
                cpu_requests.push_back({&hs.site->loop, iterations});
                cpu_fills.push_back(
                    &hs.baseline_cpu_cycles_per_invocation);
            }
        }
        const auto timings = simulator.simulateCpuBatch(cpu_, cpu_requests);
        for (std::size_t i = 0; i < cpu_fills.size(); ++i)
            *cpu_fills[i] = timings[i].total_cycles;
        const auto charges = simulator.acceleratorCostBatch(la_, la_requests);
        for (std::size_t i = 0; i < la_fills.size(); ++i)
            *la_fills[i] = charges[i].total();
        for (auto& hs : sites) {
            if (hs.pinned) {
                hs.baseline_cpu_cycles_per_invocation =
                    hs.pinned_cpu_cycles_per_invocation;
            } else if (!hs.pieces.empty() &&
                       hs.pieces.front().loop == &hs.site->loop) {
                hs.baseline_cpu_cycles_per_invocation =
                    hs.pieces.front().cpu_cycles_per_invocation;
            }
        }
    }

    // --- Dispatch phase: explicit round-robin over invocations through a
    // real code cache.  Every cached dispatch validates the control
    // image's checksum first; a mismatch invalidates the entry, runs the
    // invocation on the CPU, and re-translates on the next dispatch --
    // at most plan.retranslation_bound times before the piece is
    // quarantined (as it is after plan.quarantine_strikes mismatches).
    // Note the contrast with the nominal overload's analytic cache
    // model: VmOptions::retranslation_rate and penalty_override do not
    // apply here.
    CodeCache cache(options_.code_cache_entries);
    struct ResidentImage {
        ControlImage image;
        std::uint32_t expected_checksum = 0;
    };
    std::unordered_map<std::string, ResidentImage> resident;

    std::int64_t max_invocations = 0;
    for (const auto& hs : sites)
        max_invocations = std::max(max_invocations, hs.site->invocations);

    for (std::int64_t round = 0; round < max_invocations; ++round) {
        for (auto& hs : sites) {
            if (hs.pinned || round >= hs.site->invocations)
                continue;
            for (auto& piece : hs.pieces) {
                if (piece.quarantined) {
                    ++piece.cpu_dispatches;
                    continue;
                }
                if (cache.lookup(piece.key)) {
                    ResidentImage& entry = resident.at(piece.key);
                    if (faults->probe(FaultSite::kCacheCorruption)) {
                        entry.image.flipBit(faults->corruptionBit(
                            entry.image.words().size() * 32));
                    }
                    if (entry.image.checksum() !=
                        entry.expected_checksum) {
                        ++piece.invalidations;
                        ++piece.strikes;
                        cache.erase(piece.key);
                        resident.erase(piece.key);
                        if (piece.strikes >= plan.quarantine_strikes ||
                            piece.retranslations >=
                                plan.retranslation_bound) {
                            piece.quarantined = true;
                        } else {
                            piece.rebuild_pending = true;
                        }
                        ++piece.cpu_dispatches;
                        continue;
                    }
                    ++piece.cache_hits;
                    ++piece.la_dispatches;
                    continue;
                }
                ++piece.cache_misses;
                if (piece.rebuild_pending) {
                    piece.rebuild_pending = false;
                    ++piece.retranslations;
                }
                ControlImage image =
                    ControlImage::encode(*piece.loop, piece.translation);
                const std::uint32_t expected = image.checksum();
                std::string evicted;
                cache.insert(piece.key, &evicted);
                if (!evicted.empty())
                    resident.erase(evicted);
                // insert_or_assign, not emplace: if the key were somehow
                // still resident (cache/payload desync), the freshly
                // encoded image must win -- emplace would silently keep
                // the stale one and the checksum guard would misfire.
                resident.insert_or_assign(
                    piece.key, ResidentImage{std::move(image), expected});
                ++piece.la_dispatches;
            }
        }
    }

    // --- Accounting phase: the same exact phase-cycle attribution
    // contract as the nominal overload (audited, not approximated).
    std::int64_t audited_cycles = 0;
    if (registry != nullptr)
        registry->add("vm.fault.runs");

    for (auto& hs : sites) {
        const LoopSite& site = *hs.site;
        SiteResult site_result;
        site_result.loop_name = site.loop.name();
        site_result.reject = hs.reject;
        site_result.baseline_cycles =
            hs.baseline_cpu_cycles_per_invocation * site.invocations;

        FaultSiteReport site_report;
        site_report.loop_name = site.loop.name();
        site_report.rung = hs.rung;

        const std::string trace_scope =
            "vm.fault/" + app.name + "/" + site.loop.name();
        if (registry != nullptr) {
            registry->add(std::string("vm.fault.rung.") +
                          toString(hs.rung));
            registry->trace(trace_scope, "rung", toString(hs.rung),
                            static_cast<std::int64_t>(hs.rung));
        }

        for (const auto& tr : hs.charged_once) {
            const bool metered = tr.mode != TranslationMode::kStatic;
            const auto cycles = static_cast<std::int64_t>(
                metered ? tr.meter.totalInstructions() : 0.0);
            site_result.translation_cycles += cycles;
            if (registry != nullptr) {
                if (!tr.ok) {
                    registry->add(std::string("vm.translate.reject.") +
                                  toString(tr.reject));
                }
                if (metered) {
                    audited_cycles += metrics::chargePhaseCycles(
                        *registry, "vm.phase_cycles", tr.meter, 1);
                }
            }
        }

        if (hs.pinned) {
            site_result.actual_cycles +=
                hs.pinned_cpu_cycles_per_invocation * site.invocations;
            FaultPieceReport piece_report;
            piece_report.loop = &site.loop;
            if (!hs.charged_once.empty())
                piece_report.translation = hs.charged_once.back();
            piece_report.rung = DegradationRung::kCpuPinned;
            piece_report.cpu_dispatches = site.invocations;
            if (registry != nullptr) {
                registry->add("vm.fault.pinned_sites");
                registry->add("vm.fault.dispatch.cpu", site.invocations);
            }
            if (fault_report != nullptr) {
                fault_report->cpu_dispatches += site.invocations;
                site_report.pieces.push_back(std::move(piece_report));
            }
        }

        for (auto& piece : hs.pieces) {
            const auto& tr = piece.translation;
            VEAL_ASSERT(piece.cache_hits + piece.cache_misses +
                                piece.cpu_dispatches ==
                            site.invocations,
                        "dispatch accounting lost an invocation of ",
                        piece.loop->name());
            const bool metered = tr.mode != TranslationMode::kStatic;
            const auto translation_cycles = static_cast<std::int64_t>(
                metered ? tr.meter.totalInstructions() *
                              static_cast<double>(piece.cache_misses)
                        : 0.0);
            site_result.translation_cycles += translation_cycles;
            site_result.translations += piece.cache_misses;
            site_result.accelerated |= piece.la_dispatches > 0;
            if (site_result.ii == 0) {
                site_result.ii = tr.schedule.ii;
                site_result.mii = tr.mii;
                site_result.stage_count = tr.schedule.stage_count;
                site_result.instructions_per_translation =
                    tr.meter.totalInstructions();
            }
            site_result.actual_cycles +=
                piece.cache_misses * piece.la_first_invocation +
                piece.cache_hits * piece.la_warm_invocation +
                piece.cpu_dispatches * piece.cpu_cycles_per_invocation;
            out.cache_hits += piece.cache_hits;
            out.cache_misses += piece.cache_misses;

            if (registry != nullptr) {
                registry->add("vm.translate.ok");
                registry->add("vm.translations", piece.cache_misses);
                registry->observe("vm.ii", tr.schedule.ii);
                if (metered && piece.cache_misses > 0) {
                    const std::int64_t charged =
                        metrics::chargePhaseCycles(
                            *registry, "vm.phase_cycles", tr.meter,
                            piece.cache_misses);
                    VEAL_ASSERT(charged == translation_cycles,
                                "phase split diverged for ",
                                piece.loop->name());
                    audited_cycles += charged;
                }
                if (piece.invalidations > 0) {
                    registry->add("vm.fault.invalidations",
                                  piece.invalidations);
                    registry->trace(trace_scope, "invalidate",
                                    piece.loop->name(),
                                    piece.invalidations);
                }
                if (piece.retranslations > 0) {
                    registry->add("vm.fault.retranslations",
                                  piece.retranslations);
                }
                if (piece.quarantined)
                    registry->add("vm.fault.quarantines");
                if (piece.la_dispatches > 0) {
                    registry->add("vm.fault.dispatch.la",
                                  piece.la_dispatches);
                }
                if (piece.cpu_dispatches > 0) {
                    registry->add("vm.fault.dispatch.cpu",
                                  piece.cpu_dispatches);
                }
            }
            if (fault_report != nullptr) {
                FaultPieceReport piece_report;
                piece_report.loop = piece.loop;
                piece_report.translation = piece.translation;
                piece_report.rung = piece.rung;
                piece_report.la_dispatches = piece.la_dispatches;
                piece_report.cpu_dispatches = piece.cpu_dispatches;
                piece_report.checksum_invalidations = piece.invalidations;
                piece_report.retranslations = piece.retranslations;
                piece_report.quarantined = piece.quarantined;
                fault_report->checksum_invalidations +=
                    piece.invalidations;
                fault_report->retranslations += piece.retranslations;
                fault_report->quarantines += piece.quarantined ? 1 : 0;
                fault_report->la_dispatches += piece.la_dispatches;
                fault_report->cpu_dispatches += piece.cpu_dispatches;
                site_report.pieces.push_back(std::move(piece_report));
            }
        }
        site_result.actual_cycles += site_result.translation_cycles;

        out.translation_cycles += site_result.translation_cycles;
        out.baseline_cycles += site_result.baseline_cycles;
        out.accelerated_cycles += site_result.actual_cycles;
        out.sites.push_back(std::move(site_result));
        if (fault_report != nullptr)
            fault_report->sites.push_back(std::move(site_report));
    }

    out.baseline_cycles += app.acyclic_cycles;
    out.accelerated_cycles += app.acyclic_cycles;
    out.speedup = out.accelerated_cycles > 0
                      ? static_cast<double>(out.baseline_cycles) /
                            static_cast<double>(out.accelerated_cycles)
                      : 1.0;
    if (registry != nullptr) {
        VEAL_ASSERT(audited_cycles == out.translation_cycles,
                    "phase attribution lost cycles for ", app.name, ": ",
                    audited_cycles, " != ", out.translation_cycles);
    }
    return out;
}

std::int64_t
cpuOnlyCycles(const Application& app, const CpuConfig& cpu)
{
    std::vector<CpuSimRequest> requests;
    requests.reserve(app.sites.size());
    for (const auto& site : app.sites)
        requests.push_back({&site.loop, site.iterations});
    const auto timings = simulateCpuBatch(cpu, requests);
    std::int64_t total = 0;
    for (std::size_t i = 0; i < app.sites.size(); ++i)
        total += timings[i].total_cycles * app.sites[i].invocations;
    total += static_cast<std::int64_t>(
        static_cast<double>(app.acyclic_cycles) /
        std::max(cpu.acyclic_speedup, 1.0));
    return total;
}

}  // namespace veal
