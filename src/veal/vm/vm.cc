#include "veal/vm/vm.h"

#include <algorithm>
#include <cmath>

#include "veal/sim/cpu_sim.h"
#include "veal/sim/la_timing.h"
#include "veal/support/assert.h"

namespace veal {

VirtualMachine::VirtualMachine(LaConfig la, CpuConfig baseline,
                               VmOptions options)
    : la_(std::move(la)), cpu_(std::move(baseline)),
      options_(std::move(options))
{}

namespace {

/** Everything the VM derives for one translated piece of one site. */
struct PiecePlan {
    const Loop* loop = nullptr;
    TranslationResult translation;
    std::int64_t cpu_cycles_per_invocation = 0;
    std::int64_t la_first_invocation = 0;  ///< Cache-miss invocation cost.
    std::int64_t la_warm_invocation = 0;   ///< Cache-hit invocation cost.
};

}  // namespace

AppRunResult
VirtualMachine::run(const Application& app) const
{
    AppRunResult out;
    out.app_name = app.name;

    // First pass: translate every piece and price both execution paths.
    struct SitePlan {
        const LoopSite* site = nullptr;
        std::vector<PiecePlan> pieces;
    };
    std::vector<SitePlan> plans;
    int accelerated_pieces = 0;

    for (const auto& site : app.sites) {
        SitePlan plan;
        plan.site = &site;
        std::vector<const Loop*> pieces;
        if (site.fissioned.empty()) {
            pieces.push_back(&site.loop);
        } else {
            for (const auto& piece : site.fissioned)
                pieces.push_back(&piece);
        }
        for (const Loop* loop : pieces) {
            PiecePlan piece;
            piece.loop = loop;
            StaticAnnotations annotations;
            const StaticAnnotations* annotations_ptr = nullptr;
            if (options_.mode ==
                TranslationMode::kHybridStaticCcaPriority) {
                annotations = precompileAnnotations(*loop, la_);
                annotations_ptr = &annotations;
            }
            piece.translation =
                translateLoop(*loop, la_, options_.mode, annotations_ptr);
            piece.cpu_cycles_per_invocation =
                simulateLoopOnCpu(*loop, cpu_, site.iterations)
                    .total_cycles;
            if (piece.translation.ok) {
                ++accelerated_pieces;
                const auto& tr = piece.translation;
                piece.la_first_invocation =
                    acceleratorLoopCost(tr.schedule, *tr.graph,
                                        tr.analysis, tr.registers, la_,
                                        site.iterations,
                                        /*first_invocation=*/true)
                        .total();
                piece.la_warm_invocation =
                    acceleratorLoopCost(tr.schedule, *tr.graph,
                                        tr.analysis, tr.registers, la_,
                                        site.iterations,
                                        /*first_invocation=*/false)
                        .total();
            }
            plan.pieces.push_back(std::move(piece));
        }
        plans.push_back(std::move(plan));
    }

    // Code-cache behaviour: with round-robin site interleaving and LRU
    // replacement, either every hot translation stays resident (one miss
    // each) or the working set thrashes (every invocation misses).
    const bool cache_fits =
        accelerated_pieces <= options_.code_cache_entries;

    for (const auto& plan : plans) {
        const auto& site = *plan.site;
        SiteResult site_result;
        site_result.loop_name = site.loop.name();

        site_result.baseline_cycles =
            simulateLoopOnCpu(site.loop, cpu_, site.iterations)
                .total_cycles *
            site.invocations;

        for (const auto& piece : plan.pieces) {
            const auto& tr = piece.translation;
            const double metered_penalty =
                options_.penalty_override >= 0.0
                    ? options_.penalty_override
                    : tr.penaltyCycles();

            if (!tr.ok) {
                // Failed translations still charge the analysis the VM
                // performed before giving up (once).
                site_result.reject = tr.reject;
                site_result.translation_cycles += static_cast<std::int64_t>(
                    tr.mode == TranslationMode::kStatic
                        ? 0.0
                        : tr.meter.totalInstructions());
                site_result.actual_cycles +=
                    piece.cpu_cycles_per_invocation * site.invocations;
                continue;
            }

            std::int64_t misses = cache_fits ? 1 : site.invocations;
            const auto forced = static_cast<std::int64_t>(
                std::llround(options_.retranslation_rate *
                             static_cast<double>(site.invocations)));
            misses = std::clamp<std::int64_t>(std::max(misses, 1 + forced),
                                              1, site.invocations);
            const std::int64_t hits = site.invocations - misses;

            const std::int64_t translation_cycles =
                static_cast<std::int64_t>(metered_penalty *
                                          static_cast<double>(misses));
            const std::int64_t la_total =
                misses * piece.la_first_invocation +
                hits * piece.la_warm_invocation;
            const std::int64_t cpu_total =
                piece.cpu_cycles_per_invocation * site.invocations;

            // The VM monitors both paths and keeps the faster one; the
            // translation work itself is sunk cost either way.
            site_result.translation_cycles += translation_cycles;
            if (la_total <= cpu_total) {
                site_result.accelerated = true;
                site_result.actual_cycles += la_total;
                site_result.translations += misses;
                site_result.instructions_per_translation =
                    tr.meter.totalInstructions();
                site_result.ii = tr.schedule.ii;
                site_result.mii = tr.mii;
                site_result.stage_count = tr.schedule.stage_count;
                out.cache_hits += hits;
                out.cache_misses += misses;
            } else {
                site_result.actual_cycles += cpu_total;
                site_result.translations += 1;
            }
        }
        site_result.actual_cycles += site_result.translation_cycles;

        out.translation_cycles += site_result.translation_cycles;
        out.baseline_cycles += site_result.baseline_cycles;
        out.accelerated_cycles += site_result.actual_cycles;
        out.sites.push_back(std::move(site_result));
    }

    out.baseline_cycles += app.acyclic_cycles;
    out.accelerated_cycles += app.acyclic_cycles;
    out.speedup = out.accelerated_cycles > 0
                      ? static_cast<double>(out.baseline_cycles) /
                            static_cast<double>(out.accelerated_cycles)
                      : 1.0;
    return out;
}

std::int64_t
cpuOnlyCycles(const Application& app, const CpuConfig& cpu)
{
    std::int64_t total = 0;
    for (const auto& site : app.sites) {
        total += simulateLoopOnCpu(site.loop, cpu, site.iterations)
                     .total_cycles *
                 site.invocations;
    }
    total += static_cast<std::int64_t>(
        static_cast<double>(app.acyclic_cycles) /
        std::max(cpu.acyclic_speedup, 1.0));
    return total;
}

}  // namespace veal
