#include "veal/vm/vm.h"

#include <algorithm>
#include <cmath>

#include "veal/sim/cpu_sim.h"
#include "veal/sim/la_timing.h"
#include "veal/support/assert.h"
#include "veal/support/metrics/metrics.h"

namespace veal {

VirtualMachine::VirtualMachine(LaConfig la, CpuConfig baseline,
                               VmOptions options)
    : la_(std::move(la)), cpu_(std::move(baseline)),
      options_(std::move(options))
{}

namespace {

/** Everything the VM derives for one translated piece of one site. */
struct PiecePlan {
    const Loop* loop = nullptr;
    TranslationResult translation;
    std::int64_t cpu_cycles_per_invocation = 0;
    std::int64_t la_first_invocation = 0;  ///< Cache-miss invocation cost.
    std::int64_t la_warm_invocation = 0;   ///< Cache-hit invocation cost.
};

}  // namespace

AppRunResult
VirtualMachine::run(const Application& app) const
{
    return run(app, nullptr);
}

AppRunResult
VirtualMachine::run(const Application& app,
                    metrics::Registry* registry) const
{
    AppRunResult out;
    out.app_name = app.name;

    // First pass: translate every piece and price both execution paths.
    struct SitePlan {
        const LoopSite* site = nullptr;
        std::vector<PiecePlan> pieces;
    };
    std::vector<SitePlan> plans;

    for (const auto& site : app.sites) {
        SitePlan plan;
        plan.site = &site;
        std::vector<const Loop*> pieces;
        if (site.fissioned.empty()) {
            pieces.push_back(&site.loop);
        } else {
            for (const auto& piece : site.fissioned)
                pieces.push_back(&piece);
        }
        for (const Loop* loop : pieces) {
            PiecePlan piece;
            piece.loop = loop;
            StaticAnnotations annotations;
            const StaticAnnotations* annotations_ptr = nullptr;
            if (options_.mode ==
                TranslationMode::kHybridStaticCcaPriority) {
                annotations = precompileAnnotations(*loop, la_);
                annotations_ptr = &annotations;
            }
            piece.translation =
                translateLoop(*loop, la_, options_.mode, annotations_ptr);
            piece.cpu_cycles_per_invocation =
                simulateLoopOnCpu(*loop, cpu_, site.iterations)
                    .total_cycles;
            if (piece.translation.ok) {
                const auto& tr = piece.translation;
                piece.la_first_invocation =
                    acceleratorLoopCost(tr.schedule, *tr.graph,
                                        tr.analysis, tr.registers, la_,
                                        site.iterations,
                                        /*first_invocation=*/true)
                        .total();
                piece.la_warm_invocation =
                    acceleratorLoopCost(tr.schedule, *tr.graph,
                                        tr.analysis, tr.registers, la_,
                                        site.iterations,
                                        /*first_invocation=*/false)
                        .total();
            }
            plan.pieces.push_back(std::move(piece));
        }
        plans.push_back(std::move(plan));
    }

    // Cache-miss count for one piece of @p site under a fits assumption:
    // a resident working set misses once, a thrashing one misses every
    // invocation, and Figure 6's forced-retranslation rate floors both.
    const auto missesFor = [&](const LoopSite& site, bool fits) {
        std::int64_t misses = fits ? 1 : site.invocations;
        const auto forced = static_cast<std::int64_t>(
            std::llround(options_.retranslation_rate *
                         static_cast<double>(site.invocations)));
        return std::clamp<std::int64_t>(std::max(misses, 1 + forced), 1,
                                        site.invocations);
    };

    // LA-vs-CPU path choice for one translated-ok piece.  Translation
    // work is sunk cost either way, so it is not part of the comparison.
    const auto laWins = [&](const SitePlan& plan, const PiecePlan& piece,
                            bool fits) {
        const std::int64_t misses = missesFor(*plan.site, fits);
        const std::int64_t hits = plan.site->invocations - misses;
        const std::int64_t la_total = misses * piece.la_first_invocation +
                                      hits * piece.la_warm_invocation;
        return la_total <=
               piece.cpu_cycles_per_invocation * plan.site->invocations;
    };

    // Code-cache behaviour: with round-robin site interleaving and LRU
    // replacement, either every hot translation stays resident (one miss
    // each) or the working set thrashes (every invocation misses).  The
    // working set counts only pieces that actually *take* the LA path --
    // a piece whose CPU path wins is translated once for the comparison
    // but never occupies a cache entry.  Fixed point: decide paths under
    // the fits assumption; if the winners overflow the cache, re-decide
    // everything under thrash pricing (the conservative resolution of
    // mixed equilibria -- see DESIGN.md §10).
    int resident_pieces = 0;
    for (const auto& plan : plans) {
        for (const auto& piece : plan.pieces) {
            if (piece.translation.ok && laWins(plan, piece, true))
                ++resident_pieces;
        }
    }
    const bool cache_fits =
        resident_pieces <= options_.code_cache_entries;
    if (registry != nullptr) {
        registry->add("vm.apps");
        registry->add("vm.resident_pieces", resident_pieces);
        registry->trace("vm/" + app.name, "cache",
                        cache_fits ? "fits" : "thrash", resident_pieces);
    }

    // Translation-cycle attribution is exact: every int64 charged below
    // is mirrored into the registry's vm.phase_cycles.* counters, and
    // audited_cycles re-sums those mirrors for the closing assertion.
    std::int64_t audited_cycles = 0;

    for (const auto& plan : plans) {
        const auto& site = *plan.site;
        SiteResult site_result;
        site_result.loop_name = site.loop.name();

        site_result.baseline_cycles =
            simulateLoopOnCpu(site.loop, cpu_, site.iterations)
                .total_cycles *
            site.invocations;

        for (const auto& piece : plan.pieces) {
            const auto& tr = piece.translation;
            const std::string trace_scope =
                "vm/" + app.name + "/" + piece.loop->name();
            const double metered_penalty =
                options_.penalty_override >= 0.0
                    ? options_.penalty_override
                    : tr.penaltyCycles();

            if (registry != nullptr) {
                registry->add("vm.pieces");
                metrics::recordCostMeter(*registry, "vm", tr.meter);
                registry->add("vm.sched.attempted_iis",
                              tr.sched_stats.attempted_iis);
                registry->add("vm.sched.placement_failures",
                              tr.sched_stats.placement_failures);
                registry->add("vm.sched.register_retries",
                              tr.register_retries);
                if (tr.height_fallback)
                    registry->add("vm.sched.height_fallbacks");
            }

            if (!tr.ok) {
                // Failed translations still charge the analysis the VM
                // performed before giving up (once).  Keep the *first*
                // piece's reject as the site verdict; later pieces are
                // visible in the trace.
                if (site_result.reject == TranslationReject::kNone)
                    site_result.reject = tr.reject;
                const bool metered =
                    tr.mode != TranslationMode::kStatic;
                const auto failure_cycles = static_cast<std::int64_t>(
                    metered ? tr.meter.totalInstructions() : 0.0);
                site_result.translation_cycles += failure_cycles;
                site_result.actual_cycles +=
                    piece.cpu_cycles_per_invocation * site.invocations;
                if (registry != nullptr) {
                    registry->add(std::string("vm.translate.reject.") +
                                  toString(tr.reject));
                    registry->trace(trace_scope, "translate",
                                    toString(tr.reject), failure_cycles);
                    if (metered) {
                        audited_cycles += metrics::chargePhaseCycles(
                            *registry, "vm.phase_cycles", tr.meter, 1);
                    }
                }
                continue;
            }

            // A CPU-winning piece is translated exactly once (to price
            // the comparison) and never re-enters the cache; a resident
            // LA piece re-translates on every cache miss.
            const bool la_path = laWins(plan, piece, cache_fits);
            const std::int64_t misses =
                la_path ? missesFor(site, cache_fits) : 1;
            const std::int64_t hits = site.invocations - misses;

            const std::int64_t translation_cycles =
                static_cast<std::int64_t>(metered_penalty *
                                          static_cast<double>(misses));
            site_result.translation_cycles += translation_cycles;

            if (registry != nullptr) {
                registry->add("vm.translate.ok");
                registry->add("vm.translations", misses);
                registry->trace(trace_scope, "translate", "ok",
                                translation_cycles);
                if (options_.penalty_override >= 0.0) {
                    registry->add("vm.phase_cycles.override",
                                  translation_cycles);
                    audited_cycles += translation_cycles;
                } else if (tr.mode != TranslationMode::kStatic) {
                    const std::int64_t charged =
                        metrics::chargePhaseCycles(*registry,
                                                   "vm.phase_cycles",
                                                   tr.meter, misses);
                    VEAL_ASSERT(charged == translation_cycles,
                                "phase split diverged for ",
                                piece.loop->name());
                    audited_cycles += charged;
                }
            }

            if (la_path) {
                site_result.accelerated = true;
                site_result.actual_cycles +=
                    misses * piece.la_first_invocation +
                    hits * piece.la_warm_invocation;
                site_result.translations += misses;
                site_result.instructions_per_translation =
                    tr.meter.totalInstructions();
                site_result.ii = tr.schedule.ii;
                site_result.mii = tr.mii;
                site_result.stage_count = tr.schedule.stage_count;
                out.cache_hits += hits;
                out.cache_misses += misses;
                if (registry != nullptr) {
                    registry->add("vm.path.la");
                    registry->add("vm.cache.hits", hits);
                    registry->add("vm.cache.misses", misses);
                    registry->observe("vm.ii", tr.schedule.ii);
                    registry->trace(trace_scope, "path", "la",
                                    tr.schedule.ii);
                }
            } else {
                site_result.actual_cycles +=
                    piece.cpu_cycles_per_invocation * site.invocations;
                site_result.translations += 1;
                if (registry != nullptr) {
                    registry->add("vm.path.cpu");
                    registry->trace(trace_scope, "path", "cpu",
                                    piece.cpu_cycles_per_invocation);
                }
            }
        }
        site_result.actual_cycles += site_result.translation_cycles;

        out.translation_cycles += site_result.translation_cycles;
        out.baseline_cycles += site_result.baseline_cycles;
        out.accelerated_cycles += site_result.actual_cycles;
        out.sites.push_back(std::move(site_result));
    }

    out.baseline_cycles += app.acyclic_cycles;
    out.accelerated_cycles += app.acyclic_cycles;
    out.speedup = out.accelerated_cycles > 0
                      ? static_cast<double>(out.baseline_cycles) /
                            static_cast<double>(out.accelerated_cycles)
                      : 1.0;
    if (registry != nullptr) {
        // The acceptance contract of DESIGN.md §10: the per-phase
        // vm.phase_cycles.* deltas this run recorded sum exactly to the
        // translation cycles the cost model reports.
        VEAL_ASSERT(audited_cycles == out.translation_cycles,
                    "phase attribution lost cycles for ", app.name, ": ",
                    audited_cycles, " != ", out.translation_cycles);
    }
    return out;
}

std::int64_t
cpuOnlyCycles(const Application& app, const CpuConfig& cpu)
{
    std::int64_t total = 0;
    for (const auto& site : app.sites) {
        total += simulateLoopOnCpu(site.loop, cpu, site.iterations)
                     .total_cycles *
                 site.invocations;
    }
    total += static_cast<std::int64_t>(
        static_cast<double>(app.acyclic_cycles) /
        std::max(cpu.acyclic_speedup, 1.0));
    return total;
}

}  // namespace veal
