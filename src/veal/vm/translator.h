#ifndef VEAL_VM_TRANSLATOR_H_
#define VEAL_VM_TRANSLATOR_H_

/**
 * @file
 * The loop-accelerator translation pipeline (paper §4.1) under the four
 * static/dynamic splits evaluated in §4.3:
 *
 *  - kStatic: the whole pipeline ran offline; zero runtime penalty (the
 *    "No Translation Overhead" bars of Figure 10).
 *  - kFullyDynamic: everything at runtime with the swing priority.
 *  - kFullyDynamicHeight: everything at runtime with the cheap
 *    height-based priority.
 *  - kHybridStaticCcaPriority: CCA subgraphs (Figure 9(b) procedural
 *    abstraction) and scheduling priority (Figure 9(c) data-section
 *    numbers) are read from static annotations; MII, scheduling, and
 *    register assignment stay dynamic.
 */

#include <optional>
#include <string>
#include <vector>

#include "veal/arch/la_config.h"
#include "veal/cca/cca_mapper.h"
#include "veal/fault/fault_injector.h"
#include "veal/ir/loop.h"
#include "veal/ir/loop_analysis.h"
#include "veal/sched/priority.h"
#include "veal/sched/register_alloc.h"
#include "veal/sched/sched_graph.h"
#include "veal/sched/schedule.h"
#include "veal/sched/scheduler.h"
#include "veal/support/cost_meter.h"

namespace veal {

/** Static/dynamic split of the translation pipeline. */
enum class TranslationMode : int {
    kStatic,
    kFullyDynamic,
    kFullyDynamicHeight,
    kHybridStaticCcaPriority,
};

/** Mode name, e.g. "fully-dynamic". */
const char* toString(TranslationMode mode);

/**
 * What the static compiler embedded in the binary, in a
 * backward-compatible encoding (paper Figure 9).
 */
struct StaticAnnotations {
    /**
     * CCA subgraphs as procedural abstraction (Figure 9(b)).  Encoded as
     * plain branch-and-link functions, so a machine without a CCA simply
     * executes the ops individually.
     */
    std::optional<CcaMapping> cca_mapping;

    /**
     * Per-op scheduling rank (Figure 9(c)): one number per operation in a
     * data section preceding the loop.  Lower = schedule earlier.
     */
    std::optional<std::vector<int>> op_priority;
};

/** Why translation gave up (the loop then runs on the baseline CPU). */
enum class TranslationReject : int {
    kNone,
    kAnalysis,          ///< Calls / speculation / non-affine patterns.
    kTooManyLoadStreams,
    kTooManyStoreStreams,
    kNoFuForOpcode,     ///< Required FU class absent (e.g. FP on int-only LA).
    kScheduleFailed,    ///< No II <= max_ii admits a schedule.
    kTooFewRegisters,
    kCcaMapping,        ///< Injected CCA-mapping fault aborted the mapper.
    kBudgetExhausted,   ///< Translation-budget watchdog fired.
};

/** Reject name, e.g. "too-many-load-streams". */
const char* toString(TranslationReject reject);

/** Everything the VM learns from translating one loop. */
struct TranslationResult {
    bool ok = false;
    TranslationReject reject = TranslationReject::kNone;
    std::string reject_detail;

    LoopAnalysis analysis;
    CcaMapping mapping;
    std::optional<SchedGraph> graph;
    Schedule schedule;
    RegisterAssignment registers;
    int mii = 0;

    /** Per-phase work; instructions() gives the Figure 8 breakdown. */
    CostMeter meter;

    /** II-search effort across every scheduling attempt for this loop. */
    SchedulerStats sched_stats;
    /** Larger-II retries forced by register-assignment failures. */
    int register_retries = 0;
    /** Swing order wedged; the height-order fallback was attempted. */
    bool height_fallback = false;

    /**
     * Dynamic translation penalty in baseline-CPU cycles.  Zero for
     * kStatic; otherwise the metered instruction count (the VM translator
     * is modelled at 1 IPC on the host, as in the paper's OProfile
     * methodology).
     */
    double penaltyCycles() const;

    TranslationMode mode = TranslationMode::kFullyDynamic;
};

/**
 * Per-call knobs for translateLoop(): fault injection plus the
 * degradation-ladder relaxations the hardened VM retries with.
 */
struct TranslationOptions {
    /** Static annotations (see the 4-arg translateLoop overload). */
    const StaticAnnotations* annotations = nullptr;

    /**
     * Fault injector threaded through the pipeline (scheduler, register
     * allocator, CCA mapper, budget watchdog).  nullptr = nominal
     * translation, bit-identical to the plain overload.
     */
    FaultInjector* faults = nullptr;

    /**
     * Added to the MII before scheduling starts (the "relaxed II" rung:
     * a less congested reservation table sidesteps placement wedges and
     * shortens operand lifetimes).
     */
    int ii_slack = 0;

    /**
     * Skip CCA subgraph identification entirely (the "no CCA" rung);
     * abstracted subgraphs execute as individual ops.
     */
    bool disable_cca = false;

    /**
     * Budget-watchdog relief: each degradation rung doubles the armed
     * translation budget (FaultInjector::budgetExceeded).
     */
    int budget_relief = 0;
};

/**
 * Run the translation pipeline for @p loop targeting @p config.
 *
 * Thread-safety: a pure function of its arguments -- every product
 * (graph, schedule, registers, CostMeter) lives inside the returned
 * TranslationResult, and nothing global is written except the log sink
 * on the annotation-fallback warning.  Concurrent sweep threads
 * therefore never share a mutable translation.  (A FaultInjector passed
 * via TranslationOptions is mutable run state owned by the caller and
 * must stay thread-confined.)
 *
 * @param annotations required for kHybridStaticCcaPriority (falls back to
 *        dynamic computation with a warning when absent); ignored for the
 *        fully dynamic modes.
 */
TranslationResult translateLoop(const Loop& loop, const LaConfig& config,
                                TranslationMode mode,
                                const StaticAnnotations* annotations =
                                    nullptr);

/** As above, with fault injection and ladder relaxations. */
TranslationResult translateLoop(const Loop& loop, const LaConfig& config,
                                TranslationMode mode,
                                const TranslationOptions& options);

/**
 * The hardened VM's recovery ladder (DESIGN.md §11), in escalation
 * order.  Loop-level rungs (kNominal .. kNoCca) relax one translation;
 * kNoFission re-translates the unfissioned site loop; kCpuPinned gives
 * up and runs the site on the baseline CPU forever.
 */
enum class DegradationRung : int {
    kNominal = 0,
    kRelaxedIi,
    kNoCca,
    kNoFission,
    kCpuPinned,
};

/** Rung name, e.g. "relaxed-ii". */
const char* toString(DegradationRung rung);

/** What climbing the loop-level ladder produced. */
struct LadderOutcome {
    /** The final attempt (ok, or the last failure when pinned). */
    TranslationResult translation;

    /** Rung that produced `translation`; kCpuPinned when nothing ok. */
    DegradationRung rung = DegradationRung::kNominal;

    /**
     * Every failed attempt before the final one, in rung order -- the
     * VM charges their metered cycles (work performed before giving
     * up), exactly like nominal failed translations.
     */
    std::vector<TranslationResult> failed_attempts;
};

/**
 * Climb the loop-level degradation rungs for one loop: nominal ->
 * relaxed II -> no CCA, stopping at the first rung whose translation
 * succeeds.  Returns rung kCpuPinned (translation not ok) when every
 * rung fails; the caller decides whether a no-fission retry applies.
 * With @p faults == nullptr the nominal rung is bit-identical to
 * translateLoop() and later rungs only engage on genuine failures.
 */
LadderOutcome climbTranslationLadder(const Loop& loop,
                                     const LaConfig& config,
                                     TranslationMode mode,
                                     const StaticAnnotations* annotations,
                                     FaultInjector* faults);

/**
 * The static compiler stage that produces Figure 9's annotations for a
 * binary: CCA subgraphs and swing scheduling ranks.  Returns empty
 * annotations for loops that fail analysis.
 */
StaticAnnotations precompileAnnotations(const Loop& loop,
                                        const LaConfig& config);

}  // namespace veal

#endif  // VEAL_VM_TRANSLATOR_H_
