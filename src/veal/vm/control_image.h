#ifndef VEAL_VM_CONTROL_IMAGE_H_
#define VEAL_VM_CONTROL_IMAGE_H_

/**
 * @file
 * The binary control image of a translated loop.
 *
 * Paper §4.1: "Once all the ops are placed, they represent all the control
 * signals needed to configure the LA's datapath ...  Control data
 * representing the loop schedule is transferred to the loop accelerator
 * through a memory mapped interface", and §4.3 sizes the 16-entry code
 * cache at ~48 KB.  This encoder serialises a TranslationResult into that
 * image: a header, the per-FU control store (one entry per occupied
 * modulo slot, with operand routing), the address-generator stream
 * configurations, and the register-file initialisation map.  A decoder
 * recovers the structural fields so round-trips can be verified.
 */

#include <cstdint>
#include <vector>

#include "veal/vm/translator.h"

namespace veal {

/** Where an operand's value comes from in the datapath. */
enum class OperandSource : std::uint8_t {
    kRegister = 0,  ///< Register-file read (index).
    kBypass,        ///< Interconnect bypass from a producing FU (unit id).
    kFifo,          ///< Load-stream FIFO (stream index).
    kLiteral,       ///< Literal pool entry (index).
};

/** One entry of the decoded control store. */
struct ControlEntry {
    std::uint8_t fu_class = 0;
    std::uint8_t fu_instance = 0;
    std::uint8_t slot = 0;      ///< Modulo cycle within the II.
    std::uint8_t stage = 0;
    std::uint8_t num_ops = 0;   ///< 1, or the CCA group size.
    std::uint8_t dest_register = 0xff;  ///< 0xff = no register write.
};

/** Decoded structural view of an image (for verification/debugging). */
struct DecodedControlImage {
    int ii = 0;
    int stage_count = 0;
    int num_load_streams = 0;
    int num_store_streams = 0;
    int num_register_inits = 0;
    int num_literals = 0;
    std::vector<ControlEntry> entries;
};

/** A serialised loop translation, as the code cache stores it. */
class ControlImage {
  public:
    /** Serialise @p translation (must be ok) for @p loop. */
    static ControlImage encode(const Loop& loop,
                               const TranslationResult& translation);

    /**
     * Rebuild an image from raw @p words (the persistent store's load
     * path).  No validation happens here -- the caller checks the
     * stored checksum against checksum() before trusting the image,
     * exactly as the hardened VM does before a cached dispatch.
     */
    static ControlImage fromWords(std::vector<std::uint32_t> words);

    /** Parse the structural fields back out (panics on a bad image). */
    DecodedControlImage decode() const;

    /** Raw image words. */
    const std::vector<std::uint32_t>& words() const { return words_; }

    /** Image size in bytes (what the code cache accounts). */
    std::size_t byteSize() const { return words_.size() * 4; }

    /**
     * Position-sensitive rotate-XOR fold of the image words.  Any
     * single-bit flip changes the checksum (each word is rotated by its
     * index before XOR, so identical flips at different positions
     * cannot cancel), which is what the hardened VM validates before
     * every cached dispatch.
     */
    std::uint32_t checksum() const;

    /**
     * Flip bit @p bit_index (0 = LSB of word 0) -- the fault layer's
     * model of a corrupted code-cache entry.
     */
    void flipBit(std::size_t bit_index);

  private:
    std::vector<std::uint32_t> words_;
};

}  // namespace veal

#endif  // VEAL_VM_CONTROL_IMAGE_H_
