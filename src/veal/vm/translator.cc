#include "veal/vm/translator.h"

#include <algorithm>

#include "veal/sched/mii.h"
#include "veal/sched/scheduler.h"
#include "veal/support/assert.h"
#include "veal/support/logging.h"

namespace veal {

const char*
toString(TranslationMode mode)
{
    switch (mode) {
      case TranslationMode::kStatic: return "static";
      case TranslationMode::kFullyDynamic: return "fully-dynamic";
      case TranslationMode::kFullyDynamicHeight:
        return "fully-dynamic-height";
      case TranslationMode::kHybridStaticCcaPriority:
        return "static-cca-priority";
    }
    return "unknown";
}

const char*
toString(TranslationReject reject)
{
    switch (reject) {
      case TranslationReject::kNone: return "none";
      case TranslationReject::kAnalysis: return "analysis";
      case TranslationReject::kTooManyLoadStreams:
        return "too-many-load-streams";
      case TranslationReject::kTooManyStoreStreams:
        return "too-many-store-streams";
      case TranslationReject::kNoFuForOpcode: return "no-fu-for-opcode";
      case TranslationReject::kScheduleFailed: return "schedule-failed";
      case TranslationReject::kTooFewRegisters: return "too-few-registers";
      case TranslationReject::kCcaMapping: return "cca-mapping";
      case TranslationReject::kBudgetExhausted: return "budget-exhausted";
    }
    return "unknown";
}

const char*
toString(DegradationRung rung)
{
    switch (rung) {
      case DegradationRung::kNominal: return "nominal";
      case DegradationRung::kRelaxedIi: return "relaxed-ii";
      case DegradationRung::kNoCca: return "no-cca";
      case DegradationRung::kNoFission: return "no-fission";
      case DegradationRung::kCpuPinned: return "cpu-pinned";
    }
    return "unknown";
}

double
TranslationResult::penaltyCycles() const
{
    return mode == TranslationMode::kStatic ? 0.0
                                            : meter.totalInstructions();
}

namespace {

/** Rebuild the unit order from Figure 9(c)'s per-op rank numbers. */
NodeOrder
orderFromStaticRanks(const SchedGraph& graph,
                     const std::vector<int>& op_priority, CostMeter* meter)
{
    NodeOrder order;
    order.kind = PriorityKind::kSwing;
    const int n = graph.numUnits();
    // The encoded number is rank * 2 + place_late_bit (still one number
    // per op, as in Figure 9(c)).
    std::vector<int> unit_rank(static_cast<std::size_t>(n), 1 << 30);
    order.place_late.assign(static_cast<std::size_t>(n), false);
    for (const auto& unit : graph.units()) {
        for (const OpId op : unit.ops) {
            // A single pass over the loop recovers every priority:
            // paper Figure 9(c)'s "two loads per op" decode cost.
            if (meter != nullptr)
                meter->charge(TranslationPhase::kPriority, 2);
            if (op < static_cast<int>(op_priority.size()) &&
                op_priority[static_cast<std::size_t>(op)] >= 0) {
                const int encoded =
                    op_priority[static_cast<std::size_t>(op)];
                auto& rank =
                    unit_rank[static_cast<std::size_t>(unit.id)];
                if (encoded / 2 < rank / 2 || rank == (1 << 30)) {
                    rank = encoded;
                    order.place_late[static_cast<std::size_t>(unit.id)] =
                        (encoded & 1) != 0;
                }
            }
        }
    }
    order.sequence.resize(static_cast<std::size_t>(n));
    for (int u = 0; u < n; ++u)
        order.sequence[static_cast<std::size_t>(u)] = u;
    std::sort(order.sequence.begin(), order.sequence.end(),
              [&](int a, int b) {
                  if (unit_rank[static_cast<std::size_t>(a)] !=
                      unit_rank[static_cast<std::size_t>(b)]) {
                      return unit_rank[static_cast<std::size_t>(a)] <
                             unit_rank[static_cast<std::size_t>(b)];
                  }
                  return a < b;
              });
    order.rank.assign(static_cast<std::size_t>(n), 0);
    for (int position = 0; position < n; ++position) {
        order.rank[static_cast<std::size_t>(
            order.sequence[static_cast<std::size_t>(position)])] = position;
    }
    return order;
}

}  // namespace

TranslationResult
translateLoop(const Loop& loop, const LaConfig& config,
              TranslationMode mode, const StaticAnnotations* annotations)
{
    TranslationOptions options;
    options.annotations = annotations;
    return translateLoop(loop, config, mode, options);
}

TranslationResult
translateLoop(const Loop& loop, const LaConfig& config,
              TranslationMode mode, const TranslationOptions& options)
{
    const StaticAnnotations* annotations = options.annotations;
    TranslationResult result;
    result.mode = mode;
    CostMeter& meter = result.meter;

    auto reject = [&](TranslationReject why, std::string detail) {
        result.reject = why;
        result.reject_detail = std::move(detail);
        return result;
    };

    // Deterministic cycle-budget watchdog: between phases, an armed
    // budget compares the metered work so far against its (rung-
    // relieved) allowance, so exhaustion strikes at a reproducible
    // phase boundary rather than a wall-clock instant.
    auto over_budget = [&] {
        return options.faults != nullptr &&
               options.faults->budgetExceeded(meter.totalInstructions(),
                                              options.budget_relief);
    };
    const auto budget_detail = [&] {
        return "after " +
               std::to_string(static_cast<std::int64_t>(
                   meter.totalInstructions())) +
               " metered instructions";
    };

    // --- Loop analysis (always dynamic: loop detection is cheap).
    result.analysis = analyzeLoop(loop, &meter);
    if (!result.analysis.ok()) {
        return reject(TranslationReject::kAnalysis,
                      std::string(toString(result.analysis.reject)) + ": " +
                          result.analysis.reject_detail);
    }
    if (over_budget())
        return reject(TranslationReject::kBudgetExhausted,
                      budget_detail());

    // --- Feature checks against this LA.
    if (static_cast<int>(result.analysis.load_streams.size()) >
        config.num_load_streams) {
        return reject(TranslationReject::kTooManyLoadStreams,
                      std::to_string(result.analysis.load_streams.size()) +
                          " > " + std::to_string(config.num_load_streams));
    }
    if (static_cast<int>(result.analysis.store_streams.size()) >
        config.num_store_streams) {
        return reject(TranslationReject::kTooManyStoreStreams,
                      std::to_string(result.analysis.store_streams.size()) +
                          " > " + std::to_string(config.num_store_streams));
    }

    // --- CCA mapping: static (Figure 9(b)) or dynamic greedy.
    const bool hybrid = mode == TranslationMode::kHybridStaticCcaPriority;
    if (!config.hasCca() || options.disable_cca) {
        // With no CCA (or the no-CCA degradation rung), statically
        // abstracted subgraphs simply execute as individual ops (the
        // encoding is plain branch-and-link code).
        result.mapping = emptyCcaMapping(loop);
    } else if (hybrid && annotations != nullptr &&
               annotations->cca_mapping.has_value()) {
        result.mapping = *annotations->cca_mapping;
        // Decode cost: recognise the Brl-CCA calls in one pass.
        meter.charge(TranslationPhase::kCcaMapping,
                     static_cast<std::uint64_t>(loop.size()));
    } else {
        if (hybrid && annotations == nullptr) {
            warn("hybrid translation of ", loop.name(),
                 " without annotations; computing dynamically");
        }
        result.mapping = mapToCca(loop, result.analysis, *config.cca,
                                  config.latencies, &meter,
                                  options.faults);
        if (result.mapping.fault_failed) {
            return reject(TranslationReject::kCcaMapping,
                          "injected cca-mapping fault");
        }
    }
    if (over_budget())
        return reject(TranslationReject::kBudgetExhausted,
                      budget_detail());

    // --- Build the scheduling problem and compute MII.
    result.graph.emplace(loop, result.analysis, result.mapping, config);
    const SchedGraph& graph = *result.graph;

    const int res_mii = resMii(graph, config, &meter);
    if (res_mii >= LaConfig::kUnlimited) {
        return reject(TranslationReject::kNoFuForOpcode, loop.name());
    }
    const int rec_mii = recMii(graph, &meter);
    result.mii = std::max(res_mii, rec_mii);
    if (over_budget())
        return reject(TranslationReject::kBudgetExhausted,
                      budget_detail());

    // --- Priority: static ranks, cheap height, or full swing.
    NodeOrder order;
    if (hybrid && annotations != nullptr &&
        annotations->op_priority.has_value()) {
        order = orderFromStaticRanks(graph, *annotations->op_priority,
                                     &meter);
    } else if (mode == TranslationMode::kFullyDynamicHeight) {
        order = computeHeightOrder(graph, result.mii, &meter);
    } else {
        order = computeSwingOrder(graph, result.mii, &meter);
    }
    if (over_budget())
        return reject(TranslationReject::kBudgetExhausted,
                      budget_detail());

    // --- List scheduling against the modulo reservation table, with a
    // register-assignment post-pass.  When the operand mapping does not
    // fit the register files, retry at a larger II: a less congested
    // reservation table lets consumers sit next to their producers, which
    // shortens lifetimes (and is cheap for the translator to attempt).
    auto schedule_with_registers = [&](const NodeOrder& node_order,
                                       bool* placement_failed) {
        // ii_slack is the relaxed-II degradation rung: scheduling starts
        // above the MII, decongesting the reservation table.
        int floor_ii = std::min(result.mii + options.ii_slack,
                                config.max_ii);
        *placement_failed = false;
        for (int attempt = 0; attempt < 3; ++attempt) {
            auto schedule = scheduleLoop(graph, config, node_order,
                                         floor_ii, &meter,
                                         &result.sched_stats,
                                         options.faults);
            if (!schedule.has_value()) {
                *placement_failed = true;
                return false;
            }
            result.schedule = std::move(*schedule);
            result.registers = assignRegisters(loop, result.analysis,
                                               graph, result.schedule,
                                               config, &meter,
                                               options.faults);
            if (result.registers.ok)
                return true;
            ++result.register_retries;
            floor_ii = result.schedule.ii + 1;
            if (floor_ii > config.max_ii)
                return false;
        }
        return false;
    };

    const std::int64_t sched_fired_before =
        options.faults != nullptr
            ? options.faults->fired(FaultSite::kSchedulerPlacement)
            : 0;
    bool placement_failed = false;
    bool scheduled = schedule_with_registers(order, &placement_failed);
    if (!scheduled && placement_failed && options.faults != nullptr &&
        options.faults->fired(FaultSite::kSchedulerPlacement) >
            sched_fired_before) {
        // An injected placement fault corrupted this whole translation
        // attempt; re-ordering cannot save it.  Reject so the VM's
        // degradation ladder (not the height fallback) retries.
        return reject(TranslationReject::kScheduleFailed,
                      "injected scheduler-placement fault");
    }
    if (!scheduled && placement_failed &&
        order.kind != PriorityKind::kHeight) {
        // The swing order occasionally wedges a node between neighbours
        // placed in opposite sweep directions at every II.  Fall back to
        // the forward-only height order before giving up (the extra
        // priority pass is charged like any other translation work).
        result.height_fallback = true;
        const NodeOrder fallback =
            computeHeightOrder(graph, result.mii, &meter);
        scheduled = schedule_with_registers(fallback, &placement_failed);
    }
    if (!scheduled) {
        if (placement_failed) {
            return reject(TranslationReject::kScheduleFailed,
                          "MII " + std::to_string(result.mii) +
                              ", max II " + std::to_string(config.max_ii));
        }
        return reject(TranslationReject::kTooFewRegisters,
                      result.registers.fail_reason);
    }
    if (over_budget())
        return reject(TranslationReject::kBudgetExhausted,
                      budget_detail());

    result.ok = true;
    return result;
}

LadderOutcome
climbTranslationLadder(const Loop& loop, const LaConfig& config,
                       TranslationMode mode,
                       const StaticAnnotations* annotations,
                       FaultInjector* faults)
{
    // Relaxations accumulate monotonically down the rungs: the no-CCA
    // attempt keeps the II slack, and every rung doubles the armed
    // translation budget (budget_relief).
    struct Rung {
        DegradationRung rung;
        int ii_slack;
        bool disable_cca;
        int budget_relief;
    };
    constexpr Rung kRungs[] = {
        {DegradationRung::kNominal, 0, false, 0},
        {DegradationRung::kRelaxedIi, 2, false, 1},
        {DegradationRung::kNoCca, 2, true, 2},
    };

    LadderOutcome outcome;
    for (const auto& rung : kRungs) {
        TranslationOptions options;
        options.annotations = annotations;
        options.faults = faults;
        options.ii_slack = rung.ii_slack;
        options.disable_cca = rung.disable_cca;
        options.budget_relief = rung.budget_relief;
        TranslationResult attempt =
            translateLoop(loop, config, mode, options);
        if (attempt.ok) {
            outcome.translation = std::move(attempt);
            outcome.rung = rung.rung;
            return outcome;
        }
        // A nominal *clean* reject (analysis, stream limits, missing
        // FU) is not a fault: the loop genuinely does not fit this LA,
        // and no relaxation below changes that verdict.
        const bool recoverable =
            attempt.reject == TranslationReject::kScheduleFailed ||
            attempt.reject == TranslationReject::kTooFewRegisters ||
            attempt.reject == TranslationReject::kCcaMapping ||
            attempt.reject == TranslationReject::kBudgetExhausted;
        if (!recoverable) {
            outcome.translation = std::move(attempt);
            outcome.rung = DegradationRung::kCpuPinned;
            return outcome;
        }
        outcome.failed_attempts.push_back(std::move(attempt));
    }
    // Every rung failed: the last attempt becomes the verdict (moved
    // out of failed_attempts so its cycles are charged exactly once).
    outcome.translation = std::move(outcome.failed_attempts.back());
    outcome.failed_attempts.pop_back();
    outcome.rung = DegradationRung::kCpuPinned;
    return outcome;
}

StaticAnnotations
precompileAnnotations(const Loop& loop, const LaConfig& config)
{
    StaticAnnotations annotations;
    const LoopAnalysis analysis = analyzeLoop(loop);
    if (!analysis.ok())
        return annotations;

    CcaMapping mapping = config.hasCca()
                             ? mapToCca(loop, analysis, *config.cca,
                                        config.latencies)
                             : emptyCcaMapping(loop);

    const SchedGraph graph(loop, analysis, mapping, config);
    const int res = resMii(graph, config);
    const int rec = recMii(graph);
    const int ii = res >= LaConfig::kUnlimited ? rec : std::max(res, rec);
    const NodeOrder order = computeSwingOrder(graph, ii);

    std::vector<int> op_priority(static_cast<std::size_t>(loop.size()), -1);
    for (const auto& unit : graph.units()) {
        const int encoded =
            order.rank[static_cast<std::size_t>(unit.id)] * 2 +
            (order.place_late[static_cast<std::size_t>(unit.id)] ? 1 : 0);
        for (const OpId op : unit.ops)
            op_priority[static_cast<std::size_t>(op)] = encoded;
    }
    annotations.cca_mapping = std::move(mapping);
    annotations.op_priority = std::move(op_priority);
    return annotations;
}

}  // namespace veal
