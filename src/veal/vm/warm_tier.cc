#include "veal/vm/warm_tier.h"

#include <utility>

namespace veal {

void
WarmTier::publish(const std::string& key, TranslationResult translation,
                  std::optional<ControlImage> image, std::int64_t epoch,
                  std::int64_t sequence, int backend)
{
    auto entry = std::make_shared<Entry>();
    entry->translation = std::move(translation);
    entry->image = std::move(image);
    if (entry->image.has_value())
        entry->expected_checksum = entry->image->checksum();
    entry->epoch = epoch;
    entry->sequence = sequence;
    entry->backend = backend;

    const auto [it, inserted] =
        entries_.insert_or_assign(key, std::move(entry));
    (void)it;
    ++publishes_;
    if (!inserted)
        ++republishes_;
}

void
WarmTier::publishSummary(const std::string& key,
                         persist::TranslationSummary summary,
                         std::optional<ControlImage> image,
                         std::int64_t epoch, std::int64_t sequence,
                         int backend)
{
    auto entry = std::make_shared<Entry>();
    entry->summary = std::move(summary);
    entry->image = std::move(image);
    if (entry->image.has_value())
        entry->expected_checksum = entry->image->checksum();
    entry->epoch = epoch;
    entry->sequence = sequence;
    entry->backend = backend;

    const auto [it, inserted] =
        entries_.insert_or_assign(key, std::move(entry));
    (void)it;
    ++publishes_;
    if (!inserted)
        ++republishes_;
}

WarmTier::EntryRef
WarmTier::find(const std::string& key) const
{
    const auto it = entries_.find(key);
    return it == entries_.end() ? nullptr : it->second;
}

WarmTier::EntryRef
WarmTier::serve(const std::string& key)
{
    const auto it = entries_.find(key);
    if (it == entries_.end())
        return nullptr;
    ++serves_;
    return it->second;
}

std::shared_ptr<WarmTier::Entry>
WarmTier::mutableEntry(const std::string& key)
{
    const auto it = entries_.find(key);
    return it == entries_.end() ? nullptr : it->second;
}

bool
WarmTier::invalidate(const std::string& key)
{
    if (entries_.erase(key) == 0)
        return false;
    ++invalidations_;
    return true;
}

void
WarmTier::publishScores(const std::string& key, ScoreRef scores)
{
    scores_.insert_or_assign(key, std::move(scores));
}

WarmTier::ScoreRef
WarmTier::findScores(const std::string& key) const
{
    const auto it = scores_.find(key);
    return it == scores_.end() ? nullptr : it->second;
}

WarmTier::Stats
WarmTier::stats() const
{
    Stats stats;
    stats.publishes = publishes_;
    stats.republishes = republishes_;
    stats.serves = serves_;
    stats.invalidations = invalidations_;
    stats.size = size();
    return stats;
}

}  // namespace veal
