#include "veal/vm/code_cache.h"

#include "veal/support/assert.h"
#include "veal/support/metrics/metrics.h"

namespace veal {

CodeCache::CodeCache(int capacity) : capacity_(capacity)
{
    VEAL_ASSERT(capacity >= 1, "code cache needs at least one entry");
}

bool
CodeCache::lookup(const std::string& key)
{
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++misses_;
        return false;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
}

CodeCache::InsertOutcome
CodeCache::insert(const std::string& key)
{
    return insert(key, nullptr);
}

CodeCache::InsertOutcome
CodeCache::insert(const std::string& key, std::string* evicted_key)
{
    // Clear first so a buffer reused across calls never carries a stale
    // eviction into a non-evicting insert (see the header contract).
    if (evicted_key != nullptr)
        evicted_key->clear();
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        return InsertOutcome::kRefreshed;
    }
    if (static_cast<int>(entries_.size()) >= capacity_) {
        if (evicted_key != nullptr)
            *evicted_key = lru_.back();
        entries_.erase(lru_.back());
        lru_.pop_back();
        ++evictions_;
    }
    lru_.push_front(key);
    entries_[key] = lru_.begin();
    return InsertOutcome::kInserted;
}

bool
CodeCache::erase(const std::string& key)
{
    const auto it = entries_.find(key);
    if (it == entries_.end())
        return false;
    lru_.erase(it->second);
    entries_.erase(it);
    return true;
}

CodeCache::Stats
CodeCache::stats() const
{
    Stats stats;
    stats.hits = hits_;
    stats.misses = misses_;
    stats.evictions = evictions_;
    stats.size = size();
    stats.capacity = capacity_;
    return stats;
}

void
CodeCache::recordInto(metrics::Registry& registry,
                      const std::string& prefix) const
{
    registry.add(prefix + ".hits", hits_);
    registry.add(prefix + ".misses", misses_);
    registry.add(prefix + ".evictions", evictions_);
    registry.add(prefix + ".resident", size());
}

void
CodeCache::clear()
{
    lru_.clear();
    entries_.clear();
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
}

}  // namespace veal
