#include "veal/vm/code_cache.h"

#include "veal/support/assert.h"

namespace veal {

CodeCache::CodeCache(int capacity) : capacity_(capacity)
{
    VEAL_ASSERT(capacity >= 1, "code cache needs at least one entry");
}

bool
CodeCache::lookup(const std::string& key)
{
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++misses_;
        return false;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
}

void
CodeCache::insert(const std::string& key)
{
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    if (static_cast<int>(entries_.size()) >= capacity_) {
        entries_.erase(lru_.back());
        lru_.pop_back();
    }
    lru_.push_front(key);
    entries_[key] = lru_.begin();
}

void
CodeCache::clear()
{
    lru_.clear();
    entries_.clear();
    hits_ = 0;
    misses_ = 0;
}

}  // namespace veal
