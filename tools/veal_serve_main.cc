/**
 * veal-serve: the sharded multi-tenant translation service front end.
 *
 * Feeds a veal-trace-v1 request trace (from --trace, or generated in
 * process from --requests/--tenants/...) through a TranslationService
 * and prints the deterministic service report.  The report, the
 * per-tenant digests, and the --metrics-json snapshot are byte-identical
 * for any --shards/--threads/--batch value; wall-clock goes to stderr
 * only.
 *
 * SIGINT/SIGTERM request a graceful shutdown: the service finishes the
 * tick in flight, flushes the persistent store's manifest, and still
 * prints the report and metrics snapshot for the completed prefix.
 *
 * Exit status: 0 on a completed run, 1 on a failed run (unreadable or
 * malformed trace, unwritable snapshot), 2 on bad usage.
 */

#include <atomic>
#include <csignal>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <variant>

#include "bench/cli.h"
#include "veal/service/service.h"
#include "veal/service/trace.h"
#include "veal/support/metrics/metrics.h"

namespace {

namespace cli = veal::bench::cli;

constexpr const char* kTool = "veal-serve";

/** Flipped by the signal handler; polled by run() at tick boundaries. */
std::atomic<bool> g_stop{false};

extern "C" void
handleStopSignal(int)
{
    // Async-signal-safe: one relaxed store, nothing else.  Everything
    // interesting (queue close, drain, flush) happens on the driver
    // thread at the next tick boundary.
    g_stop.store(true, std::memory_order_relaxed);
}

void
installStopHandlers()
{
    std::signal(SIGINT, handleStopSignal);
    std::signal(SIGTERM, handleStopSignal);
}

int
usage()
{
    std::cerr <<
        "usage: veal-serve [options]\n"
        "trace input (pick one):\n"
        "  --trace FILE    replay a veal-trace-v1 file\n"
        "  --requests N    generate an N-request trace (default 256)\n"
        "    --tenants N   tenants in the generated trace (default 4)\n"
        "    --loops N     distinct loops in the pool (default 16)\n"
        "    --tick N      requests per tick (default 32)\n"
        "    --seed S      trace generator seed (default 1)\n"
        "    --iterations N  iterations per request (default 12)\n"
        "  --gen-trace FILE  write the generated trace to FILE and exit\n"
        "service shape (never affects the report bytes):\n"
        "  --shards N      worker shards, each with a private code cache\n"
        "                  (default 2)\n"
        "  --threads N     pool width for the shard phase (default 1)\n"
        "  --batch N       pricing lanes per batch call (default 16)\n"
        "admission control:\n"
        "  --quota N       per-tenant in-flight quota per tick (default 8)\n"
        "  --queue-depth N bounded request queue depth (default 64)\n"
        "  --cache-entries N  per-shard code-cache capacity (default 16)\n"
        "persistence:\n"
        "  --cache-dir DIR    persistent cross-run code cache; a rerun\n"
        "                     with the same DIR warm-starts from it\n"
        "  --cache-capacity N store entry bound, SLRU-evicted (default\n"
        "                     4096)\n"
        "fleet steering (single design point unless --fleet given):\n"
        "  --fleet SPEC       heterogeneous backend fleet: 'standard'\n"
        "                     (baseline + 4 presets), 'baseline', or a\n"
        "                     comma list of baseline,cca-heavy,fp-heavy,\n"
        "                     stream-heavy,tiny-ii\n"
        "  --fleet-capacity N per-backend resident-key capacity\n"
        "                     (default 0 = unlimited)\n"
        "TLB cost model (off unless --tlb* given):\n"
        "  --tlb              enable at the default design point\n"
        "  --tlb-entries N    stream-TLB capacity in pages (default 32)\n"
        "  --tlb-walk N       cycles per page walk (default 30)\n"
        "  --tlb-page N       page size in bytes (default 4096)\n"
        "faults:\n"
        "  --fault-seed S  arm a per-request FaultPlan stream\n"
        "output:\n"
        "  --metrics-json FILE  write a veal-metrics-v1 snapshot\n";
    return 2;
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string trace_file;
    std::string gen_trace_file;
    std::string metrics_json;
    veal::TraceGenOptions gen;
    veal::ServiceOptions options;
    options.shards = 2;
    std::string fleet_spec;
    int fleet_capacity = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() {
            return cli::requireValue(kTool, argc, argv, &i, usage);
        };
        if (arg == "--trace") {
            trace_file = value();
        } else if (arg == "--gen-trace") {
            gen_trace_file = value();
        } else if (arg == "--requests") {
            gen.requests = cli::parseCount(kTool, arg, value(), usage);
        } else if (arg == "--tenants") {
            gen.tenants = cli::parseCount(kTool, arg, value(), usage);
        } else if (arg == "--loops") {
            gen.loop_pool = cli::parseCount(kTool, arg, value(), usage);
        } else if (arg == "--tick") {
            gen.tick_size = cli::parseCount(kTool, arg, value(), usage);
        } else if (arg == "--seed") {
            gen.seed = cli::parseU64(kTool, arg, value(), usage);
        } else if (arg == "--iterations") {
            gen.iterations = cli::parseCount(kTool, arg, value(), usage);
        } else if (arg == "--shards") {
            options.shards = cli::parseCount(kTool, arg, value(), usage);
        } else if (arg == "--threads") {
            options.threads = cli::parseCount(kTool, arg, value(), usage);
        } else if (arg == "--batch") {
            options.batch = cli::parseCount(kTool, arg, value(), usage);
        } else if (arg == "--quota") {
            options.tenant_quota =
                cli::parseCount(kTool, arg, value(), usage);
        } else if (arg == "--queue-depth") {
            options.queue_depth =
                cli::parseCount(kTool, arg, value(), usage);
        } else if (arg == "--cache-entries") {
            options.shard_cache_entries =
                cli::parseCount(kTool, arg, value(), usage);
        } else if (arg == "--fault-seed") {
            options.fault_seed = cli::parseU64(kTool, arg, value(), usage);
        } else if (arg == "--cache-dir") {
            options.cache_dir = value();
        } else if (arg == "--cache-capacity") {
            options.store.max_entries =
                cli::parseCount(kTool, arg, value(), usage);
        } else if (arg == "--fleet") {
            fleet_spec = value();
        } else if (arg == "--fleet-capacity") {
            fleet_capacity = cli::parseCount(kTool, arg, value(), usage);
        } else if (arg == "--tlb") {
            options.tlb.enabled = true;
        } else if (arg == "--tlb-entries") {
            options.tlb.enabled = true;
            options.tlb.entries =
                cli::parseCount(kTool, arg, value(), usage);
        } else if (arg == "--tlb-walk") {
            options.tlb.enabled = true;
            options.tlb.walk_cycles =
                cli::parseCount(kTool, arg, value(), usage);
        } else if (arg == "--tlb-page") {
            options.tlb.enabled = true;
            options.tlb.page_bytes =
                cli::parseCount(kTool, arg, value(), usage);
        } else if (arg == "--metrics-json") {
            metrics_json = value();
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            cli::usageError(kTool, "unknown option '" + arg + "'", usage);
        }
    }

    if (options.shards < 1 || options.batch < 1 ||
        options.queue_depth < 1 || options.shard_cache_entries < 1) {
        cli::usageError(kTool,
                        "--shards, --batch, --queue-depth, and "
                        "--cache-entries must be positive",
                        usage);
    }
    if (options.store.max_entries < 1 || options.tlb.entries < 0 ||
        options.tlb.page_bytes < 1 || options.tlb.walk_cycles < 0) {
        cli::usageError(kTool,
                        "--cache-capacity and --tlb-page must be "
                        "positive; --tlb-entries and --tlb-walk "
                        "non-negative",
                        usage);
    }
    if (!trace_file.empty() && !gen_trace_file.empty()) {
        cli::usageError(kTool, "--trace and --gen-trace are exclusive",
                        usage);
    }
    if (!fleet_spec.empty()) {
        auto fleet = veal::fleet::FleetConfig::parse(fleet_spec,
                                                     fleet_capacity);
        if (!fleet.has_value()) {
            cli::usageError(kTool,
                            "--fleet: unknown spec '" + fleet_spec + "'",
                            usage);
        }
        options.fleet = std::move(fleet);
    }

    veal::ServiceTrace trace;
    if (!trace_file.empty()) {
        std::ifstream in(trace_file);
        if (!in) {
            std::cerr << kTool << ": cannot read " << trace_file << "\n";
            return 1;
        }
        std::ostringstream text;
        text << in.rdbuf();
        auto parsed = veal::parseTrace(text.str());
        if (std::holds_alternative<std::string>(parsed)) {
            std::cerr << kTool << ": " << trace_file << ": "
                      << std::get<std::string>(parsed) << "\n";
            return 1;
        }
        trace = std::move(std::get<veal::ServiceTrace>(parsed));
    } else {
        trace = veal::generateTrace(gen);
    }

    if (!gen_trace_file.empty()) {
        std::ofstream out(gen_trace_file);
        if (!out) {
            std::cerr << kTool << ": cannot write " << gen_trace_file
                      << "\n";
            return 1;
        }
        out << veal::formatTrace(trace);
        return 0;
    }

    options.stop = &g_stop;
    installStopHandlers();

    veal::metrics::Registry registry;
    veal::TranslationService service(options, &registry);
    {
        // Wall time goes to stderr only; the report stays clock-free.
        const veal::metrics::ScopedWallTimer timer("veal-serve run");
        service.run(trace);
    }
    if (service.shuttingDown()) {
        std::cerr << kTool << ": stop signal received; drained the "
                     "in-flight tick, flushed the store, reporting the "
                     "completed prefix\n";
    }
    std::cout << service.report().render();

    // Flush the MANIFEST before the metrics snapshot so the store's
    // recency order is durable the moment the run reports success.
    service.flushPersistentStore();

    // Shard-local cache hit rates are physical diagnostics: they depend
    // on --shards by nature, so they go to stderr, never the report.
    for (int s = 0; s < options.shards; ++s) {
        const auto stats = service.shardCacheStats(s);
        std::cerr << "shard " << s << " cache: hits=" << stats.hits
                  << " misses=" << stats.misses
                  << " evictions=" << stats.evictions << "\n";
    }

    if (!metrics_json.empty() &&
        !veal::metrics::writeSnapshot(registry, metrics_json)) {
        std::cerr << kTool << ": cannot write " << metrics_json << "\n";
        return 1;
    }
    return 0;
}
