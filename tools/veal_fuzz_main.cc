/**
 * veal-fuzz: differential fuzzing campaign driver.
 *
 * Generates random-but-valid loops, pushes each through translate ->
 * validate -> LA functional execution, and diffs the results against the
 * reference interpreter.  Failures (divergence, crash-guard, validator
 * reject) can be greedily shrunk and persisted as corpus repro files.
 *
 * The report is deterministic: a given (--runs, --seed, --config) prints
 * byte-identical output for any --threads value.
 *
 * Exit status: 0 on a clean campaign (or clean replay), 1 on failures,
 * 2 on bad usage.
 */

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "bench/cli.h"
#include "veal/fuzz/corpus.h"
#include "veal/fuzz/driver.h"

namespace {

namespace cli = veal::bench::cli;

constexpr const char* kTool = "veal-fuzz";

int
usage()
{
    std::cerr <<
        "usage: veal-fuzz [options]\n"
        "  --runs N        cases to run (default 1000)\n"
        "  --threads N     worker threads (default 1)\n"
        "  --batch N       cases per batch-engine block (default 64;\n"
        "                  never affects results)\n"
        "  --seed S        campaign seed (default 1)\n"
        "  --iterations N  loop iterations per case (default 12)\n"
        "  --config NAME   fuzz only this preset (default: all presets)\n"
        "  --fault-seed S  arm a per-case FaultPlan stream; recovered\n"
        "                  cases report the fault-recovered outcome\n"
        "  --sched-diff    diff the optimized scheduling kernels against\n"
        "                  the frozen reference implementations instead\n"
        "                  of running the execution oracle\n"
        "  --service       push each case through a multi-tenant\n"
        "                  translation-service micro-trace at 1 and 2\n"
        "                  shards and require byte-identical results\n"
        "  --shrink        minimise failing loops before reporting\n"
        "  --corpus DIR    save shrunk repros to DIR as .veal files\n"
        "  --replay DIR    replay corpus files in DIR instead of fuzzing\n"
        "  --metrics-json FILE  write a veal-metrics-v1 snapshot of the\n"
        "                  campaign (byte-identical for any --threads)\n"
        "  --list-configs  print the preset names and exit\n";
    return 2;
}

int
replay(const std::string& directory)
{
    const auto results = veal::replayCorpus(directory);
    int bad = 0;
    for (const auto& result : results) {
        if (result.ok()) {
            std::cout << "ok   " << result.path << " ("
                      << toString(result.expect) << ")\n";
            continue;
        }
        ++bad;
        if (!result.error.empty()) {
            std::cout << "FAIL " << result.path << ": " << result.error
                      << "\n";
        } else {
            std::cout << "FAIL " << result.path << ": expected "
                      << toString(result.expect) << ", got "
                      << toString(result.actual.outcome) << " ("
                      << result.actual.detail << ")\n";
        }
    }
    std::cout << "replayed " << results.size() << " corpus case(s), "
              << bad << " failure(s)\n";
    return bad == 0 ? 0 : 1;
}

}  // namespace

int
main(int argc, char** argv)
{
    veal::FuzzOptions options;
    std::string replay_dir;
    std::string metrics_json;

    const auto next_value = [&](int& i) -> const char* {
        return cli::requireValue(kTool, argc, argv, &i, usage);
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--runs") {
            options.runs = cli::parseCount(kTool, arg, next_value(i),
                                           usage);
        } else if (arg == "--threads") {
            options.threads = cli::parseCount(kTool, arg, next_value(i),
                                              usage);
        } else if (arg == "--batch") {
            options.batch = cli::parseCount(kTool, arg, next_value(i),
                                            usage);
        } else if (arg == "--seed") {
            options.seed = cli::parseU64(kTool, arg, next_value(i),
                                         usage);
        } else if (arg == "--iterations") {
            options.iterations = cli::parseCount(kTool, arg,
                                                 next_value(i), usage);
        } else if (arg == "--fault-seed") {
            options.fault_seed = cli::parseU64(kTool, arg, next_value(i),
                                               usage);
        } else if (arg == "--config") {
            const std::string name = next_value(i);
            const auto preset = veal::fuzzConfigByName(name);
            if (!preset.has_value()) {
                std::cerr << "veal-fuzz: unknown config '" << name
                          << "' (try --list-configs)\n";
                return 2;
            }
            options.configs = {*preset};
        } else if (arg == "--sched-diff") {
            options.sched_diff = true;
        } else if (arg == "--service") {
            options.service = true;
        } else if (arg == "--shrink") {
            options.shrink = true;
        } else if (arg == "--corpus") {
            options.corpus_dir = next_value(i);
        } else if (arg == "--replay") {
            replay_dir = next_value(i);
        } else if (arg == "--metrics-json") {
            metrics_json = next_value(i);
        } else if (arg == "--list-configs") {
            for (const auto& preset : veal::fuzzConfigPresets())
                std::cout << preset.name << "\n";
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            cli::usageError(kTool, "unknown option '" + arg + "'", usage);
        }
    }

    if (!replay_dir.empty())
        return replay(replay_dir);

    if (options.runs < 1 || options.threads < 1 ||
        options.iterations < 1 || options.batch < 1) {
        cli::usageError(kTool,
                        "--runs, --threads, --iterations, and --batch "
                        "must be positive",
                        usage);
    }
    if (options.sched_diff && options.service)
        cli::usageError(kTool, "--sched-diff and --service are exclusive",
                        usage);

    veal::metrics::Registry registry;
    veal::FuzzSummary summary;
    {
        // Wall time goes to stderr only; the snapshot stays clock-free.
        const veal::metrics::ScopedWallTimer timer("veal-fuzz campaign");
        summary = veal::runFuzz(options, &registry);
    }
    std::cout << summary.render();
    if (!metrics_json.empty() &&
        !veal::metrics::writeSnapshot(registry, metrics_json)) {
        std::cerr << "veal-fuzz: cannot write " << metrics_json << "\n";
        return 2;
    }
    return summary.clean() ? 0 : 1;
}
