/**
 * veal-faultsim: fault-injection campaign driver.
 *
 * Samples deterministic fault plans, runs each through the hardened VM
 * on a benchmark application, and gates on two invariants: architectural
 * results stay bit-identical to the reference interpreter under every
 * plan, and every injected fault lands in exactly one recovery counter.
 *
 * The report is deterministic: a given (--plans, --seed, --apps) prints
 * byte-identical output for any --threads value.
 *
 * Exit status: 0 on a clean campaign, 1 on divergences or taxonomy
 * violations, 2 on bad usage.
 */

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "bench/cli.h"
#include "veal/fault/campaign.h"
#include "veal/fault/persist_campaign.h"
#include "veal/support/metrics/metrics.h"
#include "veal/workloads/suite.h"

namespace {

namespace cli = veal::bench::cli;

constexpr const char* kTool = "veal-faultsim";

int
usage()
{
    std::cerr <<
        "usage: veal-faultsim [options]\n"
        "  --mode vm|persist    campaign to run (default vm)\n"
        "  --plans N            fault plans to sample (default 200)\n"
        "  --threads N          worker threads (default 1)\n"
        "  --batch N            plans per batch-engine block (default "
        "64;\n"
        "                       never affects results)\n"
        "  --seed S             campaign seed (default 1)\n"
        "  --app NAME           campaign only this benchmark (repeatable;\n"
        "                       default: the whole media suite)\n"
        "  --iterations N       trip count of the differential check "
        "(default 12)\n"
        "  --max-invocations N  clamp per-site invocations (default 32, "
        "0 = off)\n"
        "  --cache-entries N    code-cache capacity (default 4)\n"
        "  --metrics-json FILE  write a veal-metrics-v1 snapshot of the\n"
        "                       campaign (byte-identical for any "
        "--threads)\n"
        "  --describe N         print plan N of this seed and exit\n"
        "  --list-apps          print the benchmark names and exit\n"
        "persist mode only:\n"
        "  --requests N         service-trace requests per point "
        "(default 48)\n"
        "  --vfs-mode M         fault mode to enumerate: crash, "
        "short-write,\n"
        "                       bit-flip, enospc (repeatable; default "
        "all)\n"
        "  --scratch-dir DIR    per-point store scratch root (default: "
        "a\n"
        "                       seed-named dir under the system temp; "
        "wiped)\n";
    return 2;
}

/** Parse a --vfs-mode name or exit with usage. */
veal::fault::VfsFaultMode
parseVfsMode(const std::string& text)
{
    using veal::fault::VfsFaultMode;
    if (text == "crash")
        return VfsFaultMode::kCrash;
    if (text == "short-write")
        return VfsFaultMode::kShortWrite;
    if (text == "bit-flip")
        return VfsFaultMode::kBitFlip;
    if (text == "enospc")
        return VfsFaultMode::kEnospc;
    cli::usageError(kTool, "unknown --vfs-mode '" + text + "'", usage);
    return VfsFaultMode::kCrash;  // Unreachable.
}

/** Shared strict parsing (bench/cli.h) with this tool's usage text. */
std::uint64_t
parseU64(const char* flag, const std::string& text)
{
    return cli::parseU64(kTool, flag, text, usage);
}

int
parseInt(const char* flag, const std::string& text)
{
    return cli::parseCount(kTool, flag, text, usage);
}

}  // namespace

int
main(int argc, char** argv)
{
    veal::FaultCampaignOptions options;
    veal::PersistCampaignOptions persist_options;
    std::string mode = "vm";
    std::string metrics_json;

    const auto next_value = [&](int& i) -> const char* {
        return cli::requireValue(kTool, argc, argv, &i, usage);
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--mode") {
            mode = next_value(i);
            if (mode != "vm" && mode != "persist")
                cli::usageError(kTool, "--mode must be vm or persist",
                                usage);
        } else if (arg == "--requests") {
            persist_options.requests =
                parseInt("--requests", next_value(i));
        } else if (arg == "--vfs-mode") {
            persist_options.modes.push_back(
                parseVfsMode(next_value(i)));
        } else if (arg == "--scratch-dir") {
            persist_options.scratch_dir = next_value(i);
        } else if (arg == "--plans") {
            options.plans = parseInt("--plans", next_value(i));
        } else if (arg == "--threads") {
            options.threads = parseInt("--threads", next_value(i));
        } else if (arg == "--batch") {
            options.batch = parseInt("--batch", next_value(i));
        } else if (arg == "--seed") {
            options.seed = parseU64("--seed", next_value(i));
        } else if (arg == "--app") {
            options.apps.emplace_back(next_value(i));
        } else if (arg == "--iterations") {
            options.iterations = parseInt("--iterations", next_value(i));
        } else if (arg == "--max-invocations") {
            options.max_invocations =
                parseInt("--max-invocations", next_value(i));
        } else if (arg == "--cache-entries") {
            options.code_cache_entries =
                parseInt("--cache-entries", next_value(i));
        } else if (arg == "--metrics-json") {
            metrics_json = next_value(i);
        } else if (arg == "--describe") {
            const int plan_index = parseInt("--describe", next_value(i));
            std::cout << veal::makeCampaignPlan(options.seed, plan_index)
                             .describe()
                      << "\n";
            return 0;
        } else if (arg == "--list-apps") {
            for (const auto& benchmark : veal::mediaFpSuite())
                std::cout << benchmark.name << "\n";
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            cli::usageError(kTool, "unknown option '" + arg + "'", usage);
        }
    }

    if (options.plans < 1 || options.threads < 1 ||
        options.iterations < 1 || options.code_cache_entries < 1 ||
        options.batch < 1) {
        cli::usageError(kTool,
                        "--plans, --threads, --iterations, "
                        "--cache-entries, and --batch must be positive",
                        usage);
    }

    veal::metrics::Registry registry;
    bool clean = false;
    std::string report;
    {
        // Wall time goes to stderr only; the report stays clock-free.
        const veal::metrics::ScopedWallTimer timer(
            "veal-faultsim campaign");
        if (mode == "persist") {
            persist_options.seed = options.seed;
            persist_options.threads = options.threads;
            persist_options.iterations = options.iterations;
            const veal::PersistCampaignSummary summary =
                veal::runPersistCampaign(persist_options, &registry);
            clean = summary.clean();
            report = summary.render();
        } else {
            const veal::FaultCampaignSummary summary =
                veal::runFaultCampaign(options, &registry);
            clean = summary.clean();
            report = summary.render();
        }
    }
    std::cout << report;
    if (!metrics_json.empty() &&
        !veal::metrics::writeSnapshot(registry, metrics_json)) {
        std::cerr << "veal-faultsim: cannot write " << metrics_json
                  << "\n";
        return 2;
    }
    return clean ? 0 : 1;
}
