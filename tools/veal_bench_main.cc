/**
 * veal-bench: the translation-throughput driver.
 *
 * Pushes the full workload suite through the VM --runs times on a
 * --threads-wide pool, reports translated-loops/sec and modeled
 * cycles-per-translated-op from the metrics registry, and emits the
 * veal-bench-v1 BENCH_translation.json entry that accumulates the
 * repo's performance trajectory (see README "Benchmarking the
 * translator").  --baseline-json embeds a previous entry plus the
 * measured speedup, so regressions are a number, not a feeling.
 *
 * stdout carries only modeled (deterministic) quantities; wall-clock
 * throughput lines go to stderr, and the --metrics-json snapshot is
 * byte-identical for any --threads at a fixed --runs.
 */

#include <cstdio>

#include "bench/fleet.h"
#include "bench/persist.h"
#include "bench/simulation.h"
#include "bench/throughput.h"

namespace {

int
runSimulationMode(const veal::bench::ThroughputOptions& options)
{
    const auto report = veal::bench::runSimulationThroughput(options);

    std::printf("veal-bench: simulation, %d cases/pass, %lld translated, "
                "%lld iterations/interpretation\n",
                report.cases,
                static_cast<long long>(report.translated_cases),
                static_cast<long long>(report.iterations));
    std::printf("veal-bench: %lld modeled cpu cycles, digests cpu=%s "
                "exec=%s la=%s\n",
                static_cast<long long>(report.total_cpu_cycles),
                report.cpu_digest.c_str(), report.exec_digest.c_str(),
                report.la_digest.c_str());

    std::fprintf(stderr,
                 "veal-bench: reference %.1f cases/s, batched %.1f "
                 "cases/s, %.2fx (batch %d, %d runs, %d threads)\n",
                 report.reference_cases_per_sec,
                 report.batched_cases_per_sec,
                 report.speedup_vs_reference, report.batch, report.runs,
                 report.threads);
    return 0;
}

int
runPersistMode(const veal::bench::ThroughputOptions& options)
{
    const auto report = veal::bench::runPersistBench(options);

    std::printf("veal-bench: persist, %d requests, %lld keys saved cold, "
                "%lld requests served from the store warm\n",
                report.requests,
                static_cast<long long>(report.cold_persisted),
                static_cast<long long>(report.warm_persisted));
    std::printf("veal-bench: translation cycles cold=%lld warm=%lld "
                "(ratio %lldx), warm digest %s\n",
                static_cast<long long>(report.cold_translation_cycles),
                static_cast<long long>(report.warm_translation_cycles),
                static_cast<long long>(report.translation_cycle_ratio),
                report.warm_report_digest.c_str());

    std::printf("veal-bench: lifecycle, %lld entries recovered, churn x%lld "
                "left the log at %lld bytes, %lld compactions reclaimed "
                "%lld bytes (%lld left)\n",
                static_cast<long long>(report.recovered_entries),
                static_cast<long long>(report.churn_rounds),
                static_cast<long long>(report.churn_log_bytes),
                static_cast<long long>(report.compactions),
                static_cast<long long>(report.compaction_reclaimed_bytes),
                static_cast<long long>(report.compacted_log_bytes));

    std::fprintf(stderr,
                 "veal-bench: cold p50 %.2f ms, warm p50 %.2f ms, "
                 "recovery p50 %.2f ms (%d runs)\n",
                 report.cold_p50_ms, report.warm_p50_ms,
                 report.recover_p50_ms, report.runs);
    return 0;
}

int
runFleetMode(const veal::bench::ThroughputOptions& options)
{
    const auto report = veal::bench::runFleetBench(options);

    std::printf("veal-bench: fleet '%s', %lld pieces, %lld scored "
                "cells, %lld cpu-win pieces\n",
                report.fleet.c_str(),
                static_cast<long long>(report.pieces),
                static_cast<long long>(report.scored_cells),
                static_cast<long long>(report.cpu_win_pieces));
    std::printf("veal-bench: steady cycles cpu=%lld baseline=%lld "
                "fleet=%lld, fleet speedup %lld.%03lldx vs the single "
                "design point\n",
                static_cast<long long>(report.cpu_steady_cycles),
                static_cast<long long>(report.baseline_steady_cycles),
                static_cast<long long>(report.fleet_steady_cycles),
                static_cast<long long>(report.speedup_milli / 1000),
                static_cast<long long>(report.speedup_milli % 1000));
    for (const auto& backend : report.backends) {
        std::printf("veal-bench: backend %-12s placed %lld pieces "
                    "(%lld invocations, %lld steady cycles)\n",
                    backend.name.c_str(),
                    static_cast<long long>(backend.placed_pieces),
                    static_cast<long long>(backend.placed_invocations),
                    static_cast<long long>(backend.steady_cycles));
    }

    std::fprintf(stderr, "veal-bench: fleet scoring p50 %.2f ms "
                         "(%d runs, %d threads)\n",
                 report.p50_wall_ms, report.runs, report.threads);
    return 0;
}

}  // namespace

int
main(int argc, char** argv)
{
    using namespace veal;
    const auto options = bench::parseThroughputCli(argc, argv);
    if (options.mode == "simulation")
        return runSimulationMode(options);
    if (options.mode == "persist")
        return runPersistMode(options);
    if (options.mode == "fleet")
        return runFleetMode(options);
    const auto report = bench::runTranslationThroughput(options);

    std::printf("veal-bench: %s suite, %lld pieces/run, %lld translated "
                "loops/run, %lld loop ops/run\n",
                report.suite.c_str(),
                static_cast<long long>(report.pieces_per_run),
                static_cast<long long>(report.translated_loops_per_run),
                static_cast<long long>(report.ops_per_run));
    std::printf("veal-bench: %lld modeled phase cycles/run, %.3f "
                "cycles per loop op\n",
                static_cast<long long>(report.phase_cycles_per_run),
                report.cycles_per_translated_op);

    std::fprintf(stderr,
                 "veal-bench: %.1f translated loops/s, %.0f ops/s, "
                 "p50 %.2f ms, p95 %.2f ms (%d runs, %d threads)\n",
                 report.translated_loops_per_sec, report.ops_per_sec,
                 report.p50_wall_ms, report.p95_wall_ms, report.runs,
                 report.threads);
    if (report.speedup_vs_baseline > 0.0) {
        std::fprintf(stderr,
                     "veal-bench: %.2fx vs baseline %s (%.1f loops/s)\n",
                     report.speedup_vs_baseline,
                     report.baseline_commit.c_str(),
                     report.baseline_loops_per_sec);
    }
    return 0;
}
