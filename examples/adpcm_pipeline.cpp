/**
 * End-to-end VM demo on a realistic workload: the rawcaudio-style ADPCM
 * application runs under the co-designed VM in all four translation
 * modes, showing per-loop outcomes, code-cache behaviour, and the
 * resulting whole-application speedups.
 *
 * Run: build/examples/adpcm_pipeline
 */

#include <cstdio>

#include "veal/veal.h"

using namespace veal;

int
main()
{
    // The application: the ADPCM coder's hot loop (compiled two ways)
    // plus a quantiser and a non-inlinable I/O helper loop.
    const CalleeLibrary library = standardCalleeLibrary();

    Loop plain_adpcm = makeAdpcmStepLoop("adpcm_coder", true);
    Loop tuned_adpcm = inlineCalls(plain_adpcm, library);

    Application app;
    app.name = "rawcaudio-demo";
    app.sites.push_back(LoopSite{.loop = tuned_adpcm,
                                 .fissioned = {},
                                 .invocations = 400,
                                 .iterations = 1024});
    app.sites.push_back(
        LoopSite{.loop = inlineCalls(makeQuantLoop("requant", true),
                                     library),
                 .fissioned = {},
                 .invocations = 120,
                 .iterations = 512});
    app.sites.push_back(LoopSite{.loop = makeMathCallLoop("write_audio"),
                                 .fissioned = {},
                                 .invocations = 30,
                                 .iterations = 128});
    app.acyclic_cycles = 200000;

    const LaConfig la = LaConfig::proposed();
    const CpuConfig cpu = CpuConfig::arm11();

    std::printf("ADPCM pipeline on the proposed LA (%s baseline)\n\n",
                cpu.name.c_str());

    for (const auto mode : {TranslationMode::kStatic,
                            TranslationMode::kFullyDynamic,
                            TranslationMode::kFullyDynamicHeight,
                            TranslationMode::kHybridStaticCcaPriority}) {
        VmOptions options;
        options.mode = mode;
        VirtualMachine vm(la, cpu, options);
        const AppRunResult run = vm.run(app);

        std::printf("--- mode: %s ---\n", toString(mode));
        for (const auto& site : run.sites) {
            if (site.accelerated) {
                std::printf(
                    "  %-14s accelerated: II=%d (MII %d), SC=%d, "
                    "%lld translations @ %.0f instr\n",
                    site.loop_name.c_str(), site.ii, site.mii,
                    site.stage_count,
                    static_cast<long long>(site.translations),
                    site.instructions_per_translation);
            } else {
                std::printf("  %-14s on CPU (%s)\n",
                            site.loop_name.c_str(),
                            toString(site.reject));
            }
        }
        std::printf("  cache: %lld hits / %lld misses;  translation "
                    "overhead: %lld cycles\n",
                    static_cast<long long>(run.cache_hits),
                    static_cast<long long>(run.cache_misses),
                    static_cast<long long>(run.translation_cycles));
        std::printf("  speedup over baseline: %.2fx\n\n", run.speedup);
    }

    // What would the plain (untransformed) binary achieve?
    Application plain = app;
    plain.sites[0].loop = plain_adpcm;
    VmOptions options;
    options.mode = TranslationMode::kHybridStaticCcaPriority;
    VirtualMachine vm(la, cpu, options);
    std::printf("Untransformed binary (clip() left as a call): "
                "speedup %.2fx -- the static compiler's inlining is what "
                "unlocks the accelerator.\n",
                vm.run(plain).speedup);
    return 0;
}
