/**
 * Quickstart: build the paper's Figure 5 loop with the LoopBuilder API,
 * translate it for the proposed loop accelerator, and inspect every
 * artifact the translator produces -- streams, CCA groups, MII, the
 * modulo reservation table, and the register assignment.
 *
 * Run: build/examples/quickstart
 */

#include <cstdio>

#include "veal/veal.h"

using namespace veal;

int
main()
{
    // ------------------------------------------------------------------
    // 1. Express the loop in the baseline ISA (paper Figure 5).
    // ------------------------------------------------------------------
    LoopBuilder b("figure5");
    b.setTripCount(1024);
    const OpId i = b.induction(1);
    const OpId x = b.load("in", b.add(i, b.constant(16)));

    // Recurrence A: shl -> and -> xor -> shr -> (next iteration) shl.
    const OpId shl = b.shl(LoopBuilder::carried(kNoOp, 0), b.constant(1));
    const OpId andv = b.andOp(shl, x);
    const OpId subv = b.sub(x, b.constant(5));
    const OpId xorv = b.xorOp(andv, subv);
    const OpId shr = b.shr(xorv, b.constant(1));
    b.loop().mutableOp(shl).inputs[0] = LoopBuilder::carried(shr, 1);

    // Recurrence B: a 3-cycle multiply feeding an or, carried back.
    const OpId mpy = b.mul(LoopBuilder::carried(kNoOp, 0), b.constant(3));
    const OpId orv = b.orOp(mpy, x);
    b.loop().mutableOp(mpy).inputs[0] = LoopBuilder::carried(orv, 1);

    const OpId result = b.add(orv, shr);
    b.store("out", b.add(i, b.constant(32)), result);
    b.loopBack(i, b.constant(1024));
    Loop loop = b.build();

    std::printf("Loop '%s': %d ops\n\n", loop.name().c_str(), loop.size());

    // ------------------------------------------------------------------
    // 2. Translate it for the proposed LA (fully dynamic, like the VM).
    // ------------------------------------------------------------------
    const LaConfig la = LaConfig::proposed();
    const TranslationResult tr =
        translateLoop(loop, la, TranslationMode::kFullyDynamic);
    if (!tr.ok) {
        std::printf("translation rejected: %s (%s)\n",
                    toString(tr.reject), tr.reject_detail.c_str());
        return 1;
    }

    std::printf("Memory streams: %zu load, %zu store\n",
                tr.analysis.load_streams.size(),
                tr.analysis.store_streams.size());
    for (const auto& stream : tr.analysis.load_streams) {
        std::printf("  load  %-8s offset %+3ld stride %+3ld\n",
                    stream.base.c_str(), static_cast<long>(stream.offset),
                    static_cast<long>(stream.stride));
    }
    for (const auto& stream : tr.analysis.store_streams) {
        std::printf("  store %-8s offset %+3ld stride %+3ld\n",
                    stream.base.c_str(), static_cast<long>(stream.offset),
                    static_cast<long>(stream.stride));
    }

    std::printf("\nCCA groups (ops collapsed into single CCA issues):\n");
    for (const auto& group : tr.mapping.groups) {
        std::printf("  {");
        for (const OpId member : group.members)
            std::printf(" %d:%s", member,
                        toString(loop.op(member).opcode));
        std::printf(" }\n");
    }

    std::printf("\nMII = %d, achieved II = %d, stage count = %d\n",
                tr.mii, tr.schedule.ii, tr.schedule.stage_count);
    std::printf("Registers: %d integer, %d fp\n",
                tr.registers.int_regs_used, tr.registers.fp_regs_used);
    std::printf("Metered translation cost: %.0f instructions\n\n",
                tr.meter.totalInstructions());

    // ------------------------------------------------------------------
    // 3. Print the modulo reservation table (paper Figure 5, right).
    // ------------------------------------------------------------------
    std::printf("%s\n",
                renderReservationTable(*tr.graph, loop, tr.schedule)
                    .c_str());

    // ------------------------------------------------------------------
    // 4. Compare against the baseline CPU.
    // ------------------------------------------------------------------
    const auto cpu =
        simulateLoopOnCpu(loop, CpuConfig::arm11(), loop.tripCount());
    const auto accel = acceleratorLoopCost(tr.schedule, *tr.graph,
                                           tr.analysis, tr.registers, la,
                                           loop.tripCount());
    std::printf("Baseline CPU: %lld cycles (%.1f per iteration)\n",
                static_cast<long long>(cpu.total_cycles),
                cpu.cycles_per_iteration);
    std::printf("Accelerator:  %lld cycles (II %d per iteration + "
                "setup/drain)\n",
                static_cast<long long>(accel.total()), tr.schedule.ii);
    std::printf("Loop speedup: %.2fx\n",
                static_cast<double>(cpu.total_cycles) /
                    static_cast<double>(accel.total()));
    return 0;
}
