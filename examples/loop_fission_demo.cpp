/**
 * Static compiler transforms in action: a 20-point FP stencil (the
 * 172.mgrid shape) exceeds the LA's 16 load streams, so the static
 * compiler fissions it into a pipeline of loops communicating through
 * memory -- exactly the proactive transformation paper Section 3.1
 * recommends.  The demo prints the pieces, their stream budgets, and the
 * before/after accelerator outcome.
 *
 * Run: build/examples/loop_fission_demo
 */

#include <cstdio>

#include "veal/veal.h"

using namespace veal;

int
main()
{
    Loop stencil = makeStencilNLoop("mgrid_resid", 20);
    const LaConfig la = LaConfig::proposed();

    const auto before = analyzeLoop(stencil);
    std::printf("Original loop: %d ops, %zu load streams, %zu store "
                "streams (LA supports %d/%d)\n",
                stencil.size(), before.load_streams.size(),
                before.store_streams.size(), la.num_load_streams,
                la.num_store_streams);

    const auto rejected =
        translateLoop(stencil, la, TranslationMode::kFullyDynamic);
    std::printf("Dynamic translation of the whole loop: %s (%s)\n\n",
                rejected.ok ? "accepted" : "rejected",
                toString(rejected.reject));

    FissionBudget budget;
    budget.max_load_streams = la.num_load_streams;
    budget.max_store_streams = la.num_store_streams;
    budget.max_int_ops = la.num_int_units * la.max_ii;
    budget.max_fp_ops = la.num_fp_units * (la.max_ii - 4);
    const auto fission = fissionLoop(stencil, budget);
    if (!fission.has_value()) {
        std::printf("fission failed\n");
        return 1;
    }
    std::printf("Static fission: %zu loops, %d communication streams\n\n",
                fission->loops.size(), fission->comm_streams);

    double total_cpu = 0.0;
    double total_la = 0.0;
    for (const auto& piece : fission->loops) {
        const auto analysis = analyzeLoop(piece);
        const auto tr =
            translateLoop(piece, la, TranslationMode::kFullyDynamic);
        std::printf("  %-18s %2d ops, %2zu/%zu streams -> ",
                    piece.name().c_str(), piece.size(),
                    analysis.load_streams.size(),
                    analysis.store_streams.size());
        if (!tr.ok) {
            std::printf("rejected (%s)\n", toString(tr.reject));
            continue;
        }
        const auto cpu = simulateLoopOnCpu(piece, CpuConfig::arm11(),
                                           piece.tripCount());
        const auto accel =
            acceleratorLoopCost(tr.schedule, *tr.graph, tr.analysis,
                                tr.registers, la, piece.tripCount());
        total_cpu += static_cast<double>(cpu.total_cycles);
        total_la += static_cast<double>(accel.total());
        std::printf("II=%d SC=%d: %.2fx loop speedup\n", tr.schedule.ii,
                    tr.schedule.stage_count,
                    static_cast<double>(cpu.total_cycles) /
                        static_cast<double>(accel.total()));
    }

    const auto whole_cpu = simulateLoopOnCpu(stencil, CpuConfig::arm11(),
                                             stencil.tripCount());
    std::printf("\nOriginal loop on the CPU:   %.0f cycles\n",
                static_cast<double>(whole_cpu.total_cycles));
    std::printf("Fissioned pipeline on LA:   %.0f cycles  "
                "(%.2fx speedup, despite the extra memory traffic)\n",
                total_la,
                static_cast<double>(whole_cpu.total_cycles) / total_la);

    // The IR is inspectable: dump the first piece as GraphViz.
    std::printf("\nGraphViz of %s (pipe into `dot -Tpng`):\n%s",
                fission->loops[0].name().c_str(),
                fission->loops[0].toDot().c_str());
    return 0;
}
