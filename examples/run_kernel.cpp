/**
 * File-driven translation: read a loop kernel in the textual DSL (see
 * veal/ir/loop_parser.h), translate it for the proposed LA, and report
 * everything the VM would produce.  This is how you experiment with new
 * kernels without writing C++.
 *
 * Run: build/examples/run_kernel examples/kernels/complex_mult.loop
 *      build/examples/run_kernel --mode=height my_kernel.loop
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "veal/veal.h"

using namespace veal;

int
main(int argc, char** argv)
{
    TranslationMode mode = TranslationMode::kFullyDynamic;
    const char* path = nullptr;
    for (int arg = 1; arg < argc; ++arg) {
        if (std::strcmp(argv[arg], "--mode=height") == 0)
            mode = TranslationMode::kFullyDynamicHeight;
        else if (std::strcmp(argv[arg], "--mode=hybrid") == 0)
            mode = TranslationMode::kHybridStaticCcaPriority;
        else if (std::strcmp(argv[arg], "--mode=swing") == 0)
            mode = TranslationMode::kFullyDynamic;
        else
            path = argv[arg];
    }
    if (path == nullptr) {
        std::fprintf(stderr,
                     "usage: run_kernel [--mode=swing|height|hybrid] "
                     "<kernel.loop>\n");
        return 2;
    }

    std::ifstream file(path);
    if (!file) {
        std::fprintf(stderr, "cannot open %s\n", path);
        return 2;
    }
    std::ostringstream text;
    text << file.rdbuf();

    const auto parsed = parseLoop(text.str());
    if (std::holds_alternative<ParseError>(parsed)) {
        const auto& error = std::get<ParseError>(parsed);
        std::fprintf(stderr, "%s:%d: %s\n", path, error.line,
                     error.message.c_str());
        return 1;
    }
    const Loop& loop = std::get<Loop>(parsed);
    std::printf("parsed '%s': %d ops, trip count %lld\n",
                loop.name().c_str(), loop.size(),
                static_cast<long long>(loop.tripCount()));

    const LaConfig la = LaConfig::proposed();
    StaticAnnotations annotations;
    const StaticAnnotations* annotations_ptr = nullptr;
    if (mode == TranslationMode::kHybridStaticCcaPriority) {
        annotations = precompileAnnotations(loop, la);
        annotations_ptr = &annotations;
    }
    const auto tr = translateLoop(loop, la, mode, annotations_ptr);
    if (!tr.ok) {
        std::printf("translation rejected: %s (%s) -- the loop runs on "
                    "the baseline CPU\n",
                    toString(tr.reject), tr.reject_detail.c_str());
        return 0;
    }

    std::printf("streams: %zu load / %zu store; CCA groups: %zu\n",
                tr.analysis.load_streams.size(),
                tr.analysis.store_streams.size(),
                tr.mapping.groups.size());
    std::printf("MII %d -> II %d, %d stages; registers %d int / %d fp\n",
                tr.mii, tr.schedule.ii, tr.schedule.stage_count,
                tr.registers.int_regs_used, tr.registers.fp_regs_used);
    std::printf("translation cost: %.0f instructions (%s)\n\n",
                tr.meter.totalInstructions(), toString(mode));
    std::printf("%s\n",
                renderReservationTable(*tr.graph, loop, tr.schedule)
                    .c_str());

    const auto image = ControlImage::encode(loop, tr);
    std::printf("control image: %zu bytes\n", image.byteSize());

    const auto cpu =
        simulateLoopOnCpu(loop, CpuConfig::arm11(), loop.tripCount());
    const auto accel = acceleratorLoopCost(tr.schedule, *tr.graph,
                                           tr.analysis, tr.registers, la,
                                           loop.tripCount());
    std::printf("speedup over the 1-issue baseline: %.2fx "
                "(%lld -> %lld cycles)\n",
                static_cast<double>(cpu.total_cycles) /
                    static_cast<double>(accel.total()),
                static_cast<long long>(cpu.total_cycles),
                static_cast<long long>(accel.total()));
    return 0;
}
