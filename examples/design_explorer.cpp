/**
 * Design-space exploration with the public API: evaluate custom loop
 * accelerator configurations against the benchmark suite, reporting die
 * area and mean speedup -- the workflow behind the paper's Section 3.
 *
 * Run: build/examples/design_explorer [int_units fp_units load_streams]
 */

#include <cstdio>
#include <cstdlib>

#include "veal/support/table.h"
#include "veal/veal.h"

using namespace veal;

namespace {

struct Evaluation {
    double area_mm2 = 0.0;
    double mean_speedup = 0.0;
    double speedup_per_mm2 = 0.0;
};

Evaluation
evaluate(const LaConfig& la, const std::vector<Benchmark>& suite)
{
    Evaluation eval;
    eval.area_mm2 = AreaModel().totalArea(la);
    VmOptions options;
    options.mode = TranslationMode::kHybridStaticCcaPriority;
    double sum = 0.0;
    for (const auto& benchmark : suite) {
        VirtualMachine vm(la, CpuConfig::arm11(), options);
        sum += vm.run(benchmark.transformed).speedup;
    }
    eval.mean_speedup = sum / static_cast<double>(suite.size());
    eval.speedup_per_mm2 = (eval.mean_speedup - 1.0) / eval.area_mm2;
    return eval;
}

}  // namespace

int
main(int argc, char** argv)
{
    const auto suite = mediaFpSuite();

    if (argc == 4) {
        // Evaluate one user-specified design point.
        LaConfig la = LaConfig::proposed();
        la.name = "custom";
        la.num_int_units = std::atoi(argv[1]);
        la.num_fp_units = std::atoi(argv[2]);
        la.num_load_streams = std::atoi(argv[3]);
        const Evaluation eval = evaluate(la, suite);
        std::printf("custom LA (%d int, %d fp, %d load streams): "
                    "%.2f mm^2, mean speedup %.2fx, %.3f speedup/mm^2\n",
                    la.num_int_units, la.num_fp_units,
                    la.num_load_streams, eval.area_mm2,
                    eval.mean_speedup, eval.speedup_per_mm2);
        return 0;
    }

    std::printf("Loop accelerator design exploration "
                "(hybrid static/dynamic translation)\n\n");
    TextTable table({"design", "area mm^2", "mean speedup",
                     "(speedup-1)/mm^2"});

    auto add = [&](const char* name, const LaConfig& la) {
        const Evaluation eval = evaluate(la, suite);
        table.addRow({name, TextTable::formatDouble(eval.area_mm2, 2),
                      TextTable::formatDouble(eval.mean_speedup, 2),
                      TextTable::formatDouble(eval.speedup_per_mm2, 3)});
    };

    add("proposed (paper 3.2)", LaConfig::proposed());

    LaConfig no_cca = LaConfig::proposed();
    no_cca.name = "no-cca";
    no_cca.num_cca_units = 0;
    no_cca.cca.reset();
    no_cca.num_int_units = 4;  // Spend the CCA area on 2 more ALUs.
    add("no CCA, 4 int units", no_cca);

    LaConfig single_fpu = LaConfig::proposed();
    single_fpu.name = "1-fpu";
    single_fpu.num_fp_units = 1;
    add("single FPU (cheap)", single_fpu);

    LaConfig narrow = LaConfig::proposed();
    narrow.name = "narrow";
    narrow.num_load_streams = 4;
    narrow.num_store_streams = 2;
    add("4 load / 2 store streams", narrow);

    LaConfig deep = LaConfig::proposed();
    deep.name = "deep";
    deep.max_ii = 32;
    add("max II 32 (bigger control)", deep);

    LaConfig big_regs = LaConfig::proposed();
    big_regs.name = "big-regs";
    big_regs.num_int_registers = 32;
    big_regs.num_fp_registers = 32;
    add("32 + 32 registers", big_regs);

    std::printf("%s\n", table.render().c_str());
    std::printf("Try a custom point: design_explorer <int_units> "
                "<fp_units> <load_streams>\n");
    return 0;
}
