#include "veal/support/thread_pool.h"

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace veal {
namespace {

TEST(ThreadPoolTest, DefaultThreadsIsAtLeastOne)
{
    EXPECT_GE(ThreadPool::defaultThreads(), 1);
    ThreadPool pool;  // Default-constructed picks defaultThreads().
    EXPECT_GE(pool.numThreads(), 1);
}

TEST(ThreadPoolTest, EmptyBatchReturnsWithoutRunningAnything)
{
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    parallelFor(pool, 0, [&](int) { ++calls; });
    parallelFor(pool, -3, [&](int) { ++calls; });
    EXPECT_EQ(calls.load(), 0);

    const std::vector<int> empty;
    const auto results =
        parallelMap(pool, empty, [](int value) { return value; });
    EXPECT_TRUE(results.empty());
}

TEST(ThreadPoolTest, MoreTasksThanThreadsRunsEveryIndexExactlyOnce)
{
    ThreadPool pool(2);
    constexpr int kTasks = 250;
    std::vector<std::atomic<int>> counts(kTasks);
    parallelFor(pool, kTasks, [&](int i) {
        ++counts[static_cast<std::size_t>(i)];
    });
    for (int i = 0; i < kTasks; ++i)
        EXPECT_EQ(counts[static_cast<std::size_t>(i)].load(), 1)
            << "index " << i;
}

TEST(ThreadPoolTest, MoreThreadsThanTasksStillCompletes)
{
    ThreadPool pool(8);
    std::atomic<int> calls{0};
    parallelFor(pool, 3, [&](int) { ++calls; });
    EXPECT_EQ(calls.load(), 3);
}

TEST(ThreadPoolTest, ParallelMapPreservesInputOrder)
{
    ThreadPool pool(8);
    std::vector<int> items;
    for (int i = 0; i < 100; ++i)
        items.push_back(i);
    const auto squares =
        parallelMap(pool, items, [](int value) { return value * value; });
    ASSERT_EQ(squares.size(), items.size());
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(squares[static_cast<std::size_t>(i)], i * i);
}

TEST(ThreadPoolTest, ParallelMapPassesIndexWhenRequested)
{
    ThreadPool pool(4);
    const std::vector<std::string> items{"a", "b", "c"};
    const auto tagged = parallelMap(
        pool, items, [](const std::string& value, int index) {
            return value + std::to_string(index);
        });
    EXPECT_EQ(tagged, (std::vector<std::string>{"a0", "b1", "c2"}));
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller)
{
    ThreadPool pool(4);
    EXPECT_THROW(parallelFor(pool, 50,
                             [](int i) {
                                 if (i == 37)
                                     throw std::runtime_error("cell 37");
                             }),
                 std::runtime_error);
}

TEST(ThreadPoolTest, LowestFailingIndexWinsDeterministically)
{
    ThreadPool pool(8);
    for (int attempt = 0; attempt < 10; ++attempt) {
        try {
            parallelFor(pool, 64, [](int i) {
                if (i == 13 || i == 57)
                    throw std::runtime_error("cell " + std::to_string(i));
            });
            FAIL() << "expected an exception";
        } catch (const std::runtime_error& error) {
            EXPECT_STREQ(error.what(), "cell 13");
        }
    }
}

TEST(ThreadPoolTest, BatchCompletesDespiteFailures)
{
    ThreadPool pool(4);
    constexpr int kTasks = 40;
    std::vector<std::atomic<int>> counts(kTasks);
    try {
        parallelFor(pool, kTasks, [&](int i) {
            ++counts[static_cast<std::size_t>(i)];
            if (i % 7 == 0)
                throw std::runtime_error("boom");
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error&) {
    }
    // Every index still ran: one failure must not starve later cells.
    for (int i = 0; i < kTasks; ++i)
        EXPECT_EQ(counts[static_cast<std::size_t>(i)].load(), 1);
}

TEST(ThreadPoolTest, NestedSubmissionIsRejected)
{
    ThreadPool pool(2);
    EXPECT_THROW(parallelFor(pool, 4,
                             [&](int) {
                                 parallelFor(pool, 2, [](int) {});
                             }),
                 std::logic_error);
}

TEST(ThreadPoolTest, NestedSubmissionOnSecondPoolIsAlsoRejected)
{
    // The restriction is per-thread, not per-pool: a worker of pool A
    // submitting to pool B could still deadlock through a cycle.
    ThreadPool outer(2);
    ThreadPool inner(2);
    EXPECT_THROW(parallelFor(outer, 4,
                             [&](int) {
                                 parallelFor(inner, 2, [](int) {});
                             }),
                 std::logic_error);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossBatches)
{
    ThreadPool pool(3);
    for (int round = 0; round < 20; ++round) {
        std::atomic<int> sum{0};
        parallelFor(pool, 10, [&](int i) { sum += i; });
        EXPECT_EQ(sum.load(), 45);
    }
}

TEST(ThreadPoolTest, CallerThreadIsNotAWorker)
{
    EXPECT_FALSE(ThreadPool::onWorkerThread());
    ThreadPool pool(2);
    std::atomic<int> on_worker{0};
    parallelFor(pool, 8, [&](int) {
        if (ThreadPool::onWorkerThread())
            ++on_worker;
    });
    EXPECT_EQ(on_worker.load(), 8);
    EXPECT_FALSE(ThreadPool::onWorkerThread());
}

}  // namespace
}  // namespace veal
