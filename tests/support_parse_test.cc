#include "veal/support/parse.h"

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

namespace veal {
namespace {

TEST(ParseU64Strict, ParsesOrdinaryValues)
{
    EXPECT_EQ(parseU64Strict("0"), 0ull);
    EXPECT_EQ(parseU64Strict("1"), 1ull);
    EXPECT_EQ(parseU64Strict("42"), 42ull);
    EXPECT_EQ(parseU64Strict("123456789"), 123456789ull);
}

TEST(ParseU64Strict, AcceptsLeadingZeros)
{
    EXPECT_EQ(parseU64Strict("007"), 7ull);
    EXPECT_EQ(parseU64Strict("000"), 0ull);
    // 20 digits of padding around a small value is still in range.
    EXPECT_EQ(parseU64Strict("00000000000000000042"), 42ull);
}

TEST(ParseU64Strict, TwentyDigitValuesInRangeParse)
{
    // The regression this helper exists for: both of these are valid
    // uint64 values with 20 digits, and the old length-capped parsers
    // rejected them.
    EXPECT_EQ(parseU64Strict("10000000000000000000"),
              10000000000000000000ull);
    EXPECT_EQ(parseU64Strict("18446744073709551615"),
              18446744073709551615ull);  // UINT64_MAX.
}

TEST(ParseU64Strict, OverflowIsExactNotSaturated)
{
    // UINT64_MAX + 1 and friends: one past the boundary must fail, not
    // wrap or saturate.
    EXPECT_FALSE(parseU64Strict("18446744073709551616").has_value());
    EXPECT_FALSE(parseU64Strict("18446744073709551620").has_value());
    EXPECT_FALSE(parseU64Strict("99999999999999999999").has_value());
    EXPECT_FALSE(parseU64Strict("184467440737095516150").has_value());
}

TEST(ParseU64Strict, RejectsNonDigitTokens)
{
    EXPECT_FALSE(parseU64Strict("").has_value());
    EXPECT_FALSE(parseU64Strict("-1").has_value());
    EXPECT_FALSE(parseU64Strict("+1").has_value());
    EXPECT_FALSE(parseU64Strict(" 1").has_value());
    EXPECT_FALSE(parseU64Strict("1 ").has_value());
    EXPECT_FALSE(parseU64Strict("0x10").has_value());
    EXPECT_FALSE(parseU64Strict("12e3").has_value());
    EXPECT_FALSE(parseU64Strict("12.3").has_value());
    EXPECT_FALSE(parseU64Strict("1_000").has_value());
}

TEST(ParseU64Strict, EveryPowerOfTenBoundaryRoundTrips)
{
    // Walk the full digit-length range; string round-trip at each
    // boundary proves no length-based cap survives anywhere.
    std::uint64_t value = 1;
    for (int digits = 1; digits <= 20; ++digits) {
        const std::string token = std::to_string(value);
        ASSERT_EQ(static_cast<int>(token.size()), digits);
        EXPECT_EQ(parseU64Strict(token), value) << token;
        if (digits < 20) {
            const std::uint64_t next = value * 10;
            EXPECT_EQ(parseU64Strict(std::to_string(next - 1)), next - 1);
            value = next;
        }
    }
}

}  // namespace
}  // namespace veal
