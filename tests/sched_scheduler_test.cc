#include "veal/sched/scheduler.h"

#include <gtest/gtest.h>

#include "veal/ir/loop_builder.h"
#include "veal/sched/mii.h"

namespace veal {
namespace {

struct Problem {
    Loop loop;
    LoopAnalysis analysis;
    CcaMapping mapping;
    SchedGraph graph;
    int mii;

    Problem(Loop l, const LaConfig& config)
        : loop(std::move(l)), analysis(analyzeLoop(loop)),
          mapping(emptyCcaMapping(loop)),
          graph(loop, analysis, mapping, config),
          mii(std::max(resMii(graph, config), recMii(graph)))
    {}
};

Loop
makeBalancedLoop(int int_ops)
{
    LoopBuilder b("balanced");
    const OpId iv = b.induction(1);
    const OpId x = b.load("in", iv);
    OpId v = x;
    for (int i = 0; i < int_ops; ++i)
        v = b.xorOp(v, x);
    b.store("out", iv, v);
    b.loopBack(iv, b.constant(64));
    return b.build();
}

TEST(SchedulerTest, SchedulesAtMiiWhenEasy)
{
    const LaConfig la = LaConfig::proposed();
    Problem problem(makeBalancedLoop(4), la);
    const auto order = computeSwingOrder(problem.graph, problem.mii);
    const auto schedule =
        scheduleLoop(problem.graph, la, order, problem.mii);
    ASSERT_TRUE(schedule.has_value());
    EXPECT_EQ(schedule->ii, problem.mii);
    EXPECT_FALSE(
        validateSchedule(problem.graph, la, *schedule).has_value());
}

TEST(SchedulerTest, ChainScheduleRespectsLatencies)
{
    LoopBuilder b("chain");
    const OpId iv = b.induction(1);
    const OpId x = b.load("in", iv);
    const OpId m = b.mul(x, b.constant(3));   // 3 cycles
    const OpId a = b.add(m, x);
    b.store("out", iv, a);
    b.loopBack(iv, b.constant(64));
    const LaConfig la = LaConfig::proposed();
    Problem problem(b.build(), la);
    const auto order = computeSwingOrder(problem.graph, problem.mii);
    const auto schedule =
        scheduleLoop(problem.graph, la, order, problem.mii);
    ASSERT_TRUE(schedule.has_value());
    const int mul_unit = problem.graph.unitOf(m);
    const int add_unit = problem.graph.unitOf(a);
    EXPECT_GE(schedule->time[static_cast<std::size_t>(add_unit)],
              schedule->time[static_cast<std::size_t>(mul_unit)] + 3);
}

TEST(SchedulerTest, FailsWhenMaxIiTooSmall)
{
    LaConfig la = LaConfig::proposed();
    la.max_ii = 2;
    Problem problem(makeBalancedLoop(10), la);  // Needs II >= 5.
    const auto order = computeSwingOrder(problem.graph, problem.mii);
    EXPECT_FALSE(
        scheduleLoop(problem.graph, la, order, problem.mii).has_value());
}

TEST(SchedulerTest, IncrementsIiUnderResourcePressure)
{
    // Force contention: lots of ops, II floor from memory, few units.
    LaConfig la = LaConfig::proposed();
    Problem problem(makeBalancedLoop(12), la);
    const auto order = computeSwingOrder(problem.graph, problem.mii);
    const auto schedule =
        scheduleLoop(problem.graph, la, order, problem.mii);
    ASSERT_TRUE(schedule.has_value());
    EXPECT_GE(schedule->ii, problem.mii);
    EXPECT_LE(schedule->ii, la.max_ii);
    EXPECT_FALSE(
        validateSchedule(problem.graph, la, *schedule).has_value());
}

TEST(SchedulerTest, TimesAreNormalised)
{
    const LaConfig la = LaConfig::proposed();
    Problem problem(makeBalancedLoop(6), la);
    const auto order = computeSwingOrder(problem.graph, problem.mii);
    const auto schedule =
        scheduleLoop(problem.graph, la, order, problem.mii);
    ASSERT_TRUE(schedule.has_value());
    int min_time = 1 << 30;
    for (const int t : schedule->time)
        min_time = std::min(min_time, t);
    EXPECT_EQ(min_time, 0);
}

TEST(SchedulerTest, StageCountAndLengthConsistent)
{
    const LaConfig la = LaConfig::proposed();
    Problem problem(makeBalancedLoop(9), la);
    const auto order = computeSwingOrder(problem.graph, problem.mii);
    const auto schedule =
        scheduleLoop(problem.graph, la, order, problem.mii);
    ASSERT_TRUE(schedule.has_value());
    int expect_length = 0;
    int max_stage = 0;
    for (const auto& unit : problem.graph.units()) {
        const auto u = static_cast<std::size_t>(unit.id);
        expect_length =
            std::max(expect_length, schedule->time[u] + unit.latency);
        max_stage = std::max(max_stage, schedule->time[u] / schedule->ii);
    }
    EXPECT_EQ(schedule->length, expect_length);
    EXPECT_EQ(schedule->stage_count, max_stage + 1);
}

TEST(ValidatorTest, CatchesDependenceViolation)
{
    const LaConfig la = LaConfig::proposed();
    Problem problem(makeBalancedLoop(4), la);
    const auto order = computeSwingOrder(problem.graph, problem.mii);
    auto schedule = scheduleLoop(problem.graph, la, order, problem.mii);
    ASSERT_TRUE(schedule.has_value());
    // Corrupt: move the store before its producer.
    for (const auto& unit : problem.graph.units()) {
        if (problem.loop.op(unit.ops[0]).opcode == Opcode::kStore)
            schedule->time[static_cast<std::size_t>(unit.id)] = 0;
    }
    // Re-normalise length/stage fields so only the dependence is broken.
    schedule->length = 0;
    int max_stage = 0;
    for (const auto& unit : problem.graph.units()) {
        const auto u = static_cast<std::size_t>(unit.id);
        schedule->length = std::max(schedule->length,
                                    schedule->time[u] + unit.latency);
        max_stage = std::max(max_stage,
                             schedule->time[u] / schedule->ii);
    }
    schedule->stage_count = max_stage + 1;
    const auto error = validateSchedule(problem.graph, la, *schedule);
    ASSERT_TRUE(error.has_value());
    EXPECT_EQ(error->code, ScheduleViolationCode::kDependence);
}

TEST(ValidatorTest, CatchesResourceConflict)
{
    const LaConfig la = LaConfig::proposed();
    Problem problem(makeBalancedLoop(12), la);
    const auto order = computeSwingOrder(problem.graph, problem.mii);
    auto schedule = scheduleLoop(problem.graph, la, order, problem.mii);
    ASSERT_TRUE(schedule.has_value());
    // Find two int units that already share a modulo slot (on different
    // instances, since the schedule is valid) and collapse the instances.
    // Times are untouched, so no dependence breaks: the only violation
    // is the double-booked slot.
    std::vector<std::size_t> int_units;
    for (const auto& unit : problem.graph.units()) {
        if (unit.fu == FuClass::kInt)
            int_units.push_back(static_cast<std::size_t>(unit.id));
    }
    bool corrupted = false;
    for (std::size_t i = 0; i < int_units.size() && !corrupted; ++i) {
        for (std::size_t j = i + 1; j < int_units.size() && !corrupted;
             ++j) {
            if (schedule->time[int_units[i]] % schedule->ii !=
                schedule->time[int_units[j]] % schedule->ii)
                continue;
            schedule->fu_instance[int_units[j]] =
                schedule->fu_instance[int_units[i]];
            corrupted = true;
        }
    }
    ASSERT_TRUE(corrupted) << "no two int units share a modulo slot";
    const auto error = validateSchedule(problem.graph, la, *schedule);
    ASSERT_TRUE(error.has_value());
    EXPECT_EQ(error->code, ScheduleViolationCode::kResourceConflict);
}

TEST(ValidatorTest, CatchesExcessiveIi)
{
    const LaConfig la = LaConfig::proposed();
    Problem problem(makeBalancedLoop(4), la);
    const auto order = computeSwingOrder(problem.graph, problem.mii);
    auto schedule = scheduleLoop(problem.graph, la, order, problem.mii);
    ASSERT_TRUE(schedule.has_value());
    schedule->ii = la.max_ii + 1;
    const auto error = validateSchedule(problem.graph, la, *schedule);
    ASSERT_TRUE(error.has_value());
    EXPECT_EQ(error->code, ScheduleViolationCode::kBadIi);
}

TEST(ValidatorTest, CatchesRegisterCapacityViaLiveRanges)
{
    // A structurally valid schedule whose operand mapping cannot fit a
    // one-register integer file: the extended validator must reject it
    // while the structural overload stays silent.  Loop-carried
    // accumulators are never interconnect-bypassed (distance >= 1), so
    // three of them pin three integer registers.
    LoopBuilder b("accs");
    const OpId iv = b.induction(1);
    const OpId x = b.load("in", iv);
    for (int i = 0; i < 3; ++i) {
        const OpId acc = b.add(x, LoopBuilder::carried(kNoOp, 0));
        b.loop().mutableOp(acc).inputs[1] = LoopBuilder::carried(acc, 1);
        b.markLiveOut(acc);
    }
    b.loopBack(iv, b.constant(64));

    LaConfig la = LaConfig::proposed();
    Problem problem(b.build(), la);
    const auto order = computeSwingOrder(problem.graph, problem.mii);
    const auto schedule =
        scheduleLoop(problem.graph, la, order, problem.mii);
    ASSERT_TRUE(schedule.has_value());
    ASSERT_FALSE(validateSchedule(problem.graph, la, *schedule,
                                  problem.loop, problem.analysis)
                     .has_value());

    LaConfig cramped = la;
    cramped.num_int_registers = 1;
    // Structural invariants do not see register files...
    EXPECT_FALSE(validateSchedule(problem.graph, cramped, *schedule)
                     .has_value());
    // ...the live-range-aware overload does.
    const auto error = validateSchedule(problem.graph, cramped, *schedule,
                                        problem.loop, problem.analysis);
    ASSERT_TRUE(error.has_value());
    EXPECT_EQ(error->code, ScheduleViolationCode::kRegisterCapacity);
}

TEST(SchedulerTest, RendersReservationTable)
{
    const LaConfig la = LaConfig::proposed();
    Problem problem(makeBalancedLoop(4), la);
    const auto order = computeSwingOrder(problem.graph, problem.mii);
    const auto schedule =
        scheduleLoop(problem.graph, la, order, problem.mii);
    ASSERT_TRUE(schedule.has_value());
    const std::string table =
        renderReservationTable(problem.graph, problem.loop, *schedule);
    EXPECT_NE(table.find("II = "), std::string::npos);
    EXPECT_NE(table.find("int"), std::string::npos);
}

}  // namespace
}  // namespace veal
