#include "veal/ir/loop.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "veal/ir/loop_builder.h"

namespace veal {
namespace {

Loop
makeSimpleLoop()
{
    LoopBuilder b("simple");
    const OpId iv = b.induction(1);
    const OpId x = b.load("in", iv);
    const OpId c = b.constant(3);
    const OpId y = b.mul(x, c);
    b.store("out", iv, y);
    b.loopBack(iv, b.constant(100));
    return b.build();
}

TEST(LoopBuilderTest, BuildsVerifiableLoop)
{
    Loop loop = makeSimpleLoop();
    EXPECT_FALSE(loop.verify().has_value());
    // step const + iv + ld + c + mul + st + bound const + cmp + br.
    EXPECT_EQ(loop.size(), 9);
}

TEST(LoopBuilderTest, InductionHasSelfEdgeAtDistanceOne)
{
    LoopBuilder b("iv");
    const OpId iv = b.induction(4);
    b.loopBack(iv, b.constant(10));
    Loop loop = b.build();
    const Operation& op = loop.op(iv);
    EXPECT_TRUE(op.is_induction);
    ASSERT_EQ(op.inputs.size(), 2u);
    EXPECT_EQ(op.inputs[0].producer, iv);
    EXPECT_EQ(op.inputs[0].distance, 1);
    // The step constant is 4.
    EXPECT_EQ(loop.op(op.inputs[1].producer).immediate, 4);
}

TEST(LoopBuilderTest, CallMarksFeature)
{
    LoopBuilder b("call");
    const OpId iv = b.induction(1);
    const OpId x = b.load("in", iv);
    b.call("sin", {Operand{x, 0}});
    b.loopBack(iv, b.constant(10));
    Loop loop = b.build();
    EXPECT_EQ(loop.feature(), LoopFeature::kHasSubroutineCall);
}

TEST(LoopTest, AllEdgesIncludesDataAndMemoryEdges)
{
    LoopBuilder b("edges");
    const OpId iv = b.induction(1);
    const OpId x = b.load("a", iv);
    const OpId st = b.store("a", iv, x);
    b.memoryEdge(st, x, 1);  // Store feeds next iteration's load.
    b.loopBack(iv, b.constant(10));
    Loop loop = b.build();

    const auto edges = loop.allEdges();
    const bool has_memory_edge = std::any_of(
        edges.begin(), edges.end(), [&](const DepEdge& edge) {
            return edge.is_memory && edge.from == st && edge.to == x &&
                   edge.distance == 1;
        });
    EXPECT_TRUE(has_memory_edge);
}

TEST(LoopTest, UseListsInvertOperands)
{
    Loop loop = makeSimpleLoop();
    const auto uses = loop.useLists();
    // Find the load; its value must be used by the multiply.
    for (const auto& op : loop.operations()) {
        if (op.opcode != Opcode::kLoad)
            continue;
        bool used_by_mul = false;
        for (const auto& use : uses[static_cast<std::size_t>(op.id)])
            used_by_mul |= loop.op(use.producer).opcode == Opcode::kMul;
        EXPECT_TRUE(used_by_mul);
    }
}

TEST(LoopTest, TopologicalOrderRespectsIntraIterationEdges)
{
    Loop loop = makeSimpleLoop();
    const auto order = loop.topologicalOrder();
    ASSERT_EQ(static_cast<int>(order.size()), loop.size());
    std::vector<int> position(order.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        position[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
    for (const auto& edge : loop.allEdges()) {
        if (edge.distance != 0)
            continue;
        EXPECT_LT(position[static_cast<std::size_t>(edge.from)],
                  position[static_cast<std::size_t>(edge.to)]);
    }
}

TEST(LoopVerifyTest, DetectsUndefinedProducer)
{
    Loop loop("bad");
    Operation op;
    op.opcode = Opcode::kAdd;
    op.inputs = {Operand{5, 0}, Operand{6, 0}};
    loop.addOperation(std::move(op));
    EXPECT_TRUE(loop.verify().has_value());
}

TEST(LoopVerifyTest, DetectsZeroDistanceCycle)
{
    Loop loop("cycle");
    Operation a;
    a.opcode = Opcode::kAdd;
    loop.addOperation(std::move(a));
    Operation b;
    b.opcode = Opcode::kAdd;
    loop.addOperation(std::move(b));
    loop.mutableOp(0).inputs = {Operand{1, 0}};
    loop.mutableOp(1).inputs = {Operand{0, 0}};
    const auto error = loop.verify();
    ASSERT_TRUE(error.has_value());
    EXPECT_NE(error->find("cycle"), std::string::npos);
}

TEST(LoopVerifyTest, AcceptsCarriedCycle)
{
    Loop loop("carried");
    Operation a;
    a.opcode = Opcode::kAdd;
    loop.addOperation(std::move(a));
    Operation b;
    b.opcode = Opcode::kAdd;
    loop.addOperation(std::move(b));
    loop.mutableOp(0).inputs = {Operand{1, 1}};  // Across iterations: OK.
    loop.mutableOp(1).inputs = {Operand{0, 0}};
    EXPECT_FALSE(loop.verify().has_value());
}

TEST(LoopVerifyTest, DetectsMalformedStore)
{
    Loop loop("badstore");
    Operation store;
    store.opcode = Opcode::kStore;
    loop.addOperation(std::move(store));
    const auto error = loop.verify();
    ASSERT_TRUE(error.has_value());
    EXPECT_NE(error->find("store"), std::string::npos);
}

TEST(LoopVerifyTest, DetectsValueSourceWithInputs)
{
    Loop loop("badconst");
    Operation c;
    c.opcode = Opcode::kConst;
    loop.addOperation(std::move(c));
    Operation c2;
    c2.opcode = Opcode::kConst;
    loop.addOperation(std::move(c2));
    loop.mutableOp(1).inputs = {Operand{0, 0}};
    EXPECT_TRUE(loop.verify().has_value());
}

TEST(LoopVerifyTest, DetectsDoubleBranch)
{
    LoopBuilder b("twobr");
    const OpId iv = b.induction(1);
    b.loopBack(iv, b.constant(5));
    Operation extra;
    extra.opcode = Opcode::kBranch;
    extra.inputs = {Operand{iv, 0}};
    b.loop().addOperation(std::move(extra));
    EXPECT_TRUE(b.loop().verify().has_value());
}

TEST(LoopTest, DotOutputMentionsEveryOp)
{
    Loop loop = makeSimpleLoop();
    const std::string dot = loop.toDot();
    for (const auto& op : loop.operations()) {
        EXPECT_NE(dot.find("n" + std::to_string(op.id)),
                  std::string::npos);
    }
    EXPECT_NE(dot.find("digraph"), std::string::npos);
}

TEST(LoopTest, CountOpsFiltersByPredicate)
{
    Loop loop = makeSimpleLoop();
    const int loads = loop.countOps([](const Operation& op) {
        return op.opcode == Opcode::kLoad;
    });
    EXPECT_EQ(loads, 1);
}

}  // namespace
}  // namespace veal
