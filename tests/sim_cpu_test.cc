#include "veal/sim/cpu_sim.h"

#include <gtest/gtest.h>

#include "veal/ir/loop_builder.h"

namespace veal {
namespace {

Loop
makeIndependentOpsLoop(int ops)
{
    LoopBuilder b("indep");
    const OpId iv = b.induction(1);
    const OpId x = b.load("in", iv);
    OpId last = x;
    for (int i = 0; i < ops; ++i)
        last = b.xorOp(x, b.constant(i));
    b.store("out", iv, last);
    b.loopBack(iv, b.constant(1024));
    return b.build();
}

Loop
makeDependentChainLoop(int ops)
{
    LoopBuilder b("chain");
    const OpId iv = b.induction(1);
    const OpId x = b.load("in", iv);
    OpId v = x;
    for (int i = 0; i < ops; ++i)
        v = b.xorOp(v, x);
    b.store("out", iv, v);
    b.loopBack(iv, b.constant(1024));
    return b.build();
}

TEST(CpuSimTest, WiderIssueHelpsIndependentWork)
{
    Loop loop = makeIndependentOpsLoop(12);
    const auto one =
        simulateLoopOnCpu(loop, CpuConfig::arm11(), 1024);
    const auto two =
        simulateLoopOnCpu(loop, CpuConfig::cortexA8(), 1024);
    const auto four =
        simulateLoopOnCpu(loop, CpuConfig::quadIssue(), 1024);
    EXPECT_GT(one.total_cycles, two.total_cycles);
    EXPECT_GT(two.total_cycles, four.total_cycles);
}

TEST(CpuSimTest, DependentChainDefeatsWidth)
{
    Loop loop = makeDependentChainLoop(12);
    const auto one =
        simulateLoopOnCpu(loop, CpuConfig::arm11(), 1024);
    const auto four =
        simulateLoopOnCpu(loop, CpuConfig::quadIssue(), 1024);
    // A serial dependence chain gains little from issue width.
    EXPECT_LT(static_cast<double>(one.total_cycles) /
                  static_cast<double>(four.total_cycles),
              1.5);
}

TEST(CpuSimTest, CyclesScaleWithIterations)
{
    Loop loop = makeIndependentOpsLoop(6);
    const auto small =
        simulateLoopOnCpu(loop, CpuConfig::arm11(), 1000);
    const auto large =
        simulateLoopOnCpu(loop, CpuConfig::arm11(), 10000);
    EXPECT_NEAR(static_cast<double>(large.total_cycles) /
                    static_cast<double>(small.total_cycles),
                10.0, 0.5);
}

TEST(CpuSimTest, LongerOpLatencySlowsDependentLoop)
{
    LoopBuilder b("mul");
    const OpId iv = b.induction(1);
    const OpId x = b.load("in", iv);
    OpId v = x;
    for (int i = 0; i < 4; ++i)
        v = b.mul(v, x);  // 3-cycle dependent multiplies.
    b.store("out", iv, v);
    b.loopBack(iv, b.constant(1024));
    Loop mul_loop = b.build();
    Loop xor_loop = makeDependentChainLoop(4);

    const auto muls =
        simulateLoopOnCpu(mul_loop, CpuConfig::arm11(), 1024);
    const auto xors =
        simulateLoopOnCpu(xor_loop, CpuConfig::arm11(), 1024);
    EXPECT_GT(muls.total_cycles, xors.total_cycles);
}

TEST(CpuSimTest, BranchPenaltyCostsCyclesEachIteration)
{
    Loop loop = makeIndependentOpsLoop(2);
    CpuConfig cheap = CpuConfig::arm11();
    cheap.branch_penalty = 0;
    CpuConfig pricey = CpuConfig::arm11();
    pricey.branch_penalty = 8;
    const auto fast = simulateLoopOnCpu(loop, cheap, 512);
    const auto slow = simulateLoopOnCpu(loop, pricey, 512);
    EXPECT_GE(slow.total_cycles, fast.total_cycles + 512 * 7);
}

TEST(CpuSimTest, CarriedDependenceSerialisesIterations)
{
    // acc += x forces each iteration to wait for the previous add.
    LoopBuilder b("acc");
    const OpId iv = b.induction(1);
    const OpId x = b.load("in", iv);
    const OpId acc = b.add(x, LoopBuilder::carried(kNoOp, 0));
    b.loop().mutableOp(acc).inputs[1] = LoopBuilder::carried(acc, 1);
    b.markLiveOut(acc);
    b.loopBack(iv, b.constant(512));
    Loop loop = b.build();

    const auto timing = simulateLoopOnCpu(loop, CpuConfig::quadIssue(), 512);
    // At least one cycle per iteration even at quad issue.
    EXPECT_GE(timing.cycles_per_iteration, 1.0);
}

TEST(CpuSimTest, SteadyStateRateIsPositiveAndFinite)
{
    Loop loop = makeIndependentOpsLoop(5);
    const auto timing =
        simulateLoopOnCpu(loop, CpuConfig::arm11(), 1 << 20);
    EXPECT_GT(timing.cycles_per_iteration, 0.0);
    EXPECT_LT(timing.cycles_per_iteration, 1000.0);
    EXPECT_GT(timing.total_cycles, 0);
}

TEST(CpuSimTest, CallsAreExpensive)
{
    LoopBuilder with_call("call");
    {
        const OpId iv = with_call.induction(1);
        const OpId x = with_call.load("in", iv);
        const OpId y = with_call.call("helper", {Operand{x, 0}});
        with_call.store("out", iv, y);
        with_call.loopBack(iv, with_call.constant(256));
    }
    Loop call_loop = with_call.build();
    Loop plain_loop = makeIndependentOpsLoop(1);
    const auto with = simulateLoopOnCpu(call_loop, CpuConfig::arm11(), 256);
    const auto without =
        simulateLoopOnCpu(plain_loop, CpuConfig::arm11(), 256);
    EXPECT_GT(with.cycles_per_iteration, without.cycles_per_iteration);
}

}  // namespace
}  // namespace veal
