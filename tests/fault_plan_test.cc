#include "veal/fault/fault_plan.h"

#include <set>

#include <gtest/gtest.h>

#include "veal/fault/fault_injector.h"
#include "veal/support/metrics/metrics.h"

namespace veal {
namespace {

TEST(FaultPlan, SampleIsDeterministic)
{
    const FaultPlan a = FaultPlan::sample(42);
    const FaultPlan b = FaultPlan::sample(42);
    EXPECT_EQ(a.describe(), b.describe());
    EXPECT_EQ(a.faults.size(), b.faults.size());
    EXPECT_EQ(a.translation_budget, b.translation_budget);
    EXPECT_EQ(a.quarantine_strikes, b.quarantine_strikes);
    EXPECT_EQ(a.retranslation_bound, b.retranslation_bound);
}

TEST(FaultPlan, SampleSpaceCoversEverySite)
{
    std::set<FaultSite> sites;
    bool saw_budget = false;
    bool saw_sticky = false;
    for (std::uint64_t seed = 0; seed < 200; ++seed) {
        const FaultPlan plan = FaultPlan::sample(seed);
        EXPECT_TRUE(plan.armed()) << plan.describe();
        EXPECT_GE(plan.quarantine_strikes, 2);
        EXPECT_LE(plan.quarantine_strikes, 3);
        EXPECT_GE(plan.retranslation_bound, plan.quarantine_strikes - 1);
        saw_budget |= plan.translation_budget >= 0;
        for (const auto& fault : plan.faults) {
            sites.insert(fault.site);
            saw_sticky |= fault.fires < 0;
            EXPECT_GE(fault.first_fire, 0);
        }
    }
    EXPECT_EQ(static_cast<int>(sites.size()), kNumFaultSites - 1)
        << "every probe-window site should be drawn (the budget is a "
           "scalar, not a window)";
    EXPECT_TRUE(saw_budget);
    EXPECT_TRUE(saw_sticky);
}

TEST(FaultPlan, DescribeNamesEveryArmedFault)
{
    FaultPlan plan;
    plan.seed = 9;
    plan.faults.push_back(
        ArmedFault{FaultSite::kSchedulerPlacement, 1, 2});
    plan.faults.push_back(ArmedFault{FaultSite::kCacheCorruption, 0, -1});
    plan.translation_budget = 5000;
    const std::string text = plan.describe();
    EXPECT_NE(text.find("scheduler-placement@1x2"), std::string::npos)
        << text;
    EXPECT_NE(text.find("cache-corruption@0+sticky"), std::string::npos)
        << text;
    EXPECT_NE(text.find("budget=5000"), std::string::npos) << text;
}

TEST(FaultInjector, FiresExactlyInsideTheArmedWindow)
{
    FaultPlan plan;
    plan.faults.push_back(
        ArmedFault{FaultSite::kSchedulerPlacement, 1, 2});
    FaultInjector injector(plan);

    EXPECT_FALSE(injector.probe(FaultSite::kSchedulerPlacement));  // 0
    EXPECT_TRUE(injector.probe(FaultSite::kSchedulerPlacement));   // 1
    EXPECT_TRUE(injector.probe(FaultSite::kSchedulerPlacement));   // 2
    EXPECT_FALSE(injector.probe(FaultSite::kSchedulerPlacement));  // 3
    EXPECT_EQ(injector.fired(FaultSite::kSchedulerPlacement), 2);
    EXPECT_EQ(injector.probes(FaultSite::kSchedulerPlacement), 4);

    // Other sites are unaffected by this window.
    EXPECT_FALSE(injector.probe(FaultSite::kRegisterAllocation));
    EXPECT_EQ(injector.fired(FaultSite::kRegisterAllocation), 0);
    EXPECT_EQ(injector.totalFired(), 2);
}

TEST(FaultInjector, StickyFaultFiresForever)
{
    FaultPlan plan;
    plan.faults.push_back(ArmedFault{FaultSite::kCcaMapping, 2, -1});
    FaultInjector injector(plan);
    EXPECT_FALSE(injector.probe(FaultSite::kCcaMapping));
    EXPECT_FALSE(injector.probe(FaultSite::kCcaMapping));
    for (int i = 0; i < 50; ++i)
        EXPECT_TRUE(injector.probe(FaultSite::kCcaMapping));
    EXPECT_EQ(injector.fired(FaultSite::kCcaMapping), 50);
}

TEST(FaultInjector, BudgetReliefDoublesTheAllowancePerRung)
{
    FaultPlan plan;
    plan.translation_budget = 100;
    FaultInjector injector(plan);

    EXPECT_FALSE(injector.budgetExceeded(99.0, 0));
    EXPECT_TRUE(injector.budgetExceeded(101.0, 0));
    // relief=1 doubles the allowance to 200; relief=2 to 400.
    EXPECT_FALSE(injector.budgetExceeded(150.0, 1));
    EXPECT_TRUE(injector.budgetExceeded(250.0, 1));
    EXPECT_FALSE(injector.budgetExceeded(399.0, 2));
    EXPECT_EQ(injector.fired(FaultSite::kTranslationBudget), 2);
}

TEST(FaultInjector, UnarmedBudgetNeverFires)
{
    FaultInjector injector(FaultPlan{});
    EXPECT_FALSE(injector.budgetExceeded(1e18, 0));
    EXPECT_EQ(injector.fired(FaultSite::kTranslationBudget), 0);
}

TEST(FaultInjector, CorruptionBitIsBoundedAndPlanDeterministic)
{
    FaultPlan plan;
    plan.seed = 77;
    FaultInjector a(plan);
    FaultInjector b(plan);
    for (int i = 0; i < 100; ++i) {
        const std::size_t bit_a = a.corruptionBit(96);
        EXPECT_LT(bit_a, 96u);
        EXPECT_EQ(bit_a, b.corruptionBit(96))
            << "same plan must corrupt the same bits";
    }
}

TEST(FaultInjector, RecordIntoReportsNonZeroSitesOnly)
{
    FaultPlan plan;
    plan.faults.push_back(
        ArmedFault{FaultSite::kRegisterAllocation, 0, 1});
    FaultInjector injector(plan);
    EXPECT_TRUE(injector.probe(FaultSite::kRegisterAllocation));
    EXPECT_FALSE(injector.probe(FaultSite::kSchedulerPlacement));

    metrics::Registry registry;
    injector.recordInto(registry, "test");
    EXPECT_EQ(registry.counter("test.fired.register-allocation"), 1);
    EXPECT_EQ(registry.counter("test.probes.register-allocation"), 1);
    EXPECT_EQ(registry.counter("test.probes.scheduler-placement"), 1);
    EXPECT_EQ(registry.counter("test.fired.scheduler-placement"), 0);
}

}  // namespace
}  // namespace veal
