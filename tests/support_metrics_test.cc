#include "veal/support/metrics/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "veal/support/thread_pool.h"

namespace veal::metrics {
namespace {

TEST(MetricsRegistryTest, CountersAccumulateAndDefaultToZero)
{
    Registry registry;
    EXPECT_EQ(registry.counter("absent"), 0);
    registry.add("hits");
    registry.add("hits", 4);
    registry.add("negative", -2);
    EXPECT_EQ(registry.counter("hits"), 5);
    EXPECT_EQ(registry.counter("negative"), -2);
    EXPECT_FALSE(registry.empty());
}

TEST(MetricsRegistryTest, GaugesSumReals)
{
    Registry registry;
    registry.addReal("seconds", 0.25);
    registry.addReal("seconds", 0.5);
    EXPECT_DOUBLE_EQ(registry.gauge("seconds"), 0.75);
    EXPECT_DOUBLE_EQ(registry.gauge("absent"), 0.0);
}

TEST(MetricsHistogramTest, BinsAtBoundsAndOverflow)
{
    Registry registry;
    registry.declareHistogram("ii", {1.0, 2.0, 4.0});
    registry.observe("ii", 1.0);   // At the bound: first bucket.
    registry.observe("ii", 1.5);   // Second bucket.
    registry.observe("ii", 4.0);   // Third bucket, at its bound.
    registry.observe("ii", 100.0); // Overflow.
    registry.observe("ii", -3.0);  // Below everything: first bucket.
    const Histogram* h = registry.histogram("ii");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->counts, (std::vector<std::int64_t>{2, 1, 1, 1}));
    EXPECT_EQ(h->total, 5);
    EXPECT_EQ(registry.histogram("absent"), nullptr);
}

TEST(MetricsHistogramTest, ObserveAutoDeclaresWithDefaultBounds)
{
    Registry registry;
    registry.observe("auto", 3.0);
    const Histogram* h = registry.histogram("auto");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->upper_bounds, Registry::defaultBounds());
    EXPECT_EQ(h->total, 1);
}

TEST(MetricsHistogramTest, MergeAddsBucketwise)
{
    Registry a;
    Registry b;
    a.declareHistogram("x", {10.0, 20.0});
    b.declareHistogram("x", {10.0, 20.0});
    a.observe("x", 5.0);
    b.observe("x", 15.0);
    b.observe("x", 50.0);
    a.merge(b);
    const Histogram* h = a.histogram("x");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->counts, (std::vector<std::int64_t>{1, 1, 1}));
    EXPECT_EQ(h->total, 3);
}

TEST(MetricsRegistryTest, MergeWithPrefixRenamesEverything)
{
    Registry cell;
    cell.add("cases", 3);
    cell.addReal("score", 1.5);
    cell.observe("ops", 7.0);
    cell.trace("site", "translate", "ok", 42);

    Registry total;
    total.merge(cell, "cell0.");
    EXPECT_EQ(total.counter("cell0.cases"), 3);
    EXPECT_DOUBLE_EQ(total.gauge("cell0.score"), 1.5);
    ASSERT_NE(total.histogram("cell0.ops"), nullptr);
    ASSERT_EQ(total.traceEvents().size(), 1u);
    EXPECT_EQ(total.traceEvents()[0].scope, "cell0.site");
    EXPECT_EQ(total.traceEvents()[0].value, 42);
}

TEST(MetricsRegistryTest, TraceIsBoundedAndDropsAreCounted)
{
    Registry registry;
    registry.setTraceLimit(2);
    registry.trace("a", "e", "d", 1);
    registry.trace("b", "e", "d", 2);
    registry.trace("c", "e", "d", 3);
    EXPECT_EQ(registry.traceEvents().size(), 2u);
    EXPECT_EQ(registry.traceDropped(), 1);
}

TEST(MetricsRegistryTest, MergeDeterministicUnderParallelMap)
{
    // The sweep-engine discipline: workers fill private registries, the
    // owner merges in index order.  The merged snapshot must be
    // byte-identical for any pool width.
    std::vector<int> indices(64);
    for (int i = 0; i < 64; ++i)
        indices[static_cast<std::size_t>(i)] = i;

    const auto fill = [](const int& i) {
        Registry registry;
        registry.add("cells");
        registry.add("group." + std::to_string(i % 4), i);
        registry.observe("value", static_cast<double>(i % 7));
        if (i % 8 == 0)
            registry.trace("cell" + std::to_string(i), "mark", "x", i);
        return registry;
    };

    std::string baseline;
    for (const int threads : {1, 2, 8}) {
        ThreadPool pool(threads);
        const std::vector<Registry> cells =
            parallelMap(pool, indices, fill);
        Registry total;
        for (const auto& cell : cells)
            total.merge(cell);
        const std::string snapshot = total.toJson();
        if (baseline.empty()) {
            baseline = snapshot;
            EXPECT_EQ(total.counter("cells"), 64);
        } else {
            EXPECT_EQ(snapshot, baseline) << "threads=" << threads;
        }
    }
}

TEST(MetricsJsonTest, RoundTripIsExact)
{
    Registry registry;
    registry.add("plain", 12);
    registry.add("needs \"escaping\"\n\tand\\slashes", 1);
    registry.add("negative", -7);
    registry.addReal("third", 1.0 / 3.0);
    registry.addReal("tiny", 4.9e-324);
    registry.addReal("whole", 123456789.0);
    registry.declareHistogram("h", {0.5, 1.5});
    registry.observe("h", 1.0);
    registry.observe("h", 9.0);
    registry.trace("vm/app/loop", "translate", "ok", 1234);
    registry.trace("vm/app", "cache", "thrash", -1);

    const std::string first = registry.toJson();
    const auto parsed = Registry::fromJson(first);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->toJson(), first);
    EXPECT_EQ(parsed->counter("plain"), 12);
    EXPECT_DOUBLE_EQ(parsed->gauge("third"), 1.0 / 3.0);
    ASSERT_NE(parsed->histogram("h"), nullptr);
    EXPECT_EQ(parsed->histogram("h")->total, 2);
    ASSERT_EQ(parsed->traceEvents().size(), 2u);
    EXPECT_EQ(parsed->traceEvents()[0].detail, "ok");
}

TEST(MetricsJsonTest, EmptyRegistryRoundTrips)
{
    Registry registry;
    const auto parsed = Registry::fromJson(registry.toJson());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(parsed->empty());
    EXPECT_EQ(parsed->toJson(), registry.toJson());
}

TEST(MetricsJsonTest, RejectsMalformedInput)
{
    EXPECT_FALSE(Registry::fromJson("").has_value());
    EXPECT_FALSE(Registry::fromJson("{}").has_value());  // No schema.
    EXPECT_FALSE(
        Registry::fromJson("{\"schema\": \"other-v9\"}").has_value());
    Registry registry;
    registry.add("x");
    const std::string good = registry.toJson();
    EXPECT_FALSE(
        Registry::fromJson(good + "trailing garbage").has_value());
    EXPECT_FALSE(
        Registry::fromJson(good.substr(0, good.size() - 3)).has_value());
}

TEST(MetricsChargeTest, PhaseCyclesSumExactlyToTotalCharge)
{
    // Awkward fractional weights on purpose: per-phase instruction
    // estimates truncate differently than their sum, so a naive
    // per-phase cast would lose cycles.  chargePhaseCycles must not.
    CostMeter meter;
    meter.charge(TranslationPhase::kLoopAnalysis, 17);
    meter.charge(TranslationPhase::kCcaMapping, 3);
    meter.charge(TranslationPhase::kMiiComputation, 101);
    meter.charge(TranslationPhase::kPriority, 7);
    meter.charge(TranslationPhase::kScheduling, 13);
    meter.charge(TranslationPhase::kRegisterAssignment, 1);

    for (const std::int64_t multiplier : {1, 2, 7, 1000}) {
        Registry registry;
        const std::int64_t charged = chargePhaseCycles(
            registry, "vm.phase_cycles", meter, multiplier);
        const auto expected = static_cast<std::int64_t>(
            meter.totalInstructions() *
            static_cast<double>(multiplier));
        EXPECT_EQ(charged, expected) << "multiplier " << multiplier;
        std::int64_t sum = 0;
        for (int i = 0; i < kNumTranslationPhases; ++i) {
            sum += registry.counter(
                std::string("vm.phase_cycles.") +
                toString(static_cast<TranslationPhase>(i)));
        }
        EXPECT_EQ(sum, expected) << "multiplier " << multiplier;
    }
}

TEST(MetricsChargeTest, MeteredScopeRecordsOnlyTheDelta)
{
    CostMeter meter;
    meter.charge(TranslationPhase::kPriority, 100);
    Registry registry;
    {
        const MeteredScope scope(registry, "translate.app", meter);
        meter.charge(TranslationPhase::kPriority, 7);
        meter.charge(TranslationPhase::kScheduling, 3);
    }
    EXPECT_EQ(registry.counter("translate.app.units.priority"), 7);
    EXPECT_EQ(registry.counter("translate.app.units.scheduling"), 3);
    // Untouched phases stay absent (no zero-noise in snapshots).
    EXPECT_EQ(registry.counter("translate.app.units.mii"), 0);
}

TEST(MetricsChargeTest, RecordCostMeterWritesRawUnits)
{
    CostMeter meter;
    meter.charge(TranslationPhase::kCcaMapping, 11);
    Registry registry;
    recordCostMeter(registry, "translate.app", meter);
    EXPECT_EQ(registry.counter("translate.app.units.cca-mapping"), 11);
}

}  // namespace
}  // namespace veal::metrics
