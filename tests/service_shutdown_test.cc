/**
 * Graceful service shutdown: a flipped stop flag ends run() at a tick
 * boundary with every admitted request fully drained and the store
 * flushed; beginShutdown() closes the queue so later submissions bounce
 * through the normal backpressure path; and a stopped run's store is
 * immediately warm-startable by the next process.
 */

#include <atomic>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "veal/service/service.h"
#include "veal/service/trace.h"
#include "veal/support/metrics/metrics.h"
#include "veal/vm/persist/store.h"

namespace veal {
namespace {

namespace fs = std::filesystem;

class ServiceShutdownTest : public ::testing::Test {
  protected:
    void
    SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("veal-shutdown-test-" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()));
        fs::remove_all(dir_);
    }

    void
    TearDown() override
    {
        fs::remove_all(dir_);
    }

    fs::path dir_;
};

ServiceTrace
makeTrace(std::uint64_t seed = 3, int requests = 160)
{
    TraceGenOptions gen;
    gen.seed = seed;
    gen.requests = requests;
    gen.tenants = 3;
    gen.loop_pool = 6;
    gen.tick_size = 16;
    return generateTrace(gen);
}

ServiceRequest
makeRequest(const TranslationService&, std::uint64_t loop_seed)
{
    ServiceRequest request;
    request.tenant = 0;
    request.loop = makeTraceLoop(loop_seed);
    TraceRequest stub;
    stub.tenant = 0;
    stub.loop_seed = loop_seed;
    request.key = traceRequestKey(stub);
    return request;
}

TEST_F(ServiceShutdownTest, StopFlagEndsRunAtATickBoundary)
{
    const ServiceTrace trace = makeTrace();

    // Baseline: the full trace, no stop.
    ServiceOptions options;
    options.cache_dir = (dir_ / "full").string();
    TranslationService full(options);
    full.run(trace);
    const std::int64_t all_ticks = full.report().ticks;
    ASSERT_GT(all_ticks, 1);

    // A pre-flipped flag: run() stops before the first tick.
    std::atomic<bool> stop{true};
    ServiceOptions stopped_options;
    stopped_options.cache_dir = (dir_ / "stopped").string();
    stopped_options.stop = &stop;
    metrics::Registry registry;
    TranslationService stopped(stopped_options, &registry);
    stopped.run(trace);
    EXPECT_TRUE(stopped.shuttingDown());
    EXPECT_EQ(stopped.report().ticks, 0);
    EXPECT_EQ(stopped.report().submitted, 0);
    EXPECT_EQ(registry.counter("service.shutdowns"), 1);
}

TEST_F(ServiceShutdownTest, DirectDriveShutdownDrainsTheInflightTick)
{
    ServiceOptions options;
    options.cache_dir = dir_.string();
    metrics::Registry registry;
    TranslationService service(options, &registry);

    // Submit a tick's worth of work but do NOT drain -- this is the
    // in-flight state a signal interrupts.
    ASSERT_EQ(service.submit(makeRequest(service, 101)),
              AdmissionOutcome::kAdmitted);
    ASSERT_EQ(service.submit(makeRequest(service, 102)),
              AdmissionOutcome::kAdmitted);

    service.shutdown();

    // The in-flight submissions were fully drained and accounted.
    EXPECT_EQ(service.report().submitted, 2);
    EXPECT_EQ(service.report().admitted, 2);
    EXPECT_EQ(service.report().ticks, 1);
    EXPECT_EQ(service.report().cold, 2);
    EXPECT_EQ(static_cast<int>(service.lastTickOutcomes().size()), 2);

    // The queue is closed: later submissions bounce as queue-full (the
    // normal backpressure path -- no new caller-side handling).
    EXPECT_EQ(service.submit(makeRequest(service, 103)),
              AdmissionOutcome::kQueueFull);

    // shutdown() is idempotent and the drained work stayed accounted.
    service.shutdown();
    EXPECT_EQ(service.report().admitted, 2);
    EXPECT_EQ(registry.counter("service.shutdowns"), 1);
}

TEST_F(ServiceShutdownTest, ShutdownFlushesTheStoreForTheNextProcess)
{
    {
        ServiceOptions options;
        options.cache_dir = dir_.string();
        TranslationService service(options);
        service.submit(makeRequest(service, 7));
        service.submit(makeRequest(service, 8));
        service.shutdown();
        // The store was flushed by shutdown(), not the destructor:
        // the manifest snapshot is already durable here.
        EXPECT_TRUE(fs::exists(dir_ / "MANIFEST.log"));
    }
    // The next "process" warm-starts from the drained tick's saves.
    persist::PersistentStore store(dir_.string(),
                                   persist::StoreOptions{});
    EXPECT_EQ(store.size(), 2);
    for (const std::string& key : store.keys())
        EXPECT_TRUE(store.load(key).has_value()) << key;
}

TEST_F(ServiceShutdownTest, StoppedPrefixReportMatchesAnUnstoppedPrefix)
{
    // Stopping after tick N must produce the exact report of running
    // the first N ticks -- nothing half-accounted.  Drive the service
    // tick by tick and flip the flag midway.
    const ServiceTrace trace = makeTrace();
    const int cut = static_cast<int>(trace.ticks.size()) / 2;
    ASSERT_GT(cut, 0);

    // Reference: the first `cut` ticks, plain run.
    ServiceTrace prefix;
    prefix.ticks.assign(trace.ticks.begin(), trace.ticks.begin() + cut);
    ServiceOptions ref_options;
    ref_options.cache_dir = (dir_ / "ref").string();
    TranslationService reference(ref_options);
    reference.run(prefix);
    reference.shutdown();

    // Stopped: full trace, flag flips once `cut` ticks are done.  The
    // flag is polled between ticks, so the run ends exactly there.
    std::atomic<bool> stop{false};
    ServiceOptions options;
    options.cache_dir = (dir_ / "stopped").string();
    options.stop = &stop;
    TranslationService stopped(options);
    std::map<std::uint64_t, Loop> loops;
    int ticks_done = 0;
    for (const auto& tick : trace.ticks) {
        if (ticks_done == cut)
            stop.store(true);
        if (stop.load()) {
            stopped.shutdown();
            break;
        }
        for (const auto& trace_request : tick) {
            auto it = loops.find(trace_request.loop_seed);
            if (it == loops.end())
                it = loops
                         .emplace(trace_request.loop_seed,
                                  makeTraceLoop(trace_request.loop_seed))
                         .first;
            ServiceRequest request;
            request.tenant = trace_request.tenant;
            request.loop = it->second;
            request.key = traceRequestKey(trace_request);
            request.mode = trace_request.mode;
            request.iterations = trace_request.iterations;
            stopped.submit(std::move(request));
        }
        stopped.drainTick();
        ++ticks_done;
    }

    EXPECT_EQ(stopped.report().render(), reference.report().render());
}

}  // namespace
}  // namespace veal
