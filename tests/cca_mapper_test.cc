#include "veal/cca/cca_mapper.h"

#include <gtest/gtest.h>
#include <algorithm>
#include <set>

#include "veal/arch/la_config.h"
#include "veal/ir/loop_builder.h"

namespace veal {
namespace {

CcaMapping
map(const Loop& loop)
{
    const LaConfig la = LaConfig::proposed();
    const auto analysis = analyzeLoop(loop);
    EXPECT_TRUE(analysis.ok());
    return mapToCca(loop, analysis, *la.cca, la.latencies);
}

TEST(CcaMapperTest, CollapsesLogicChain)
{
    LoopBuilder b("logic");
    const OpId iv = b.induction(1);
    const OpId x = b.load("in", iv);
    const OpId y = b.load("mask", iv);
    const OpId a = b.andOp(x, y);
    const OpId o = b.orOp(a, x);
    const OpId e = b.xorOp(o, y);
    b.store("out", iv, e);
    b.loopBack(iv, b.constant(64));
    Loop loop = b.build();

    const auto mapping = map(loop);
    ASSERT_EQ(mapping.groups.size(), 1u);
    EXPECT_EQ(mapping.groups[0].members, (std::vector<OpId>{a, o, e}));
    EXPECT_EQ(mapping.group_of_op[static_cast<std::size_t>(a)], 0);
}

TEST(CcaMapperTest, DependentArithmeticSkipsLogicRows)
{
    // add -> add -> add: rows 1 and 3 support arithmetic, so a chain of
    // three dependent adds cannot fit, but two can (skipping row 2).
    LoopBuilder b("adds");
    const OpId iv = b.induction(1);
    const OpId x = b.load("in", iv);
    const OpId y = b.load("in2", iv);
    const OpId s1 = b.add(x, y);
    const OpId s2 = b.add(s1, x);
    const OpId s3 = b.add(s2, y);
    b.store("out", iv, s3);
    b.loopBack(iv, b.constant(64));
    Loop loop = b.build();

    const auto mapping = map(loop);
    ASSERT_EQ(mapping.groups.size(), 1u);
    EXPECT_EQ(mapping.groups[0].members.size(), 2u);
    EXPECT_EQ(mapping.group_of_op[static_cast<std::size_t>(s1)], 0);
    EXPECT_EQ(mapping.group_of_op[static_cast<std::size_t>(s2)], 0);
    EXPECT_EQ(mapping.group_of_op[static_cast<std::size_t>(s3)], -1);
}

TEST(CcaMapperTest, ShiftsAndMultipliesStayOut)
{
    LoopBuilder b("shift");
    const OpId iv = b.induction(1);
    const OpId x = b.load("in", iv);
    const OpId c = b.constant(2);
    const OpId sh = b.shl(x, c);
    const OpId m = b.mul(sh, x);
    b.store("out", iv, m);
    b.loopBack(iv, b.constant(64));
    Loop loop = b.build();

    const auto mapping = map(loop);
    EXPECT_TRUE(mapping.groups.empty());
}

TEST(CcaMapperTest, InputPortLimitRespected)
{
    // A 5-input merge tree cannot collapse into one 4-input CCA group.
    LoopBuilder b("ports");
    const OpId iv = b.induction(1);
    OpId leaves[5];
    for (int i = 0; i < 5; ++i) {
        const OpId offset = b.constant(i);
        leaves[i] = b.load("in", b.add(iv, offset));
    }
    const OpId s1 = b.xorOp(leaves[0], leaves[1]);
    const OpId s2 = b.xorOp(leaves[2], leaves[3]);
    const OpId s3 = b.xorOp(s1, s2);
    const OpId s4 = b.xorOp(s3, leaves[4]);
    b.store("out", iv, s4);
    b.loopBack(iv, b.constant(64));
    Loop loop = b.build();

    const auto mapping = map(loop);
    for (const auto& group : mapping.groups) {
        std::set<std::pair<OpId, int>> externals;
        for (const OpId member : group.members) {
            for (const auto& input : loop.op(member).inputs) {
                const bool internal =
                    std::find(group.members.begin(), group.members.end(),
                              input.producer) != group.members.end() &&
                    input.distance == 0;
                if (!internal)
                    externals.insert({input.producer, input.distance});
            }
        }
        EXPECT_LE(externals.size(), 4u);
    }
}

TEST(CcaMapperTest, RecurrenceLengtheningRejected)
{
    // Paper Figure 5: op7 (on the 4-cycle recurrence with the 3-cycle
    // multiply) may not merge with op10 -- the 2-cycle CCA would lengthen
    // the recurrence to 5.
    LoopBuilder b("rec");
    const OpId iv = b.induction(1);
    const OpId x = b.load("in", iv);
    const OpId mpy = b.mul(LoopBuilder::carried(kNoOp, 0), x);
    const OpId orv = b.orOp(mpy, x);
    b.loop().mutableOp(mpy).inputs[0] = LoopBuilder::carried(orv, 1);
    const OpId add = b.add(orv, x);  // Off-recurrence candidate partner.
    b.store("out", iv, add);
    b.loopBack(iv, b.constant(64));
    Loop loop = b.build();

    const auto mapping = map(loop);
    // No group may contain orv (its recurrence contribution is 1 < 2).
    for (const auto& group : mapping.groups) {
        EXPECT_EQ(std::find(group.members.begin(), group.members.end(),
                            orv),
                  group.members.end());
    }
}

TEST(CcaMapperTest, RecurrenceChainWithEnoughLatencyAllowed)
{
    // Two 1-cycle ops both on the same recurrence may collapse: their
    // combined contribution (2) matches the CCA latency.
    LoopBuilder b("rec2");
    const OpId iv = b.induction(1);
    const OpId x = b.load("in", iv);
    const OpId a = b.add(LoopBuilder::carried(kNoOp, 0), x);
    const OpId e = b.xorOp(a, x);
    b.loop().mutableOp(a).inputs[0] = LoopBuilder::carried(e, 1);
    b.store("out", iv, e);
    b.loopBack(iv, b.constant(64));
    Loop loop = b.build();

    const auto mapping = map(loop);
    ASSERT_EQ(mapping.groups.size(), 1u);
    EXPECT_EQ(mapping.groups[0].members, (std::vector<OpId>{a, e}));
}

TEST(CcaMapperTest, ConvexityPreventsExternalPathThroughGroup)
{
    // a -> shift -> c with also a -> c directly: {a, c} is not convex
    // (the shift path would have to execute mid-group).
    LoopBuilder b("convex");
    const OpId iv = b.induction(1);
    const OpId x = b.load("in", iv);
    const OpId a = b.andOp(x, x);
    const OpId sh = b.shl(a, b.constant(1));
    const OpId c = b.xorOp(a, sh);
    b.store("out", iv, c);
    b.loopBack(iv, b.constant(64));
    Loop loop = b.build();

    const auto mapping = map(loop);
    for (const auto& group : mapping.groups) {
        const bool has_a = std::find(group.members.begin(),
                                     group.members.end(),
                                     a) != group.members.end();
        const bool has_c = std::find(group.members.begin(),
                                     group.members.end(),
                                     c) != group.members.end();
        EXPECT_FALSE(has_a && has_c);
    }
}

TEST(CcaMapperTest, EmptyMappingHelper)
{
    LoopBuilder b("empty");
    const OpId iv = b.induction(1);
    b.loopBack(iv, b.constant(4));
    Loop loop = b.build();
    const auto mapping = emptyCcaMapping(loop);
    EXPECT_TRUE(mapping.groups.empty());
    EXPECT_EQ(mapping.group_of_op.size(),
              static_cast<std::size_t>(loop.size()));
    EXPECT_EQ(mapping.coveredOps(), 0);
}

TEST(CcaMapperTest, ChargesCcaPhase)
{
    LoopBuilder b("meter");
    const OpId iv = b.induction(1);
    const OpId x = b.load("in", iv);
    const OpId a = b.andOp(x, x);
    const OpId o = b.orOp(a, x);
    b.store("out", iv, o);
    b.loopBack(iv, b.constant(64));
    Loop loop = b.build();

    const LaConfig la = LaConfig::proposed();
    const auto analysis = analyzeLoop(loop);
    CostMeter meter;
    mapToCca(loop, analysis, *la.cca, la.latencies, &meter);
    EXPECT_GT(meter.units(TranslationPhase::kCcaMapping), 0u);
}

TEST(CcaMapperTest, GroupsDoNotOverlap)
{
    // A wider graph with multiple groups: membership must be disjoint.
    LoopBuilder b("disjoint");
    const OpId iv = b.induction(1);
    OpId prev = b.load("in", iv);
    for (int i = 0; i < 6; ++i) {
        const OpId y = b.load("in" + std::to_string(i), iv);
        const OpId a = b.andOp(prev, y);
        const OpId o = b.orOp(a, y);
        const OpId sh = b.shl(o, b.constant(1));  // Breaks the chain.
        prev = sh;
    }
    b.store("out", iv, prev);
    b.loopBack(iv, b.constant(64));
    Loop loop = b.build();

    const auto mapping = map(loop);
    std::set<OpId> seen;
    for (const auto& group : mapping.groups) {
        EXPECT_GE(group.members.size(), 2u);
        for (const OpId member : group.members)
            EXPECT_TRUE(seen.insert(member).second);
    }
}

}  // namespace
}  // namespace veal
