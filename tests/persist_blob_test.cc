#include "veal/vm/persist/blob.h"

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "veal/arch/la_config.h"
#include "veal/ir/random_loop.h"
#include "veal/sim/la_timing.h"
#include "veal/vm/control_image.h"
#include "veal/vm/translator.h"

namespace veal::persist {
namespace {

struct Sample {
    Loop loop;
    TranslationResult translation;
};

Sample
translateSample(std::uint64_t seed)
{
    Sample sample{makeRandomLoop(RandomLoopParams{}, seed), {}};
    sample.translation = translateLoop(sample.loop, LaConfig::proposed(),
                                       TranslationMode::kFullyDynamic);
    return sample;
}

PersistedImage
makeSample(std::uint64_t seed)
{
    // Walk seeds until one translates; random loops translate often
    // enough that this terminates immediately in practice.
    for (std::uint64_t s = seed;; ++s) {
        const Sample sample = translateSample(s);
        if (!sample.translation.ok)
            continue;
        PersistedImage image;
        image.key = "sample-" + std::to_string(s);
        image.summary = summarize(sample.translation);
        image.image_words =
            ControlImage::encode(sample.loop, sample.translation).words();
        return image;
    }
}

TEST(PersistBlob, RoundTripsLosslessly)
{
    const PersistedImage original = makeSample(1);
    const std::vector<std::uint8_t> bytes = encodeBlob(original);
    const auto decoded = decodeBlob(bytes.data(), bytes.size());
    ASSERT_TRUE(std::holds_alternative<PersistedImage>(decoded))
        << toString(std::get<BlobError>(decoded));

    const PersistedImage& image = std::get<PersistedImage>(decoded);
    EXPECT_EQ(image.key, original.key);
    EXPECT_EQ(image.summary.ok, original.summary.ok);
    EXPECT_EQ(image.summary.reject, original.summary.reject);
    EXPECT_EQ(image.summary.mode, original.summary.mode);
    EXPECT_EQ(image.summary.ii, original.summary.ii);
    EXPECT_EQ(image.summary.stage_count, original.summary.stage_count);
    EXPECT_EQ(image.summary.length, original.summary.length);
    EXPECT_EQ(image.summary.fu_units, original.summary.fu_units);
    EXPECT_EQ(image.summary.live_in_regs, original.summary.live_in_regs);
    EXPECT_EQ(image.summary.live_outs, original.summary.live_outs);
    EXPECT_EQ(image.summary.load_strides, original.summary.load_strides);
    EXPECT_EQ(image.summary.store_strides, original.summary.store_strides);
    EXPECT_EQ(image.image_words, original.image_words);
}

TEST(PersistBlob, NegativeResultRoundTrips)
{
    // Rejections persist too (no image words), so a key that cannot
    // translate stays settled across restarts.
    PersistedImage original;
    original.key = "rejected/key with spaces";
    original.summary.ok = false;
    original.summary.reject = TranslationReject::kScheduleFailed;
    const std::vector<std::uint8_t> bytes = encodeBlob(original);
    const auto decoded = decodeBlob(bytes.data(), bytes.size());
    ASSERT_TRUE(std::holds_alternative<PersistedImage>(decoded));
    const PersistedImage& image = std::get<PersistedImage>(decoded);
    EXPECT_FALSE(image.summary.ok);
    EXPECT_EQ(image.summary.reject, TranslationReject::kScheduleFailed);
    EXPECT_TRUE(image.image_words.empty());
}

TEST(PersistBlob, SummaryCostMatchesAcceleratorCostBitExactly)
{
    // The equality the whole persistence design leans on: pricing from
    // the persisted summary reproduces acceleratorLoopCost() exactly,
    // for many random translated loops, at several iteration counts,
    // first and warm.  Any divergence would make warm-started service
    // reports drift from in-process runs.
    const LaConfig la = LaConfig::proposed();
    int checked = 0;
    for (std::uint64_t seed = 1; checked < 40 && seed < 400; ++seed) {
        const TranslationResult tr = translateSample(seed).translation;
        if (!tr.ok)
            continue;
        ++checked;
        const TranslationSummary summary = summarize(tr);
        for (const std::int64_t iterations : {1, 2, 12, 100, 4096}) {
            for (const bool first : {true, false}) {
                const LaInvocationCost expect = acceleratorLoopCost(
                    tr.schedule, *tr.graph, tr.analysis, tr.registers,
                    la, iterations, first);
                const LaInvocationCost got =
                    summaryLoopCost(summary, la, iterations, first);
                ASSERT_EQ(got.setup_cycles, expect.setup_cycles)
                    << "seed " << seed << " iters " << iterations;
                ASSERT_EQ(got.pipeline_cycles, expect.pipeline_cycles)
                    << "seed " << seed << " iters " << iterations;
                ASSERT_EQ(got.drain_cycles, expect.drain_cycles)
                    << "seed " << seed << " iters " << iterations;
                ASSERT_EQ(got.total(), expect.total());
            }
        }
    }
    ASSERT_GE(checked, 20) << "random pool translated too rarely";
}

TEST(PersistBlob, EverySingleByteFlipIsDetected)
{
    const PersistedImage original = makeSample(2);
    const std::vector<std::uint8_t> bytes = encodeBlob(original);
    // Exhaustive over bytes, one bit each: nothing may decode to a
    // PersistedImage with different contents; a flip either fails
    // (checksum/magic/version/truncation taxonomy) or -- only for the
    // checksum field itself -- could never validate the payload.
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        std::vector<std::uint8_t> corrupt = bytes;
        corrupt[i] ^= 0x10;
        const auto decoded = decodeBlob(corrupt.data(), corrupt.size());
        EXPECT_TRUE(std::holds_alternative<BlobError>(decoded))
            << "byte " << i << " flipped undetected";
    }
}

TEST(PersistBlob, ErrorTaxonomyIsPrecise)
{
    const PersistedImage original = makeSample(3);
    std::vector<std::uint8_t> bytes = encodeBlob(original);

    // Truncation, at every prefix length.
    for (std::size_t len = 0; len < bytes.size(); len += 7) {
        const auto decoded = decodeBlob(bytes.data(), len);
        ASSERT_TRUE(std::holds_alternative<BlobError>(decoded));
        const BlobError error = std::get<BlobError>(decoded);
        EXPECT_TRUE(error == BlobError::kTruncated ||
                    error == BlobError::kBadMagic ||
                    error == BlobError::kChecksum)
            << "prefix " << len << ": " << toString(error);
    }

    // Wrong magic.
    {
        std::vector<std::uint8_t> wrong = bytes;
        wrong[0] ^= 0xff;
        const auto decoded = decodeBlob(wrong.data(), wrong.size());
        ASSERT_TRUE(std::holds_alternative<BlobError>(decoded));
        EXPECT_EQ(std::get<BlobError>(decoded), BlobError::kBadMagic);
    }

    // Future version: must be kVersionSkew, not a checksum complaint,
    // so operators can tell "old binary" from "corrupt disk".
    {
        std::vector<std::uint8_t> future = bytes;
        future[4] = static_cast<std::uint8_t>(kBlobVersionFleet + 1);
        const auto decoded = decodeBlob(future.data(), future.size());
        ASSERT_TRUE(std::holds_alternative<BlobError>(decoded));
        EXPECT_EQ(std::get<BlobError>(decoded), BlobError::kVersionSkew);
    }

    // A v1 payload relabeled with the fleet version is missing its
    // fleet section: truncation, not skew (v2 is a known version).
    {
        std::vector<std::uint8_t> relabeled = bytes;
        relabeled[4] = static_cast<std::uint8_t>(kBlobVersionFleet);
        const auto decoded = decodeBlob(relabeled.data(), relabeled.size());
        ASSERT_TRUE(std::holds_alternative<BlobError>(decoded));
        EXPECT_EQ(std::get<BlobError>(decoded), BlobError::kTruncated);
    }

    // Payload flip: checksum.
    {
        std::vector<std::uint8_t> flipped = bytes;
        flipped[bytes.size() - 1] ^= 0x01;
        const auto decoded = decodeBlob(flipped.data(), flipped.size());
        ASSERT_TRUE(std::holds_alternative<BlobError>(decoded));
        EXPECT_EQ(std::get<BlobError>(decoded), BlobError::kChecksum);
    }

    // Trailing garbage after a valid payload.
    {
        std::vector<std::uint8_t> longer = bytes;
        longer.push_back(0);
        const auto decoded = decodeBlob(longer.data(), longer.size());
        ASSERT_TRUE(std::holds_alternative<BlobError>(decoded));
    }

    EXPECT_STREQ(toString(BlobError::kVersionSkew), "version-skew");
}

TEST(PersistBlob, DecodedWordsRebuildAChecksummedImage)
{
    // The image words must round-trip into a ControlImage whose
    // integrity checksum matches the original, or dispatch-time
    // verification would strike every persisted image.
    for (std::uint64_t seed = 4; seed < 10; ++seed) {
        const Sample sample = translateSample(seed);
        const TranslationResult& tr = sample.translation;
        if (!tr.ok)
            continue;
        const ControlImage original =
            ControlImage::encode(sample.loop, tr);
        PersistedImage persisted;
        persisted.key = "img";
        persisted.summary = summarize(tr);
        persisted.image_words = original.words();
        const std::vector<std::uint8_t> bytes = encodeBlob(persisted);
        const auto decoded = decodeBlob(bytes.data(), bytes.size());
        ASSERT_TRUE(std::holds_alternative<PersistedImage>(decoded));
        const ControlImage rebuilt = ControlImage::fromWords(
            std::get<PersistedImage>(decoded).image_words);
        EXPECT_EQ(rebuilt.checksum(), original.checksum());
    }
}

}  // namespace
}  // namespace veal::persist
