/**
 * Regression locks for the reproduction's calibrated quantities: the
 * Figure 8 translation-cost distribution and the translator's
 * height-order fallback for wedge-prone swing orders.
 */

#include <gtest/gtest.h>

#include "veal/ir/random_loop.h"
#include "veal/vm/translator.h"
#include "veal/workloads/suite.h"

namespace veal {
namespace {

TEST(CalibrationTest, Figure8SuiteAverageNearThePaper)
{
    const auto suite = mediaFpSuite();
    const LaConfig la = LaConfig::proposed();
    CostMeter total;
    int loops = 0;
    for (const auto& benchmark : suite) {
        for (const auto& site : benchmark.transformed.sites) {
            std::vector<const Loop*> pieces;
            if (site.fissioned.empty()) {
                pieces.push_back(&site.loop);
            } else {
                for (const auto& piece : site.fissioned)
                    pieces.push_back(&piece);
            }
            for (const Loop* loop : pieces) {
                const auto result = translateLoop(
                    *loop, la, TranslationMode::kFullyDynamic);
                if (!result.ok)
                    continue;
                total.add(result.meter);
                ++loops;
            }
        }
    }
    ASSERT_GT(loops, 20);
    const double average = total.totalInstructions() / loops;
    // Paper: ~99,716 instructions/loop on average.
    EXPECT_GT(average, 60000.0);
    EXPECT_LT(average, 140000.0);

    // Paper: priority 69%, CCA 20%, scheduling < 3%.
    const double priority =
        total.instructions(TranslationPhase::kPriority) /
        total.totalInstructions();
    const double cca = total.instructions(TranslationPhase::kCcaMapping) /
                       total.totalInstructions();
    const double sched =
        total.instructions(TranslationPhase::kScheduling) /
        total.totalInstructions();
    EXPECT_GT(priority, 0.55);
    EXPECT_LT(priority, 0.80);
    EXPECT_GT(cca, 0.10);
    EXPECT_LT(cca, 0.30);
    EXPECT_LT(sched, 0.06);
}

TEST(CalibrationTest, MiiPhaseIsCheapAsThePaperMeasures)
{
    // Paper: ResMII + RecMII together are ~1.25k of ~100k instructions --
    // the reason they stay dynamic (architectural independence is cheap).
    // Pick the first seed that maps onto the proposed LA.
    TranslationResult result;
    for (std::uint64_t seed = 0; seed < 16; ++seed) {
        Loop loop = makeRandomLoop(RandomLoopParams{}, seed);
        result = translateLoop(loop, LaConfig::proposed(),
                               TranslationMode::kFullyDynamic);
        if (result.ok)
            break;
    }
    ASSERT_TRUE(result.ok);
    EXPECT_LT(result.meter.instructions(TranslationPhase::kMiiComputation),
              0.10 * result.meter.totalInstructions());
}

TEST(FallbackTest, WedgedSwingOrdersFallBackToHeightAndSucceed)
{
    // These seeds historically wedge the swing placement (a node pinched
    // between neighbours placed in opposite sweep directions at every
    // II); the translator must recover via the height order rather than
    // rejecting the loop.
    for (const std::uint64_t seed : {100ull, 102ull, 109ull, 119ull}) {
        RandomLoopParams params;
        Loop loop = makeRandomLoop(params, seed);
        const auto result = translateLoop(loop, LaConfig::infinite(),
                                          TranslationMode::kFullyDynamic);
        EXPECT_TRUE(result.ok) << "seed " << seed << ": "
                               << toString(result.reject);
        if (result.ok) {
            ASSERT_TRUE(result.graph.has_value());
            EXPECT_FALSE(validateSchedule(*result.graph,
                                          LaConfig::infinite(),
                                          result.schedule)
                             .has_value());
        }
    }
}

TEST(FallbackTest, FallbackChargesTheExtraPriorityPass)
{
    RandomLoopParams params;
    Loop wedged = makeRandomLoop(params, 100);
    const auto result = translateLoop(wedged, LaConfig::infinite(),
                                      TranslationMode::kFullyDynamic);
    ASSERT_TRUE(result.ok);
    // Both the swing ordering and the fallback height pass were metered.
    EXPECT_GT(result.meter.units(TranslationPhase::kPriority), 0u);
    EXPECT_GT(result.meter.units(TranslationPhase::kScheduling), 0u);
}

}  // namespace
}  // namespace veal
