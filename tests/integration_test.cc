/**
 * End-to-end reproduction checks: the qualitative results the paper's
 * evaluation (§4.3) reports must hold on the full stack.
 */

#include <gtest/gtest.h>

#include "veal/arch/area.h"
#include "veal/vm/vm.h"
#include "veal/workloads/suite.h"

namespace veal {
namespace {

double
meanSpeedup(TranslationMode mode, const std::vector<Benchmark>& suite)
{
    VmOptions options;
    options.mode = mode;
    double sum = 0.0;
    for (const auto& benchmark : suite) {
        VirtualMachine vm(LaConfig::proposed(), CpuConfig::arm11(),
                          options);
        sum += vm.run(benchmark.transformed).speedup;
    }
    return sum / static_cast<double>(suite.size());
}

class Figure10Shape : public ::testing::Test {
  protected:
    static void
    SetUpTestSuite()
    {
        suite_ = new std::vector<Benchmark>(mediaFpSuite());
        static_mean_ = meanSpeedup(TranslationMode::kStatic, *suite_);
        dynamic_mean_ =
            meanSpeedup(TranslationMode::kFullyDynamic, *suite_);
        height_mean_ =
            meanSpeedup(TranslationMode::kFullyDynamicHeight, *suite_);
        hybrid_mean_ = meanSpeedup(
            TranslationMode::kHybridStaticCcaPriority, *suite_);
    }

    static void
    TearDownTestSuite()
    {
        delete suite_;
        suite_ = nullptr;
    }

    static std::vector<Benchmark>* suite_;
    static double static_mean_;
    static double dynamic_mean_;
    static double height_mean_;
    static double hybrid_mean_;
};

std::vector<Benchmark>* Figure10Shape::suite_ = nullptr;
double Figure10Shape::static_mean_ = 0.0;
double Figure10Shape::dynamic_mean_ = 0.0;
double Figure10Shape::height_mean_ = 0.0;
double Figure10Shape::hybrid_mean_ = 0.0;

TEST_F(Figure10Shape, StaticBeatsEveryDynamicMode)
{
    EXPECT_GT(static_mean_, dynamic_mean_);
    EXPECT_GT(static_mean_, height_mean_);
    EXPECT_GT(static_mean_, hybrid_mean_);
}

TEST_F(Figure10Shape, HybridRecoversMostOfTheStaticSpeedup)
{
    // Paper: 2.66 of 2.76, i.e. > 93%.  Allow some slack.
    EXPECT_GT(hybrid_mean_ / static_mean_, 0.88);
}

TEST_F(Figure10Shape, HeightPriorityBeatsFullyDynamicSwingOnAverage)
{
    // Paper §4.3: "the benefits of faster translation time outweighed the
    // benefits of better schedules" (2.41 vs 2.27).
    EXPECT_GT(height_mean_, dynamic_mean_);
}

TEST_F(Figure10Shape, MeansAreInThePaperBallpark)
{
    EXPECT_NEAR(static_mean_, 2.76, 0.8);
    EXPECT_NEAR(dynamic_mean_, 2.27, 0.8);
    EXPECT_NEAR(hybrid_mean_, 2.66, 0.8);
    EXPECT_NEAR(height_mean_, 2.41, 0.8);
}

TEST_F(Figure10Shape, EveryBenchmarkAcceleratesUnderStaticCompilation)
{
    VmOptions options;
    options.mode = TranslationMode::kStatic;
    for (const auto& benchmark : *suite_) {
        VirtualMachine vm(LaConfig::proposed(), CpuConfig::arm11(),
                          options);
        EXPECT_GT(vm.run(benchmark.transformed).speedup, 1.5)
            << benchmark.name;
    }
}

TEST_F(Figure10Shape, Mpeg2decCollapsesUnderFullyDynamicTranslation)
{
    // Paper: "Mpeg2dec notably went from a speedup of 2.1 down to 1.15".
    const auto benchmark = findBenchmark("mpeg2dec");
    VmOptions st{.mode = TranslationMode::kStatic};
    VmOptions dy{.mode = TranslationMode::kFullyDynamic};
    const double s =
        VirtualMachine(LaConfig::proposed(), CpuConfig::arm11(), st)
            .run(benchmark.transformed)
            .speedup;
    const double d =
        VirtualMachine(LaConfig::proposed(), CpuConfig::arm11(), dy)
            .run(benchmark.transformed)
            .speedup;
    EXPECT_GT(s, 2.0);
    EXPECT_LT(d / s, 0.7);
}

TEST_F(Figure10Shape, PegwitencLosesAllBenefitFullyDynamic)
{
    const auto benchmark = findBenchmark("pegwitenc");
    VmOptions dy{.mode = TranslationMode::kFullyDynamic};
    const double d =
        VirtualMachine(LaConfig::proposed(), CpuConfig::arm11(), dy)
            .run(benchmark.transformed)
            .speedup;
    EXPECT_LT(d, 1.15);
}

TEST_F(Figure10Shape, RawcaudioAmortisesTranslationCompletely)
{
    // Paper: "in the case of rawcaudio ... the translation cost is easily
    // amortized" -- dynamic ~ static.
    const auto benchmark = findBenchmark("rawcaudio");
    VmOptions st{.mode = TranslationMode::kStatic};
    VmOptions dy{.mode = TranslationMode::kFullyDynamic};
    const double s =
        VirtualMachine(LaConfig::proposed(), CpuConfig::arm11(), st)
            .run(benchmark.transformed)
            .speedup;
    const double d =
        VirtualMachine(LaConfig::proposed(), CpuConfig::arm11(), dy)
            .run(benchmark.transformed)
            .speedup;
    EXPECT_GT(d / s, 0.95);
}

TEST(DesignPointTest, ProposedLaReachesMostOfInfiniteSpeedup)
{
    // Paper §3.2: the proposed design attains 83% of the
    // infinite-resource speedup.
    const auto suite = mediaFpSuite();
    VmOptions options;
    options.mode = TranslationMode::kStatic;
    double proposed_sum = 0.0;
    double infinite_sum = 0.0;
    for (const auto& benchmark : suite) {
        proposed_sum +=
            VirtualMachine(LaConfig::proposed(), CpuConfig::arm11(),
                           options)
                .run(benchmark.transformed)
                .speedup;
        infinite_sum +=
            VirtualMachine(LaConfig::infiniteWithCca(),
                           CpuConfig::arm11(), options)
                .run(benchmark.transformed)
                .speedup;
    }
    const double fraction = proposed_sum / infinite_sum;
    EXPECT_GT(fraction, 0.6);
    EXPECT_LE(fraction, 1.0 + 1e-9);
}

TEST(DesignPointTest, AreaMatchesPaper)
{
    AreaModel model;
    EXPECT_NEAR(model.totalArea(LaConfig::proposed()), 3.8, 0.05);
}

TEST(Figure7Shape, TransformsAreCriticalOnAverage)
{
    // Paper: "not performing loop transformations reduced speedup
    // attained by the accelerator by 75%".
    const auto suite = mediaFpSuite();
    VmOptions options;
    options.mode = TranslationMode::kHybridStaticCcaPriority;
    double gain_fraction_sum = 0.0;
    int counted = 0;
    for (const auto& benchmark : suite) {
        VirtualMachine vm(LaConfig::proposed(), CpuConfig::arm11(),
                          options);
        const double transformed =
            vm.run(benchmark.transformed).speedup;
        const double untransformed =
            vm.run(benchmark.untransformed).speedup;
        if (transformed <= 1.0)
            continue;
        gain_fraction_sum += std::max(0.0, untransformed - 1.0) /
                             (transformed - 1.0);
        ++counted;
    }
    ASSERT_GT(counted, 0);
    const double mean_fraction =
        gain_fraction_sum / static_cast<double>(counted);
    // Transformations matter a lot: most of the gain disappears.
    EXPECT_LT(mean_fraction, 0.6);
}

}  // namespace
}  // namespace veal
