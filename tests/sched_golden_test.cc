/**
 * Golden schedule snapshots for the repro corpus.
 *
 * Every `tests/corpus/seed-*.veal` is translated with its own pinned
 * config/mode and summarised as one line: II, stage count, register
 * demand, and a hash of the MRT occupancy pattern (rejecting seeds
 * record the reject reason instead).  The lines are compared against
 * `tests/golden/schedules.golden`, so any change to the translation
 * kernels that moves a schedule -- even to a different-but-valid one --
 * fails loudly instead of drifting silently.
 *
 * To refresh after an intentional scheduler change:
 *
 *     VEAL_UPDATE_GOLDEN=1 ./build/tests/sched_golden_test
 *
 * then review the diff of tests/golden/schedules.golden like any other
 * code change.
 */

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "veal/fuzz/corpus.h"
#include "veal/vm/translator.h"

#ifndef VEAL_CORPUS_DIR
#error "VEAL_CORPUS_DIR must point at tests/corpus"
#endif
#ifndef VEAL_GOLDEN_DIR
#error "VEAL_GOLDEN_DIR must point at tests/golden"
#endif

namespace veal {
namespace {

/**
 * FNV-1a over the reserved (class, instance, modulo-slot) triples in
 * unit-id order.  Unit ids are stable for a given loop, so two
 * schedules hash equal iff they reserve exactly the same MRT cells for
 * the same units.
 */
std::uint64_t
mrtOccupancyHash(const SchedGraph& graph, const Schedule& schedule)
{
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
    };
    for (const auto& unit : graph.units()) {
        if (unit.fu == FuClass::kNone)
            continue;
        const auto u = static_cast<std::size_t>(unit.id);
        mix(static_cast<std::uint64_t>(unit.id));
        mix(static_cast<std::uint64_t>(unit.fu));
        mix(static_cast<std::uint64_t>(schedule.fu_instance[u]));
        for (int k = 0; k < unit.init_interval; ++k)
            mix(static_cast<std::uint64_t>((schedule.time[u] + k) %
                                           schedule.ii));
    }
    return h;
}

/** One snapshot line for a corpus case (no trailing newline). */
std::string
snapshotLine(const std::string& stem, const CorpusCase& repro)
{
    StaticAnnotations annotations;
    const StaticAnnotations* annotations_ptr = nullptr;
    if (repro.mode == TranslationMode::kHybridStaticCcaPriority) {
        annotations = precompileAnnotations(repro.loop, repro.config);
        annotations_ptr = &annotations;
    }
    const TranslationResult result = translateLoop(
        repro.loop, repro.config, repro.mode, annotations_ptr);

    std::ostringstream os;
    os << stem << " mode=" << toString(repro.mode);
    if (!result.ok) {
        os << " reject=" << toString(result.reject);
        return os.str();
    }
    os << " ii=" << result.schedule.ii
       << " stages=" << result.schedule.stage_count
       << " int_regs=" << result.registers.int_regs_used
       << " fp_regs=" << result.registers.fp_regs_used << " mrt=0x"
       << std::hex
       << mrtOccupancyHash(result.graph.value(), result.schedule);
    return os.str();
}

std::string
goldenPath()
{
    return std::string(VEAL_GOLDEN_DIR) + "/schedules.golden";
}

TEST(SchedGolden, CorpusSchedulesMatchSnapshots)
{
    const auto files = listCorpusFiles(VEAL_CORPUS_DIR);
    ASSERT_FALSE(files.empty()) << "no corpus at " VEAL_CORPUS_DIR;

    std::vector<std::string> lines;
    for (const auto& path : files) {
        const auto parsed = loadCorpusFile(path);
        ASSERT_TRUE(std::holds_alternative<CorpusCase>(parsed))
            << path << ": " << std::get<std::string>(parsed);
        const auto stem = std::filesystem::path(path).stem().string();
        lines.push_back(
            snapshotLine(stem, std::get<CorpusCase>(parsed)));
    }

    std::ostringstream actual;
    for (const auto& line : lines)
        actual << line << "\n";

    if (std::getenv("VEAL_UPDATE_GOLDEN") != nullptr) {
        std::filesystem::create_directories(VEAL_GOLDEN_DIR);
        std::ofstream out(goldenPath(), std::ios::trunc);
        out << actual.str();
        ASSERT_TRUE(out.good()) << "failed writing " << goldenPath();
        GTEST_SKIP() << "golden refreshed: " << goldenPath();
    }

    std::ifstream in(goldenPath());
    ASSERT_TRUE(in.good())
        << "missing " << goldenPath()
        << "; run with VEAL_UPDATE_GOLDEN=1 to create it";
    std::ostringstream expected;
    expected << in.rdbuf();

    EXPECT_EQ(actual.str(), expected.str())
        << "schedule snapshots drifted; if the change is intentional, "
           "refresh with VEAL_UPDATE_GOLDEN=1 and review the diff";
}

TEST(SchedGolden, SnapshotsAreDeterministic)
{
    // The snapshot must not depend on translation order or run count.
    const auto files = listCorpusFiles(VEAL_CORPUS_DIR);
    ASSERT_FALSE(files.empty());
    const auto& path = files.front();
    const auto parsed = loadCorpusFile(path);
    ASSERT_TRUE(std::holds_alternative<CorpusCase>(parsed));
    const auto& repro = std::get<CorpusCase>(parsed);
    const auto stem = std::filesystem::path(path).stem().string();
    EXPECT_EQ(snapshotLine(stem, repro), snapshotLine(stem, repro));
}

}  // namespace
}  // namespace veal
