#include "veal/ir/loop_parser.h"

#include <gtest/gtest.h>

#include "veal/sim/interpreter.h"
#include "veal/vm/translator.h"
#include "veal/workloads/kernels.h"

namespace veal {
namespace {

constexpr const char* kFigure5Text = R"(
# The paper's Figure 5 loop, in the textual kernel format.
loop figure5
trip 1024
i    = induction 1
c16  = const 16
c5   = const 5
c1   = const 1
c3   = const 3
c32  = const 32
a1   = add i c16
x    = load in a1
s3   = shl s9@1 c1        # recurrence A enters here
s5   = and s3 x
s6   = sub x c5
s8   = xor s5 s6
s9   = shr s8 c1
m4   = mpy m7@1 c3        # recurrence B
m7   = or m4 x
r10  = add m7 s9
a11  = add i c32
store out a11 r10
loopback i c16
)";

TEST(ParserTest, ParsesFigure5AndTranslates)
{
    const auto result = parseLoop(kFigure5Text);
    ASSERT_TRUE(std::holds_alternative<Loop>(result))
        << std::get<ParseError>(result).message;
    const Loop& loop = std::get<Loop>(result);
    EXPECT_EQ(loop.name(), "figure5");
    EXPECT_EQ(loop.tripCount(), 1024);

    const auto tr = translateLoop(loop, LaConfig::proposed(),
                                  TranslationMode::kFullyDynamic);
    ASSERT_TRUE(tr.ok) << toString(tr.reject);
    EXPECT_EQ(tr.schedule.ii, 4);  // Same as the golden Figure 5 test.
    EXPECT_EQ(tr.mapping.groups.size(), 1u);
}

TEST(ParserTest, CarriedReferencesGetDistances)
{
    const auto result = parseLoop(R"(
loop acc
i = induction 1
x = load in i
s = add x s@1
liveout s
loopback i x
)");
    ASSERT_TRUE(std::holds_alternative<Loop>(result))
        << std::get<ParseError>(result).message;
    const Loop& loop = std::get<Loop>(result);
    bool found = false;
    for (const auto& op : loop.operations()) {
        if (op.opcode == Opcode::kAdd && !op.is_induction) {
            EXPECT_EQ(op.inputs[1].distance, 1);
            EXPECT_EQ(op.inputs[1].producer, op.id);
            EXPECT_TRUE(op.is_live_out);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(ParserTest, DirectivesAreHonoured)
{
    const auto result = parseLoop(R"(
loop w
trip 7
speculative
i = induction 2
x = load in i
st = const 0
store out i x
memedge st x 1   # placeholder; replaced below
loopback i st
)");
    // st is a const, not a memory op: memedge must be rejected.
    ASSERT_TRUE(std::holds_alternative<ParseError>(result));
    EXPECT_NE(std::get<ParseError>(result).message.find("memory"),
              std::string::npos);
}

TEST(ParserTest, SpeculativeMarksTheFeature)
{
    const auto result = parseLoop(R"(
loop w
speculative
i = induction 1
x = load in i
store out i x
loopback i x
)");
    ASSERT_TRUE(std::holds_alternative<Loop>(result));
    EXPECT_EQ(std::get<Loop>(result).feature(),
              LoopFeature::kNeedsSpeculation);
}

TEST(ParserTest, CallMarksTheFeature)
{
    const auto result = parseLoop(R"(
loop c
i = induction 1
x = load in i
y = call sin x
store out i y
loopback i x
)");
    ASSERT_TRUE(std::holds_alternative<Loop>(result));
    EXPECT_EQ(std::get<Loop>(result).feature(),
              LoopFeature::kHasSubroutineCall);
}

TEST(ParserErrorTest, ReportsLineNumbers)
{
    const auto result = parseLoop(R"(
loop bad
i = induction 1
y = frobnicate i i
)");
    ASSERT_TRUE(std::holds_alternative<ParseError>(result));
    const auto& error = std::get<ParseError>(result);
    EXPECT_EQ(error.line, 4);
    EXPECT_NE(error.message.find("frobnicate"), std::string::npos);
}

TEST(ParserErrorTest, UndefinedValue)
{
    const auto result = parseLoop(R"(
loop bad
i = induction 1
y = add i ghost
loopback i i
)");
    ASSERT_TRUE(std::holds_alternative<ParseError>(result));
    EXPECT_NE(std::get<ParseError>(result).message.find("ghost"),
              std::string::npos);
}

TEST(ParserErrorTest, MissingHeader)
{
    const auto result = parseLoop("i = induction 1\n");
    ASSERT_TRUE(std::holds_alternative<ParseError>(result));
}

TEST(ParserErrorTest, Redefinition)
{
    const auto result = parseLoop(R"(
loop bad
i = induction 1
i = const 5
)");
    ASSERT_TRUE(std::holds_alternative<ParseError>(result));
    EXPECT_NE(std::get<ParseError>(result).message.find("redefinition"),
              std::string::npos);
}

TEST(ParserErrorTest, DuplicateLoopback)
{
    const auto result = parseLoop(R"(
loop bad
i = induction 1
loopback i i
loopback i i
)");
    ASSERT_TRUE(std::holds_alternative<ParseError>(result));
}

TEST(ParserErrorTest, ZeroDistanceForwardCycleIsMalformed)
{
    const auto result = parseLoop(R"(
loop bad
i = induction 1
a = add b i
b = add a i
loopback i i
)");
    ASSERT_TRUE(std::holds_alternative<ParseError>(result));
    EXPECT_NE(std::get<ParseError>(result).message.find("malformed"),
              std::string::npos);
}

class RoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(RoundTrip, PrintedKernelsReparseToEquivalentLoops)
{
    Loop original = [&] {
        switch (GetParam()) {
          case 0: return makeAdpcmStepLoop("adpcm");
          case 1: return makeFirLoop("fir", 4);
          case 2: return makeWaveletLiftLoop("wave");
          case 3: return makeQuantLoop("quant");
          case 4: return makeViterbiAcsLoop("vit");
          default: return makeDct8Loop("dct", 1);
        }
    }();

    const std::string text = printLoop(original);
    const auto reparsed = parseLoop(text);
    ASSERT_TRUE(std::holds_alternative<Loop>(reparsed))
        << std::get<ParseError>(reparsed).message << "\n" << text;
    const Loop& loop = std::get<Loop>(reparsed);

    // Same functional behaviour: run both on the interpreter with the
    // same (default-zero live-in / initial) state and identical memory.
    ExecutionInput input;
    input.iterations = 12;
    for (const auto& op : original.operations()) {
        if (op.opcode == Opcode::kLoad) {
            for (std::int64_t index = -8; index < 128; ++index)
                input.memory[op.symbol][index] = (index * 13) % 31;
        }
    }
    const auto a = interpretLoop(original, input);
    const auto b = interpretLoop(loop, input);
    ASSERT_EQ(a.memory.size(), b.memory.size());
    for (const auto& [array, contents] : a.memory) {
        ASSERT_TRUE(b.memory.contains(array)) << array << "\n" << text;
        EXPECT_EQ(b.memory.at(array), contents) << array;
    }
}

INSTANTIATE_TEST_SUITE_P(Kernels, RoundTrip, ::testing::Range(0, 6));

TEST(ParserLimits, RejectsOversizedInputUpFront)
{
    std::string text(kMaxParseBytes + 1, '#');
    const auto result = parseLoop(text);
    ASSERT_TRUE(std::holds_alternative<ParseError>(result));
    const ParseError& error = std::get<ParseError>(result);
    EXPECT_EQ(error.line, 1);
    EXPECT_NE(error.message.find("accepts at most"), std::string::npos)
        << error.message;
    EXPECT_NE(error.message.find(std::to_string(kMaxParseBytes)),
              std::string::npos)
        << error.message;
}

TEST(ParserLimits, RejectsAnOversizedLine)
{
    std::string text = "loop long-line\ntrip 8\n# ";
    text.append(kMaxParseLineBytes, 'x');
    text += "\ni = induction 1\nloopback i i\n";
    const auto result = parseLoop(text);
    ASSERT_TRUE(std::holds_alternative<ParseError>(result));
    EXPECT_NE(std::get<ParseError>(result).message.find("per line"),
              std::string::npos)
        << std::get<ParseError>(result).message;
}

TEST(ParserLimits, RejectsTooManyOperations)
{
    std::string text = "loop huge\ntrip 8\ni = induction 1\n";
    for (int index = 0; index <= kMaxParseOperations; ++index) {
        text += "c" + std::to_string(index) + " = const " +
                std::to_string(index) + "\n";
    }
    text += "loopback i c0\n";
    const auto result = parseLoop(text);
    ASSERT_TRUE(std::holds_alternative<ParseError>(result));
    EXPECT_NE(std::get<ParseError>(result).message.find("exceeds"),
              std::string::npos)
        << std::get<ParseError>(result).message;
}

TEST(ParserLimits, AcceptsAKernelNearTheEdgeOfTheLimits)
{
    // A generously sized but legal loop parses fine: the limits must
    // bound adversarial inputs without clipping real kernels.
    std::string text = "loop wide\ntrip 8\ni = induction 1\n";
    for (int index = 0; index < 512; ++index) {
        text += "c" + std::to_string(index) + " = const " +
                std::to_string(index) + "\n";
    }
    text += "loopback i c0\n";
    const auto result = parseLoop(text);
    EXPECT_TRUE(std::holds_alternative<Loop>(result));
}

}  // namespace
}  // namespace veal
