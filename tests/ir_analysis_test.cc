#include "veal/ir/loop_analysis.h"

#include <gtest/gtest.h>

#include "veal/ir/loop_builder.h"

namespace veal {
namespace {

TEST(AnalysisTest, SeparatesControlAndAddressFromCompute)
{
    LoopBuilder b("roles");
    const OpId iv = b.induction(1);
    const OpId c4 = b.constant(4);
    const OpId addr = b.add(iv, c4);       // Pure address computation.
    const OpId x = b.load("in", addr);
    const OpId y = b.mul(x, b.constant(7));
    b.store("out", iv, y);
    b.loopBack(iv, b.constant(64));
    Loop loop = b.build();

    const auto analysis = analyzeLoop(loop);
    ASSERT_TRUE(analysis.ok());
    EXPECT_EQ(analysis.roles[static_cast<std::size_t>(iv)],
              OpRole::kControl);
    EXPECT_EQ(analysis.roles[static_cast<std::size_t>(addr)],
              OpRole::kAddress);
    EXPECT_EQ(analysis.roles[static_cast<std::size_t>(x)], OpRole::kMemory);
    EXPECT_EQ(analysis.roles[static_cast<std::size_t>(y)],
              OpRole::kCompute);
    // Branch and its comparison are control.
    int control_count = 0;
    for (const auto& op : loop.operations()) {
        if (op.opcode == Opcode::kBranch || op.opcode == Opcode::kCmp) {
            EXPECT_EQ(analysis.roles[static_cast<std::size_t>(op.id)],
                      OpRole::kControl);
            ++control_count;
        }
    }
    EXPECT_EQ(control_count, 2);
}

TEST(AnalysisTest, SharedAddressComputationStaysCompute)
{
    // A value feeding both an address and a store *value* must execute on
    // a function unit.
    LoopBuilder b("shared");
    const OpId iv = b.induction(1);
    const OpId c2 = b.constant(2);
    const OpId shifted = b.shl(iv, c2);
    const OpId x = b.load("in", shifted);
    const OpId sum = b.add(x, shifted);  // Uses the address value as data.
    b.store("out", iv, sum);
    b.loopBack(iv, b.constant(64));
    Loop loop = b.build();

    const auto analysis = analyzeLoop(loop);
    ASSERT_TRUE(analysis.ok());
    EXPECT_EQ(analysis.roles[static_cast<std::size_t>(shifted)],
              OpRole::kCompute);
}

TEST(AnalysisTest, DerivesStreamDescriptors)
{
    LoopBuilder b("streams");
    const OpId iv = b.induction(1);
    const OpId c2 = b.constant(2);
    const OpId c8 = b.constant(8);
    // in[4*i + 8]
    const OpId addr = b.add(b.shl(iv, c2), c8);
    const OpId x = b.load("in", addr);
    b.store("out", iv, x);
    b.loopBack(iv, b.constant(64));
    Loop loop = b.build();

    const auto analysis = analyzeLoop(loop);
    ASSERT_TRUE(analysis.ok());
    ASSERT_EQ(analysis.load_streams.size(), 1u);
    EXPECT_EQ(analysis.load_streams[0].stride, 4);
    EXPECT_EQ(analysis.load_streams[0].offset, 8);
    EXPECT_FALSE(analysis.load_streams[0].is_store);
    ASSERT_EQ(analysis.store_streams.size(), 1u);
    EXPECT_EQ(analysis.store_streams[0].stride, 1);
    EXPECT_TRUE(analysis.store_streams[0].is_store);
}

TEST(AnalysisTest, DedupesIdenticalReferencePatterns)
{
    LoopBuilder b("dedupe");
    const OpId iv = b.induction(1);
    const OpId a = b.load("in", iv);
    const OpId c = b.load("in", iv);  // Same base, offset, stride.
    b.store("out", iv, b.add(a, c));
    b.loopBack(iv, b.constant(64));
    Loop loop = b.build();

    const auto analysis = analyzeLoop(loop);
    ASSERT_TRUE(analysis.ok());
    EXPECT_EQ(analysis.load_streams.size(), 1u);
    EXPECT_EQ(analysis.load_streams[0].memory_ops.size(), 2u);
}

TEST(AnalysisTest, DistinctOffsetsAreDistinctStreams)
{
    LoopBuilder b("offsets");
    const OpId iv = b.induction(1);
    const OpId c1 = b.constant(1);
    const OpId a = b.load("in", iv);
    const OpId c = b.load("in", b.add(iv, c1));
    b.store("out", iv, b.add(a, c));
    b.loopBack(iv, b.constant(64));
    Loop loop = b.build();

    const auto analysis = analyzeLoop(loop);
    ASSERT_TRUE(analysis.ok());
    EXPECT_EQ(analysis.load_streams.size(), 2u);
}

TEST(AnalysisTest, LiveInBaseFoldsIntoStream)
{
    LoopBuilder b("base");
    const OpId iv = b.induction(1);
    const OpId base = b.liveIn("ptr");
    const OpId x = b.load("in", b.add(base, iv));
    b.store("out", iv, x);
    b.loopBack(iv, b.constant(64));
    Loop loop = b.build();

    const auto analysis = analyzeLoop(loop);
    ASSERT_TRUE(analysis.ok());
    ASSERT_EQ(analysis.load_streams.size(), 1u);
    EXPECT_EQ(analysis.load_streams[0].stride, 1);
    // The symbolic live-in appears in the base label.
    EXPECT_NE(analysis.load_streams[0].base.find("v"), std::string::npos);
}

TEST(AnalysisTest, CarriedInductionUseShiftsOffset)
{
    LoopBuilder b("carried");
    const OpId iv = b.induction(2);
    // Address uses last iteration's induction value: offset -step.
    const OpId x = b.load("in", LoopBuilder::carried(iv, 1));
    b.store("out", iv, x);
    b.loopBack(iv, b.constant(64));
    Loop loop = b.build();

    const auto analysis = analyzeLoop(loop);
    ASSERT_TRUE(analysis.ok());
    ASSERT_EQ(analysis.load_streams.size(), 1u);
    EXPECT_EQ(analysis.load_streams[0].stride, 2);
    EXPECT_EQ(analysis.load_streams[0].offset, -2);
}

TEST(AnalysisTest, RejectsNonAffineAddress)
{
    LoopBuilder b("nonaffine");
    const OpId iv = b.induction(1);
    const OpId x = b.load("table", iv);
    const OpId indirect = b.load("data", x);  // Data-dependent address.
    b.store("out", iv, indirect);
    b.loopBack(iv, b.constant(64));
    Loop loop = b.build();

    const auto analysis = analyzeLoop(loop);
    EXPECT_FALSE(analysis.ok());
    EXPECT_EQ(analysis.reject, AnalysisReject::kNonAffineAddress);
}

TEST(AnalysisTest, RejectsSubroutineCall)
{
    LoopBuilder b("call");
    const OpId iv = b.induction(1);
    const OpId x = b.load("in", iv);
    b.call("sin", {Operand{x, 0}});
    b.loopBack(iv, b.constant(64));
    Loop loop = b.build();

    const auto analysis = analyzeLoop(loop);
    EXPECT_FALSE(analysis.ok());
    EXPECT_EQ(analysis.reject, AnalysisReject::kSubroutineCall);
}

TEST(AnalysisTest, RejectsSpeculativeLoop)
{
    LoopBuilder b("while");
    b.markNeedsSpeculation();
    const OpId iv = b.induction(1);
    const OpId x = b.load("in", iv);
    b.store("out", iv, x);
    b.loopBack(iv, b.constant(64));
    Loop loop = b.build();

    const auto analysis = analyzeLoop(loop);
    EXPECT_FALSE(analysis.ok());
    EXPECT_EQ(analysis.reject, AnalysisReject::kNeedsSpeculation);
}

TEST(AnalysisTest, ChargesLoopAnalysisPhase)
{
    LoopBuilder b("meter");
    const OpId iv = b.induction(1);
    const OpId x = b.load("in", iv);
    b.store("out", iv, x);
    b.loopBack(iv, b.constant(64));
    Loop loop = b.build();

    CostMeter meter;
    const auto analysis = analyzeLoop(loop, &meter);
    ASSERT_TRUE(analysis.ok());
    EXPECT_GT(meter.units(TranslationPhase::kLoopAnalysis), 0u);
    EXPECT_EQ(meter.units(TranslationPhase::kScheduling), 0u);
}

TEST(AnalysisTest, NumComputeOpsCountsOnlyCompute)
{
    LoopBuilder b("count");
    const OpId iv = b.induction(1);
    const OpId x = b.load("in", iv);
    const OpId y = b.add(x, b.constant(1));
    const OpId z = b.mul(y, b.constant(3));
    b.store("out", iv, z);
    b.loopBack(iv, b.constant(64));
    Loop loop = b.build();

    const auto analysis = analyzeLoop(loop);
    ASSERT_TRUE(analysis.ok());
    EXPECT_EQ(analysis.numComputeOps(), 2);  // add + mul
}

}  // namespace
}  // namespace veal
