#include "veal/vm/translator.h"

#include <gtest/gtest.h>

#include "veal/ir/loop_builder.h"
#include "veal/workloads/kernels.h"

namespace veal {
namespace {

Loop
makeModerateLoop()
{
    LoopBuilder b("moderate");
    const OpId iv = b.induction(1);
    const OpId x = b.load("in", iv);
    const OpId y = b.load("in2", iv);
    OpId v = b.add(x, y);
    v = b.xorOp(v, x);
    const OpId acc = b.add(v, LoopBuilder::carried(kNoOp, 0));
    b.loop().mutableOp(acc).inputs[1] = LoopBuilder::carried(acc, 1);
    b.store("out", iv, acc);
    b.loopBack(iv, b.constant(256));
    return b.build();
}

TEST(TranslatorTest, AllDynamicModesSucceedOnEasyLoop)
{
    Loop loop = makeModerateLoop();
    const LaConfig la = LaConfig::proposed();
    for (const auto mode : {TranslationMode::kStatic,
                            TranslationMode::kFullyDynamic,
                            TranslationMode::kFullyDynamicHeight}) {
        const auto result = translateLoop(loop, la, mode);
        EXPECT_TRUE(result.ok) << toString(mode);
        EXPECT_EQ(result.reject, TranslationReject::kNone);
    }
}

TEST(TranslatorTest, StaticModeHasZeroPenalty)
{
    Loop loop = makeModerateLoop();
    const auto result = translateLoop(loop, LaConfig::proposed(),
                                      TranslationMode::kStatic);
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(result.penaltyCycles(), 0.0);
    // Work is still metered, just not charged at runtime.
    EXPECT_GT(result.meter.totalInstructions(), 0.0);
}

TEST(TranslatorTest, HeightModeIsCheaperThanSwing)
{
    Loop loop = makeShaMixLoop("sha", 3);
    const LaConfig la = LaConfig::proposed();
    const auto swing =
        translateLoop(loop, la, TranslationMode::kFullyDynamic);
    const auto height =
        translateLoop(loop, la, TranslationMode::kFullyDynamicHeight);
    ASSERT_TRUE(swing.ok);
    ASSERT_TRUE(height.ok);
    EXPECT_LT(height.penaltyCycles(), swing.penaltyCycles());
}

TEST(TranslatorTest, HybridIsCheapestDynamicMode)
{
    Loop loop = makeShaMixLoop("sha2", 3);
    const LaConfig la = LaConfig::proposed();
    const auto annotations = precompileAnnotations(loop, la);
    const auto hybrid = translateLoop(
        loop, la, TranslationMode::kHybridStaticCcaPriority, &annotations);
    const auto swing =
        translateLoop(loop, la, TranslationMode::kFullyDynamic);
    const auto height =
        translateLoop(loop, la, TranslationMode::kFullyDynamicHeight);
    ASSERT_TRUE(hybrid.ok);
    EXPECT_LT(hybrid.penaltyCycles(), height.penaltyCycles());
    EXPECT_LT(hybrid.penaltyCycles(), swing.penaltyCycles());
}

TEST(TranslatorTest, PriorityDominatesSwingTranslationTime)
{
    // Figure 8: priority is by far the longest phase of dynamic
    // translation for recurrence-heavy loops.
    Loop loop = makeShaMixLoop("sha3", 3);
    const auto result = translateLoop(loop, LaConfig::proposed(),
                                      TranslationMode::kFullyDynamic);
    ASSERT_TRUE(result.ok);
    const double total = result.meter.totalInstructions();
    const double priority =
        result.meter.instructions(TranslationPhase::kPriority);
    EXPECT_GT(priority / total, 0.4);
}

TEST(TranslatorTest, RejectsCallLoop)
{
    Loop loop = makeMathCallLoop("libm");
    const auto result = translateLoop(loop, LaConfig::proposed(),
                                      TranslationMode::kFullyDynamic);
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.reject, TranslationReject::kAnalysis);
}

TEST(TranslatorTest, RejectsTooManyLoadStreams)
{
    Loop loop = makeStencilNLoop("wide", 20);
    const auto result = translateLoop(loop, LaConfig::proposed(),
                                      TranslationMode::kFullyDynamic);
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.reject, TranslationReject::kTooManyLoadStreams);
}

TEST(TranslatorTest, RejectsMissingFpUnits)
{
    LoopBuilder b("fp");
    const OpId iv = b.induction(1);
    const OpId x = b.load("in", iv);
    b.store("out", iv, b.fadd(x, x));
    b.loopBack(iv, b.constant(64));
    LaConfig la = LaConfig::proposed();
    la.num_fp_units = 0;
    const auto result =
        translateLoop(b.build(), la, TranslationMode::kFullyDynamic);
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.reject, TranslationReject::kNoFuForOpcode);
}

TEST(TranslatorTest, RejectsWhenMaxIiTooSmall)
{
    Loop loop = makeShaMixLoop("sha4", 3);  // RecMII well above 4.
    LaConfig la = LaConfig::proposed();
    la.max_ii = 4;
    const auto result =
        translateLoop(loop, la, TranslationMode::kFullyDynamic);
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.reject, TranslationReject::kScheduleFailed);
}

TEST(TranslatorTest, RejectsWhenRegistersTooFew)
{
    Loop loop = makeFirLoop("fir", 8);  // 8 coefficient live-ins.
    LaConfig la = LaConfig::proposed();
    la.num_int_registers = 2;
    const auto result =
        translateLoop(loop, la, TranslationMode::kFullyDynamic);
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.reject, TranslationReject::kTooFewRegisters);
}

TEST(TranslatorTest, NoCcaMachineIgnoresStaticCcaAnnotations)
{
    // Paper: statically identified subgraphs still execute as individual
    // ops when no CCA exists -- full binary compatibility.
    Loop loop = makeShaMixLoop("sha5", 3);
    LaConfig with_cca = LaConfig::proposed();
    const auto annotations = precompileAnnotations(loop, with_cca);
    ASSERT_TRUE(annotations.cca_mapping.has_value());
    ASSERT_FALSE(annotations.cca_mapping->groups.empty());

    LaConfig no_cca = with_cca;
    no_cca.num_cca_units = 0;
    no_cca.cca.reset();
    const auto result = translateLoop(
        loop, no_cca, TranslationMode::kHybridStaticCcaPriority,
        &annotations);
    ASSERT_TRUE(result.ok);
    EXPECT_TRUE(result.mapping.groups.empty());
}

TEST(TranslatorTest, AnnotationsEncodePriorityPerOp)
{
    Loop loop = makeModerateLoop();
    const auto annotations =
        precompileAnnotations(loop, LaConfig::proposed());
    ASSERT_TRUE(annotations.op_priority.has_value());
    EXPECT_EQ(annotations.op_priority->size(),
              static_cast<std::size_t>(loop.size()));
    // At least the scheduled ops carry non-negative encoded ranks.
    int encoded = 0;
    for (const int value : *annotations.op_priority)
        encoded += value >= 0 ? 1 : 0;
    EXPECT_GT(encoded, 3);
}

TEST(TranslatorTest, FailedAnalysisProducesEmptyAnnotations)
{
    Loop loop = makeMathCallLoop("libm2");
    const auto annotations =
        precompileAnnotations(loop, LaConfig::proposed());
    EXPECT_FALSE(annotations.cca_mapping.has_value());
    EXPECT_FALSE(annotations.op_priority.has_value());
}

TEST(TranslatorTest, ModeNamesAreDistinct)
{
    EXPECT_STRNE(toString(TranslationMode::kStatic),
                 toString(TranslationMode::kFullyDynamic));
    EXPECT_STRNE(toString(TranslationMode::kFullyDynamicHeight),
                 toString(TranslationMode::kHybridStaticCcaPriority));
}

}  // namespace
}  // namespace veal
