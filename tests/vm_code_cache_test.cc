#include "veal/vm/code_cache.h"

#include <gtest/gtest.h>

namespace veal {
namespace {

TEST(CodeCacheTest, MissThenHit)
{
    CodeCache cache(4);
    EXPECT_FALSE(cache.lookup("a"));
    cache.insert("a");
    EXPECT_TRUE(cache.lookup("a"));
    EXPECT_EQ(cache.misses(), 1);
    EXPECT_EQ(cache.hits(), 1);
}

TEST(CodeCacheTest, EvictsLeastRecentlyUsed)
{
    CodeCache cache(2);
    cache.insert("a");
    cache.insert("b");
    EXPECT_TRUE(cache.lookup("a"));  // a is now most recent.
    cache.insert("c");               // evicts b.
    EXPECT_TRUE(cache.lookup("a"));
    EXPECT_FALSE(cache.lookup("b"));
    EXPECT_TRUE(cache.lookup("c"));
}

TEST(CodeCacheTest, LookupRefreshesRecency)
{
    CodeCache cache(2);
    cache.insert("a");
    cache.insert("b");
    // Without the lookup, "a" would be the LRU victim.
    EXPECT_TRUE(cache.lookup("a"));
    cache.insert("c");
    EXPECT_FALSE(cache.lookup("b"));
    EXPECT_TRUE(cache.lookup("a"));
}

TEST(CodeCacheTest, ReinsertExistingKeyDoesNotGrow)
{
    CodeCache cache(3);
    cache.insert("a");
    cache.insert("a");
    cache.insert("a");
    EXPECT_EQ(cache.size(), 1);
}

TEST(CodeCacheTest, CapacityIsRespected)
{
    CodeCache cache(16);  // The paper's configuration.
    for (int i = 0; i < 100; ++i)
        cache.insert("loop" + std::to_string(i));
    EXPECT_EQ(cache.size(), 16);
    EXPECT_EQ(cache.capacity(), 16);
    // The 16 most recent survive.
    for (int i = 84; i < 100; ++i)
        EXPECT_TRUE(cache.lookup("loop" + std::to_string(i)));
}

TEST(CodeCacheTest, ClearResetsEverything)
{
    CodeCache cache(2);
    cache.insert("a");
    cache.lookup("a");
    cache.lookup("zzz");
    cache.clear();
    EXPECT_EQ(cache.size(), 0);
    EXPECT_EQ(cache.hits(), 0);
    EXPECT_EQ(cache.misses(), 0);
    EXPECT_FALSE(cache.lookup("a"));
}

TEST(CodeCacheTest, WorkingSetWithinCapacityNeverThrashes)
{
    CodeCache cache(8);
    for (int round = 0; round < 10; ++round) {
        for (int i = 0; i < 8; ++i) {
            const std::string key = "k" + std::to_string(i);
            if (!cache.lookup(key))
                cache.insert(key);
        }
    }
    // 8 compulsory misses, everything else hits.
    EXPECT_EQ(cache.misses(), 8);
    EXPECT_EQ(cache.hits(), 72);
}

TEST(CodeCacheTest, WorkingSetBeyondCapacityThrashesUnderLru)
{
    CodeCache cache(4);
    for (int round = 0; round < 5; ++round) {
        for (int i = 0; i < 5; ++i) {
            const std::string key = "k" + std::to_string(i);
            if (!cache.lookup(key))
                cache.insert(key);
        }
    }
    // Round-robin over 5 keys with 4 LRU slots: every access misses.
    EXPECT_EQ(cache.hits(), 0);
    EXPECT_EQ(cache.misses(), 25);
}

TEST(CodeCacheDeathTest, ZeroCapacityPanics)
{
    EXPECT_DEATH(CodeCache cache(0), "");
}

}  // namespace
}  // namespace veal
