#include "veal/vm/code_cache.h"

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "veal/fuzz/corpus.h"
#include "veal/ir/loop_parser.h"
#include "veal/support/metrics/metrics.h"

#ifndef VEAL_CORPUS_DIR
#error "VEAL_CORPUS_DIR must point at tests/corpus"
#endif

namespace veal {
namespace {

TEST(CodeCacheTest, MissThenHit)
{
    CodeCache cache(4);
    EXPECT_FALSE(cache.lookup("a"));
    cache.insert("a");
    EXPECT_TRUE(cache.lookup("a"));
    EXPECT_EQ(cache.misses(), 1);
    EXPECT_EQ(cache.hits(), 1);
}

TEST(CodeCacheTest, EvictsLeastRecentlyUsed)
{
    CodeCache cache(2);
    cache.insert("a");
    cache.insert("b");
    EXPECT_TRUE(cache.lookup("a"));  // a is now most recent.
    cache.insert("c");               // evicts b.
    EXPECT_TRUE(cache.lookup("a"));
    EXPECT_FALSE(cache.lookup("b"));
    EXPECT_TRUE(cache.lookup("c"));
}

TEST(CodeCacheTest, LookupRefreshesRecency)
{
    CodeCache cache(2);
    cache.insert("a");
    cache.insert("b");
    // Without the lookup, "a" would be the LRU victim.
    EXPECT_TRUE(cache.lookup("a"));
    cache.insert("c");
    EXPECT_FALSE(cache.lookup("b"));
    EXPECT_TRUE(cache.lookup("a"));
}

TEST(CodeCacheTest, ReinsertExistingKeyDoesNotGrow)
{
    CodeCache cache(3);
    cache.insert("a");
    cache.insert("a");
    cache.insert("a");
    EXPECT_EQ(cache.size(), 1);
}

TEST(CodeCacheTest, CapacityIsRespected)
{
    CodeCache cache(16);  // The paper's configuration.
    for (int i = 0; i < 100; ++i)
        cache.insert("loop" + std::to_string(i));
    EXPECT_EQ(cache.size(), 16);
    EXPECT_EQ(cache.capacity(), 16);
    // The 16 most recent survive.
    for (int i = 84; i < 100; ++i)
        EXPECT_TRUE(cache.lookup("loop" + std::to_string(i)));
}

TEST(CodeCacheTest, ClearResetsEverything)
{
    CodeCache cache(2);
    cache.insert("a");
    cache.lookup("a");
    cache.lookup("zzz");
    cache.clear();
    EXPECT_EQ(cache.size(), 0);
    EXPECT_EQ(cache.hits(), 0);
    EXPECT_EQ(cache.misses(), 0);
    EXPECT_FALSE(cache.lookup("a"));
}

TEST(CodeCacheTest, WorkingSetWithinCapacityNeverThrashes)
{
    CodeCache cache(8);
    for (int round = 0; round < 10; ++round) {
        for (int i = 0; i < 8; ++i) {
            const std::string key = "k" + std::to_string(i);
            if (!cache.lookup(key))
                cache.insert(key);
        }
    }
    // 8 compulsory misses, everything else hits.
    EXPECT_EQ(cache.misses(), 8);
    EXPECT_EQ(cache.hits(), 72);
}

TEST(CodeCacheTest, WorkingSetBeyondCapacityThrashesUnderLru)
{
    CodeCache cache(4);
    for (int round = 0; round < 5; ++round) {
        for (int i = 0; i < 5; ++i) {
            const std::string key = "k" + std::to_string(i);
            if (!cache.lookup(key))
                cache.insert(key);
        }
    }
    // Round-robin over 5 keys with 4 LRU slots: every access misses.
    EXPECT_EQ(cache.hits(), 0);
    EXPECT_EQ(cache.misses(), 25);
}

TEST(CodeCacheTest, InsertReportsWhatActuallyHappened)
{
    CodeCache cache(2);
    EXPECT_EQ(cache.insert("a"), CodeCache::InsertOutcome::kInserted);
    EXPECT_EQ(cache.insert("a"), CodeCache::InsertOutcome::kRefreshed);
    EXPECT_EQ(cache.insert("b"), CodeCache::InsertOutcome::kInserted);
    // Full cache: a genuinely new key still reports kInserted (the
    // eviction is visible in evictions(), not the outcome).
    EXPECT_EQ(cache.insert("c"), CodeCache::InsertOutcome::kInserted);
}

TEST(CodeCacheTest, CountsEvictionsButNotRefreshes)
{
    CodeCache cache(2);
    cache.insert("a");
    cache.insert("b");
    EXPECT_EQ(cache.evictions(), 0);
    cache.insert("a");  // Refresh of a resident key: never evicts.
    EXPECT_EQ(cache.evictions(), 0);
    cache.insert("c");  // Evicts b (a was refreshed above).
    EXPECT_EQ(cache.evictions(), 1);
    EXPECT_FALSE(cache.lookup("b"));
    cache.insert("d");
    EXPECT_EQ(cache.evictions(), 2);
}

TEST(CodeCacheTest, StatsSnapshotMatchesAccessors)
{
    CodeCache cache(2);
    cache.lookup("a");  // miss
    cache.insert("a");
    cache.lookup("a");  // hit
    cache.insert("b");
    cache.insert("c");  // evicts a
    const CodeCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.hits, cache.hits());
    EXPECT_EQ(stats.misses, cache.misses());
    EXPECT_EQ(stats.evictions, 1);
    EXPECT_EQ(stats.size, 2);
    EXPECT_EQ(stats.capacity, 2);
}

TEST(CodeCacheTest, RecordIntoUsesThePrefix)
{
    CodeCache cache(4);
    cache.lookup("a");
    cache.insert("a");
    cache.lookup("a");
    metrics::Registry registry;
    cache.recordInto(registry, "cache");
    EXPECT_EQ(registry.counter("cache.hits"), 1);
    EXPECT_EQ(registry.counter("cache.misses"), 1);
    EXPECT_EQ(registry.counter("cache.evictions"), 0);
    EXPECT_EQ(registry.counter("cache.resident"), 1);
}

TEST(CodeCacheTest, ClearResetsEvictions)
{
    CodeCache cache(1);
    cache.insert("a");
    cache.insert("b");
    EXPECT_EQ(cache.evictions(), 1);
    cache.clear();
    EXPECT_EQ(cache.evictions(), 0);
    EXPECT_EQ(cache.stats().size, 0);
}

TEST(CodeCacheTest, EvictedKeyReportsTheLruVictim)
{
    CodeCache cache(2);
    std::string evicted;
    EXPECT_EQ(cache.insert("a", &evicted), CodeCache::InsertOutcome::kInserted);
    EXPECT_TRUE(evicted.empty());
    cache.insert("b", &evicted);
    EXPECT_TRUE(evicted.empty()) << "spare capacity never evicts";
    cache.insert("c", &evicted);
    EXPECT_EQ(evicted, "a");
    EXPECT_FALSE(cache.lookup("a"));
}

TEST(CodeCacheTest, EvictedKeyBufferIsClearedOnEveryNonEvictingPath)
{
    // The contract the service and the hardened VM rely on: callers
    // reuse one buffer across inserts, so a non-evicting insert MUST
    // clear it -- a stale victim from a previous call would make the
    // owner delete a live payload (and, via the persistent store, a
    // live blob another run could have warm-started from).
    CodeCache cache(2);
    std::string evicted;
    cache.insert("a", &evicted);
    cache.insert("b", &evicted);
    cache.insert("c", &evicted);  // Evicts "a".
    ASSERT_EQ(evicted, "a");

    // Refresh of a resident key: never evicts, must clear the buffer.
    cache.insert("b", &evicted);
    EXPECT_TRUE(evicted.empty())
        << "stale victim survived a refreshing insert";

    // Erase-then-insert with spare capacity: same requirement.
    cache.insert("c", &evicted);  // Refresh, clears again.
    cache.erase("b");
    evicted = "poison";
    cache.insert("d", &evicted);  // Fills the erased slot: no eviction.
    EXPECT_TRUE(evicted.empty())
        << "stale victim survived a spare-capacity insert";
}

TEST(CodeCacheTest, EraseIsNotAnEvictionAndNeverTouchesTheBuffer)
{
    CodeCache cache(2);
    std::string evicted;
    cache.insert("a", &evicted);
    cache.insert("b", &evicted);
    EXPECT_TRUE(cache.erase("a"));
    EXPECT_FALSE(cache.erase("zzz"));
    EXPECT_EQ(cache.evictions(), 0)
        << "invalidation must not count as capacity pressure";
    // The slot freed by erase absorbs the next insert evictionlessly.
    cache.insert("c", &evicted);
    EXPECT_TRUE(evicted.empty());
    EXPECT_EQ(cache.evictions(), 0);
}

TEST(CodeCacheDeathTest, ZeroCapacityPanics)
{
    EXPECT_DEATH(CodeCache cache(0), "");
}

/**
 * The identity of one translation: the loop text alone is not enough
 * (the same loop translated for two configurations yields different
 * control), so the key spans (config, mode, loop).
 */
std::string
translationKey(const CorpusCase& repro)
{
    return encodeLaConfig(repro.config) + "\n" + toString(repro.mode) +
           "\n" + printLoop(repro.loop);
}

/** Every checked-in corpus case, keyed by its full printed identity. */
std::vector<CorpusCase>
loadCorpus()
{
    std::vector<CorpusCase> cases;
    for (const auto& path : listCorpusFiles(VEAL_CORPUS_DIR)) {
        CorpusParseResult parsed = loadCorpusFile(path);
        EXPECT_TRUE(std::holds_alternative<CorpusCase>(parsed)) << path;
        if (std::holds_alternative<CorpusCase>(parsed))
            cases.push_back(std::move(std::get<CorpusCase>(parsed)));
    }
    return cases;
}

TEST(CodeCacheCorpusTest, ResidentCorpusWorkingSetTranslatesOnce)
{
    const auto corpus = loadCorpus();
    ASSERT_GE(corpus.size(), 10u);

    CodeCache cache(static_cast<int>(corpus.size()));
    int translations = 0;
    for (int round = 0; round < 4; ++round) {
        for (const auto& repro : corpus) {
            const std::string key = translationKey(repro);
            if (cache.lookup(key))
                continue;
            translateLoop(repro.loop, repro.config, repro.mode);
            ++translations;
            cache.insert(key);
        }
    }
    // One compulsory translation per loop; every later invocation hits.
    EXPECT_EQ(translations, static_cast<int>(corpus.size()));
    EXPECT_EQ(cache.misses(), static_cast<std::int64_t>(corpus.size()));
    EXPECT_EQ(cache.hits(),
              static_cast<std::int64_t>(3 * corpus.size()));
}

TEST(CodeCacheCorpusTest, CapacityPressureForcesRetranslation)
{
    const auto corpus = loadCorpus();
    ASSERT_GE(corpus.size(), 10u);

    // Fewer slots than corpus loops: round-robin invocation thrashes the
    // LRU cache, so every invocation re-translates.
    CodeCache cache(4);
    std::map<std::string, int> first_ii;
    int translations = 0;
    for (int round = 0; round < 2; ++round) {
        for (const auto& repro : corpus) {
            const std::string key = translationKey(repro);
            if (cache.lookup(key))
                continue;
            const TranslationResult translation =
                translateLoop(repro.loop, repro.config, repro.mode);
            ++translations;
            cache.insert(key);

            // Re-translation after eviction must reproduce the original
            // control image, or a cache eviction would silently change
            // accelerator behaviour.
            const int ii = translation.ok ? translation.schedule.ii : -1;
            const auto [it, inserted] = first_ii.try_emplace(key, ii);
            if (!inserted) {
                EXPECT_EQ(it->second, ii) << repro.loop.name();
            }
        }
    }
    EXPECT_EQ(translations, static_cast<int>(2 * corpus.size()));
    EXPECT_EQ(cache.hits(), 0);
}

TEST(CodeCacheCorpusTest, RetranslationIsFullyDeterministic)
{
    for (const auto& repro : loadCorpus()) {
        const TranslationResult first =
            translateLoop(repro.loop, repro.config, repro.mode);
        const TranslationResult second =
            translateLoop(repro.loop, repro.config, repro.mode);

        ASSERT_EQ(first.ok, second.ok) << repro.loop.name();
        if (!first.ok) {
            EXPECT_EQ(first.reject, second.reject) << repro.loop.name();
            continue;
        }
        EXPECT_EQ(first.schedule.ii, second.schedule.ii)
            << repro.loop.name();
        EXPECT_EQ(first.schedule.time, second.schedule.time)
            << repro.loop.name();
        EXPECT_EQ(first.schedule.fu_instance, second.schedule.fu_instance)
            << repro.loop.name();
        EXPECT_EQ(first.schedule.length, second.schedule.length);
        EXPECT_EQ(first.schedule.stage_count, second.schedule.stage_count);
        EXPECT_EQ(first.registers.reg_of_unit, second.registers.reg_of_unit)
            << repro.loop.name();
    }
}

}  // namespace
}  // namespace veal
