#include "veal/fuzz/driver.h"

#include <algorithm>
#include <filesystem>
#include <set>

#include <gtest/gtest.h>

#include "tests/testing/random_workloads.h"
#include "veal/ir/loop_parser.h"

namespace veal {
namespace {

using testing::injectOffByOne;

TEST(FuzzPresets, CoverTheProposedDesignPointAndStressCorners)
{
    const auto presets = fuzzConfigPresets();
    ASSERT_GE(presets.size(), 5u);

    std::set<std::string> names;
    for (const auto& preset : presets)
        names.insert(preset.name);
    EXPECT_EQ(names.size(), presets.size()) << "duplicate preset names";
    EXPECT_TRUE(names.count("proposed"));
    EXPECT_TRUE(names.count("min-regs"));
    EXPECT_TRUE(names.count("one-fu"));
    EXPECT_TRUE(names.count("max-ii-4"));
    EXPECT_TRUE(names.count("one-load-stream"));

    const auto by_name = fuzzConfigByName("min-regs");
    ASSERT_TRUE(by_name.has_value());
    EXPECT_EQ(by_name->config.num_int_registers, 2);
    EXPECT_FALSE(fuzzConfigByName("no-such-config").has_value());
}

TEST(FuzzCases, AreDeterministicFunctionsOfSeedAndIndex)
{
    EXPECT_EQ(makeFuzzCaseSeed(1, 0), makeFuzzCaseSeed(1, 0));
    EXPECT_NE(makeFuzzCaseSeed(1, 0), makeFuzzCaseSeed(1, 1));
    EXPECT_NE(makeFuzzCaseSeed(1, 0), makeFuzzCaseSeed(2, 0));

    EXPECT_EQ(printLoop(makeFuzzCaseLoop(1, 5)),
              printLoop(makeFuzzCaseLoop(1, 5)));
    EXPECT_NE(printLoop(makeFuzzCaseLoop(1, 5)),
              printLoop(makeFuzzCaseLoop(1, 6)));

    // The mode stream eventually exercises every static/dynamic split.
    std::set<TranslationMode> modes;
    for (int index = 0; index < 64; ++index)
        modes.insert(makeFuzzCaseMode(1, index));
    EXPECT_EQ(modes.size(), 4u);
}

TEST(FuzzDriver, SummaryIsIdenticalForAnyThreadCount)
{
    FuzzOptions options;
    options.runs = 60;
    options.seed = 7;
    options.threads = 1;
    const FuzzSummary serial = runFuzz(options);

    options.threads = 4;
    const FuzzSummary parallel = runFuzz(options);

    EXPECT_EQ(serial.render(), parallel.render());
    EXPECT_TRUE(serial.clean()) << serial.render();

    int total = 0;
    for (const auto& [config, per_outcome] : serial.counts) {
        for (const auto& [outcome, count] : per_outcome)
            total += count;
    }
    EXPECT_EQ(total, options.runs);
    EXPECT_EQ(serial.counts.size(), fuzzConfigPresets().size());

    const std::string report = serial.render();
    EXPECT_NE(report.find("runs=60"), std::string::npos);
    EXPECT_NE(report.find("failures: 0"), std::string::npos);
}

TEST(FuzzDriver, SchedDiffCampaignIsCleanAndDeterministic)
{
    // The --sched-diff mode: every case diffs the optimized kernels
    // against the reference facade.  The overhauled hot path must make
    // this campaign clean, with the usual any-thread-count determinism.
    FuzzOptions options;
    options.runs = 80;
    options.seed = 11;
    options.sched_diff = true;
    options.threads = 1;
    const FuzzSummary serial = runFuzz(options);

    options.threads = 4;
    const FuzzSummary parallel = runFuzz(options);

    EXPECT_EQ(serial.render(), parallel.render());
    EXPECT_TRUE(serial.clean()) << serial.render();
}

TEST(FuzzDriver, SchedDiffCaseReportsDivergenceDetail)
{
    // A direct probe of the per-case oracle on a known-good loop.
    const Loop loop = makeFuzzCaseLoop(1, 0);
    const OracleReport report = runSchedDiffCase(
        loop, LaConfig::proposed(), TranslationMode::kFullyDynamic);
    EXPECT_FALSE(isFailure(report.outcome)) << report.detail;
}

TEST(FuzzDriver, InjectedBugFlowsThroughShrinkAndCorpusSave)
{
    const std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) / "veal-fuzz-driver";
    std::filesystem::remove_all(dir);

    FuzzOptions options;
    options.runs = 30;
    options.seed = 7;
    options.threads = 2;
    options.shrink = true;
    options.corpus_dir = dir.string();
    options.configs = {*fuzzConfigByName("proposed")};
    options.perturb = injectOffByOne;

    const FuzzSummary summary = runFuzz(options);
    ASSERT_FALSE(summary.clean())
        << "the injected bug must surface within 30 cases";

    for (const auto& failure : summary.failures) {
        EXPECT_EQ(failure.report.outcome,
                  OracleOutcome::kValidatorReject)
            << failure.report.detail;
        EXPECT_LE(failure.ops_after, failure.ops_before);
        EXPECT_FALSE(failure.loop_text.empty());
        ASSERT_FALSE(failure.saved_path.empty());

        // Each saved repro is a loadable corpus case pinned to the
        // outcome the campaign observed.
        const CorpusParseResult loaded =
            loadCorpusFile(failure.saved_path);
        ASSERT_TRUE(std::holds_alternative<CorpusCase>(loaded))
            << std::get<std::string>(loaded);
        const CorpusCase& repro = std::get<CorpusCase>(loaded);
        EXPECT_EQ(repro.expect, OracleOutcome::kValidatorReject);
        EXPECT_EQ(repro.seed, failure.case_seed);
        EXPECT_EQ(repro.loop.size(), failure.ops_after);
    }

    EXPECT_EQ(listCorpusFiles(dir.string()).size(),
              summary.failures.size());
}

TEST(FuzzDriver, FaultSeedCampaignIsDeterministicAndClean)
{
    EXPECT_EQ(makeFuzzCasePlanSeed(1, 0), makeFuzzCasePlanSeed(1, 0));
    EXPECT_NE(makeFuzzCasePlanSeed(1, 0), makeFuzzCasePlanSeed(1, 1));
    EXPECT_NE(makeFuzzCasePlanSeed(1, 0), makeFuzzCasePlanSeed(2, 0));

    FuzzOptions options;
    options.runs = 40;
    options.seed = 7;
    options.fault_seed = 9;
    options.threads = 1;
    const FuzzSummary serial = runFuzz(options);

    options.threads = 4;
    const FuzzSummary parallel = runFuzz(options);

    EXPECT_EQ(serial.render(), parallel.render());
    EXPECT_TRUE(serial.clean()) << serial.render();

    // With every case under an armed plan, at least some must recover
    // at a deeper rung instead of passing nominally.
    int recovered = 0;
    for (const auto& [config, per_outcome] : serial.counts) {
        const auto hit =
            per_outcome.find(toString(OracleOutcome::kFaultRecovered));
        recovered += hit == per_outcome.end() ? 0 : hit->second;
    }
    EXPECT_GT(recovered, 0) << serial.render();
    EXPECT_NE(serial.render().find("fault-recovered"), std::string::npos);
}

TEST(FuzzDriver, ShrunkReprosUnderFaultsKeepTheirFaultPlan)
{
    const std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) / "veal-fuzz-faults";
    std::filesystem::remove_all(dir);

    FuzzOptions options;
    options.runs = 30;
    options.seed = 7;
    options.fault_seed = 13;
    options.threads = 2;
    options.shrink = true;
    options.corpus_dir = dir.string();
    options.configs = {*fuzzConfigByName("proposed")};
    options.perturb = injectOffByOne;

    const FuzzSummary summary = runFuzz(options);
    ASSERT_FALSE(summary.clean())
        << "the injected bug must surface within 30 cases";

    for (const auto& failure : summary.failures) {
        // The injected bug stays the failure class even while a fault
        // plan is armed -- recovery never masks a real validator reject.
        EXPECT_EQ(failure.report.outcome,
                  OracleOutcome::kValidatorReject)
            << failure.report.detail;
        ASSERT_FALSE(failure.saved_path.empty());

        const CorpusParseResult loaded =
            loadCorpusFile(failure.saved_path);
        ASSERT_TRUE(std::holds_alternative<CorpusCase>(loaded))
            << std::get<std::string>(loaded);
        const CorpusCase& repro = std::get<CorpusCase>(loaded);
        EXPECT_EQ(repro.expect, OracleOutcome::kValidatorReject);
        ASSERT_TRUE(repro.fault_plan_seed.has_value());
        EXPECT_EQ(*repro.fault_plan_seed,
                  makeFuzzCasePlanSeed(*options.fault_seed,
                                       failure.case_index))
            << "the repro must replay under the exact plan that was "
               "armed when the failure was found";
    }
}

}  // namespace
}  // namespace veal
