#include "veal/vm/vm.h"

#include <gtest/gtest.h>

#include "veal/arch/cpu_config.h"
#include "veal/fault/fault_injector.h"
#include "veal/fault/fault_plan.h"
#include "veal/workloads/kernels.h"

namespace veal {
namespace {

/** One unfissioned dot-product site; trivially schedulable nominally. */
Application
singleSiteApp(std::int64_t invocations)
{
    Application app;
    app.name = "ladder-app";
    app.sites.push_back(LoopSite{.loop = makeDotProductLoop("dot"),
                                 .fissioned = {},
                                 .invocations = invocations,
                                 .iterations = 16});
    app.acyclic_cycles = 1000;
    return app;
}

/** Hardened run of @p app under @p plan; returns the fault report. */
FaultRunReport
runHardened(const Application& app, const FaultPlan& plan,
            int cache_entries = 4)
{
    VmOptions options;
    options.mode = TranslationMode::kFullyDynamic;
    options.code_cache_entries = cache_entries;
    const VirtualMachine vm(LaConfig::proposed(), CpuConfig::arm11(),
                            options);
    FaultInjector injector(plan);
    FaultRunReport report;
    (void)vm.run(app, nullptr, &injector, &report);
    return report;
}

/**
 * Scheduler-placement faults consume one probe per translation attempt,
 * so the window width selects exactly how deep the site degrades:
 * probe 0 is the nominal rung, 1 relaxed II, 2 no CCA, 3 the
 * no-fission site retry.  This pins the ladder's *ordering*, not just
 * its endpoints.
 */
TEST(DegradationLadder, EscalatesInExactRungOrder)
{
    const Application app = singleSiteApp(4);
    const struct {
        std::int64_t fires;
        DegradationRung expected;
    } kCases[] = {
        {1, DegradationRung::kRelaxedIi},
        {2, DegradationRung::kNoCca},
        {3, DegradationRung::kNoFission},
        {4, DegradationRung::kCpuPinned},
        {-1, DegradationRung::kCpuPinned},  // Sticky: broken forever.
    };
    for (const auto& test_case : kCases) {
        FaultPlan plan;
        plan.faults.push_back(ArmedFault{FaultSite::kSchedulerPlacement,
                                         0, test_case.fires});
        const FaultRunReport report = runHardened(app, plan);
        ASSERT_EQ(report.sites.size(), 1u);
        EXPECT_EQ(report.sites[0].rung, test_case.expected)
            << "fires=" << test_case.fires << " settled on "
            << toString(report.sites[0].rung);
        if (test_case.expected == DegradationRung::kCpuPinned) {
            EXPECT_EQ(report.la_dispatches, 0);
            EXPECT_EQ(report.cpu_dispatches, 4);
        } else {
            ASSERT_EQ(report.sites[0].pieces.size(), 1u);
            EXPECT_TRUE(report.sites[0].pieces[0].translation.ok);
            EXPECT_EQ(report.la_dispatches, 4);
        }
    }
}

TEST(DegradationLadder, NoArmedFaultStaysNominal)
{
    const FaultRunReport report =
        runHardened(singleSiteApp(4), FaultPlan{});
    ASSERT_EQ(report.sites.size(), 1u);
    EXPECT_EQ(report.sites[0].rung, DegradationRung::kNominal);
    EXPECT_EQ(report.la_dispatches, 4);
    EXPECT_EQ(report.cpu_dispatches, 0);
    EXPECT_EQ(report.checksum_invalidations, 0);
    EXPECT_EQ(report.quarantines, 0);
}

TEST(ChecksumValidation, QuarantinesAfterPlanStrikes)
{
    FaultPlan plan;
    plan.faults.push_back(ArmedFault{FaultSite::kCacheCorruption, 0, -1});
    plan.quarantine_strikes = 2;
    plan.retranslation_bound = 5;

    const FaultRunReport report = runHardened(singleSiteApp(8), plan);
    ASSERT_EQ(report.sites.size(), 1u);
    const FaultPieceReport& piece = report.sites[0].pieces[0];

    // miss, invalidate (strike 1), re-translate, invalidate (strike 2 ->
    // quarantine), then CPU for the remaining rounds.
    EXPECT_EQ(piece.checksum_invalidations, 2);
    EXPECT_EQ(piece.retranslations, 1);
    EXPECT_TRUE(piece.quarantined);
    EXPECT_EQ(piece.la_dispatches, 2);
    EXPECT_EQ(piece.cpu_dispatches, 6);
    EXPECT_EQ(report.quarantines, 1);
}

TEST(ChecksumValidation, RetranslationsNeverExceedThePlanBound)
{
    FaultPlan plan;
    plan.faults.push_back(ArmedFault{FaultSite::kCacheCorruption, 0, -1});
    plan.quarantine_strikes = 10;  // Strikes alone would allow more.
    plan.retranslation_bound = 2;

    const FaultRunReport report = runHardened(singleSiteApp(12), plan);
    const FaultPieceReport& piece = report.sites[0].pieces[0];
    EXPECT_EQ(piece.retranslations, 2);
    EXPECT_TRUE(piece.quarantined);
    EXPECT_EQ(piece.checksum_invalidations, 3);
    EXPECT_EQ(piece.la_dispatches, 3);
}

TEST(ChecksumValidation, QuarantineOutlivesCacheEviction)
{
    // Capacity-1 cache: the invalidation erases the only entry, so the
    // quarantine verdict cannot be hiding in cached state -- later
    // rounds would happily re-translate if the run-local flag were lost.
    FaultPlan plan;
    plan.faults.push_back(ArmedFault{FaultSite::kCacheCorruption, 0, -1});
    plan.quarantine_strikes = 1;
    plan.retranslation_bound = 5;

    const FaultRunReport report =
        runHardened(singleSiteApp(6), plan, /*cache_entries=*/1);
    const FaultPieceReport& piece = report.sites[0].pieces[0];
    EXPECT_TRUE(piece.quarantined);
    EXPECT_EQ(piece.checksum_invalidations, 1);
    EXPECT_EQ(piece.retranslations, 0)
        << "a quarantined piece must never be re-translated";
    EXPECT_EQ(piece.la_dispatches, 1);
    EXPECT_EQ(piece.cpu_dispatches, 5);
}

TEST(ChecksumValidation, EveryCorruptionFireIsExactlyOneInvalidation)
{
    FaultPlan plan;
    plan.faults.push_back(ArmedFault{FaultSite::kCacheCorruption, 1, 2});
    plan.quarantine_strikes = 3;
    plan.retranslation_bound = 4;

    VmOptions options;
    options.code_cache_entries = 4;
    const VirtualMachine vm(LaConfig::proposed(), CpuConfig::arm11(),
                            options);
    FaultInjector injector(plan);
    FaultRunReport report;
    (void)vm.run(singleSiteApp(10), nullptr, &injector, &report);
    EXPECT_EQ(injector.fired(FaultSite::kCacheCorruption),
              report.checksum_invalidations);
    EXPECT_GT(report.checksum_invalidations, 0);
}

TEST(HardenedRun, NullInjectorDelegatesToTheNominalOverload)
{
    const Application app = singleSiteApp(4);
    VmOptions options;
    const VirtualMachine vm(LaConfig::proposed(), CpuConfig::arm11(),
                            options);
    const AppRunResult nominal = vm.run(app);
    const AppRunResult delegated = vm.run(app, nullptr, nullptr);
    EXPECT_EQ(nominal.accelerated_cycles, delegated.accelerated_cycles);
    EXPECT_EQ(nominal.translation_cycles, delegated.translation_cycles);
    EXPECT_EQ(nominal.speedup, delegated.speedup);
}

}  // namespace
}  // namespace veal
