#include "veal/ir/scc.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace veal {
namespace {

TEST(SccTest, SingletonNodesWithoutEdges)
{
    const auto sccs = stronglyConnectedComponents(3, {});
    EXPECT_EQ(sccs.size(), 3u);
    for (const auto& scc : sccs)
        EXPECT_EQ(scc.size(), 1u);
}

TEST(SccTest, SimpleCycleIsOneComponent)
{
    const auto sccs =
        stronglyConnectedComponents(3, {{0, 1}, {1, 2}, {2, 0}});
    ASSERT_EQ(sccs.size(), 1u);
    EXPECT_EQ(sccs[0], (std::vector<int>{0, 1, 2}));
}

TEST(SccTest, ChainYieldsReverseTopologicalOrder)
{
    // 0 -> 1 -> 2: Tarjan emits sinks first.
    const auto sccs = stronglyConnectedComponents(3, {{0, 1}, {1, 2}});
    ASSERT_EQ(sccs.size(), 3u);
    EXPECT_EQ(sccs[0][0], 2);
    EXPECT_EQ(sccs[1][0], 1);
    EXPECT_EQ(sccs[2][0], 0);
}

TEST(SccTest, TwoCyclesConnectedByBridge)
{
    // Cycle {0,1} -> bridge -> cycle {2,3}.
    const auto sccs = stronglyConnectedComponents(
        4, {{0, 1}, {1, 0}, {1, 2}, {2, 3}, {3, 2}});
    ASSERT_EQ(sccs.size(), 2u);
    // Reverse topological: the downstream cycle {2,3} first.
    EXPECT_EQ(sccs[0], (std::vector<int>{2, 3}));
    EXPECT_EQ(sccs[1], (std::vector<int>{0, 1}));
}

TEST(SccTest, SelfLoopIsSingletonComponent)
{
    const auto sccs = stronglyConnectedComponents(2, {{0, 0}, {0, 1}});
    EXPECT_EQ(sccs.size(), 2u);
}

TEST(SccTest, DuplicateEdgesAreHarmless)
{
    const auto sccs = stronglyConnectedComponents(
        2, {{0, 1}, {0, 1}, {1, 0}, {1, 0}});
    ASSERT_EQ(sccs.size(), 1u);
    EXPECT_EQ(sccs[0], (std::vector<int>{0, 1}));
}

TEST(SccTest, ComplexGraph)
{
    // {0,1,2} cycle, {3} singleton, {4,5} cycle, 2->3->4.
    const auto sccs = stronglyConnectedComponents(
        6, {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 5}, {5, 4}});
    ASSERT_EQ(sccs.size(), 3u);
    std::vector<std::size_t> sizes;
    for (const auto& scc : sccs)
        sizes.push_back(scc.size());
    std::sort(sizes.begin(), sizes.end());
    EXPECT_EQ(sizes, (std::vector<std::size_t>{1, 2, 3}));
}

TEST(SccTest, EveryNodeAppearsExactlyOnce)
{
    const auto sccs = stronglyConnectedComponents(
        7, {{0, 1}, {1, 0}, {2, 3}, {4, 4}, {5, 6}});
    std::vector<int> seen;
    for (const auto& scc : sccs)
        seen.insert(seen.end(), scc.begin(), scc.end());
    std::sort(seen.begin(), seen.end());
    EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3, 4, 5, 6}));
}

TEST(SccDeathTest, OutOfRangeEdgePanics)
{
    EXPECT_DEATH(stronglyConnectedComponents(2, {{0, 5}}), "");
}

}  // namespace
}  // namespace veal
