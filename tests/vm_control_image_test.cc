#include "veal/vm/control_image.h"

#include <gtest/gtest.h>

#include "veal/ir/random_loop.h"
#include "veal/workloads/kernels.h"
#include "veal/workloads/suite.h"

namespace veal {
namespace {

TranslationResult
translateKernel(const Loop& loop)
{
    auto result = translateLoop(loop, LaConfig::proposed(),
                                TranslationMode::kFullyDynamic);
    EXPECT_TRUE(result.ok) << loop.name();
    return result;
}

TEST(ControlImageTest, RoundTripsStructuralFields)
{
    Loop loop = makeDct8Loop("dct", 1);
    const auto tr = translateKernel(loop);
    const auto image = ControlImage::encode(loop, tr);
    const auto decoded = image.decode();

    EXPECT_EQ(decoded.ii, tr.schedule.ii);
    EXPECT_EQ(decoded.stage_count, tr.schedule.stage_count);
    EXPECT_EQ(decoded.num_load_streams,
              static_cast<int>(tr.analysis.load_streams.size()));
    EXPECT_EQ(decoded.num_store_streams,
              static_cast<int>(tr.analysis.store_streams.size()));
    EXPECT_EQ(static_cast<int>(decoded.entries.size()),
              tr.graph->numFuUnits());
}

TEST(ControlImageTest, EntriesMatchTheSchedule)
{
    Loop loop = makeAdpcmStepLoop("adpcm");
    const auto tr = translateKernel(loop);
    const auto decoded = ControlImage::encode(loop, tr).decode();

    std::size_t index = 0;
    for (const auto& unit : tr.graph->units()) {
        if (unit.fu == FuClass::kNone)
            continue;
        ASSERT_LT(index, decoded.entries.size());
        const auto& entry = decoded.entries[index++];
        EXPECT_EQ(entry.fu_class, static_cast<std::uint8_t>(unit.fu));
        EXPECT_EQ(entry.slot, tr.schedule.cycleOf(unit.id));
        EXPECT_EQ(entry.stage, tr.schedule.stageOf(unit.id));
        EXPECT_EQ(entry.num_ops, unit.ops.size());
    }
}

TEST(ControlImageTest, NoModuloSlotIsEncodedTwicePerInstance)
{
    Loop loop = makeFirLoop("fir", 8);
    const auto tr = translateKernel(loop);
    const auto decoded = ControlImage::encode(loop, tr).decode();

    std::set<std::tuple<int, int, int>> seen;
    for (const auto& entry : decoded.entries) {
        // Non-pipelined units occupy multiple slots; the entry records
        // the issue slot, which is unique per (class, instance).
        EXPECT_TRUE(seen.insert({entry.fu_class, entry.fu_instance,
                                 entry.slot})
                        .second);
    }
}

TEST(ControlImageTest, SizesMatchThePapersCodeCacheBudget)
{
    // Paper §4.3: 16 translated loops fit in ~48 KB of code cache, i.e.
    // ~3 KB per loop for this LA.  Our encoding should land in the same
    // ballpark for the benchmark suite's loops.
    const auto suite = mediaFpSuite();
    std::size_t total = 0;
    int count = 0;
    for (const auto& benchmark : suite) {
        for (const auto& site : benchmark.transformed.sites) {
            std::vector<const Loop*> pieces;
            if (site.fissioned.empty()) {
                pieces.push_back(&site.loop);
            } else {
                for (const auto& piece : site.fissioned)
                    pieces.push_back(&piece);
            }
            for (const Loop* loop : pieces) {
                const auto tr =
                    translateLoop(*loop, LaConfig::proposed(),
                                  TranslationMode::kFullyDynamic);
                if (!tr.ok)
                    continue;
                total += ControlImage::encode(*loop, tr).byteSize();
                ++count;
            }
        }
    }
    ASSERT_GT(count, 0);
    const double average = static_cast<double>(total) / count;
    EXPECT_GT(average, 256.0);
    EXPECT_LT(average, 6144.0);
    // 16 cached loops: within 2x of the paper's 48 KB figure.
    EXPECT_LT(16.0 * average, 2.0 * 48.0 * 1024.0);
}

TEST(ControlImageTest, RandomLoopsEncodeAndDecode)
{
    for (std::uint64_t seed = 300; seed < 320; ++seed) {
        RandomLoopParams params;
        Loop loop = makeRandomLoop(params, seed);
        const auto tr = translateLoop(loop, LaConfig::proposed(),
                                      TranslationMode::kFullyDynamic);
        if (!tr.ok)
            continue;
        const auto image = ControlImage::encode(loop, tr);
        const auto decoded = image.decode();
        EXPECT_EQ(decoded.ii, tr.schedule.ii) << "seed " << seed;
        EXPECT_EQ(static_cast<int>(decoded.entries.size()),
                  tr.graph->numFuUnits())
            << "seed " << seed;
        EXPECT_GT(image.byteSize(), 16u);
    }
}

TEST(ControlImageDeathTest, DecodingGarbagePanics)
{
    ControlImage image;
    EXPECT_DEATH(image.decode(), "");
}

}  // namespace
}  // namespace veal
