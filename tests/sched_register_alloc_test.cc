#include "veal/sched/register_alloc.h"

#include <gtest/gtest.h>

#include "veal/ir/loop_builder.h"
#include "veal/sched/mii.h"
#include "veal/sched/scheduler.h"

namespace veal {
namespace {

struct Scheduled {
    Loop loop;
    LoopAnalysis analysis;
    CcaMapping mapping;
    SchedGraph graph;
    Schedule schedule;

    Scheduled(Loop l, const LaConfig& config)
        : loop(std::move(l)), analysis(analyzeLoop(loop)),
          mapping(emptyCcaMapping(loop)),
          graph(loop, analysis, mapping, config)
    {
        const int mii = std::max(resMii(graph, config), recMii(graph));
        const auto order = computeSwingOrder(graph, mii);
        auto result = scheduleLoop(graph, config, order, mii);
        EXPECT_TRUE(result.has_value());
        schedule = std::move(*result);
    }
};

TEST(RegisterAllocTest, LiveInGetsRegisterLoadValueDoesNot)
{
    LoopBuilder b("livein");
    const OpId iv = b.induction(1);
    const OpId scale = b.liveIn("k");
    const OpId x = b.load("in", iv);
    const OpId y = b.mul(x, scale);
    b.store("out", iv, y);
    b.loopBack(iv, b.constant(64));
    const LaConfig la = LaConfig::proposed();
    Scheduled s(b.build(), la);
    const auto regs =
        assignRegisters(s.loop, s.analysis, s.graph, s.schedule, la);
    ASSERT_TRUE(regs.ok);
    EXPECT_GE(regs.reg_of_source_op[static_cast<std::size_t>(scale)], 0);
    // Loads deliver through FIFOs: no register for the load unit.
    EXPECT_EQ(regs.reg_of_unit[static_cast<std::size_t>(s.graph.unitOf(x))],
              -1);
}

TEST(RegisterAllocTest, ValueFeedingStoreOnlyUsesFifo)
{
    LoopBuilder b("fifo");
    const OpId iv = b.induction(1);
    const OpId x = b.load("in", iv);
    const OpId y = b.xorOp(x, x);
    b.store("out", iv, y);
    b.loopBack(iv, b.constant(64));
    const LaConfig la = LaConfig::proposed();
    Scheduled s(b.build(), la);
    const auto regs =
        assignRegisters(s.loop, s.analysis, s.graph, s.schedule, la);
    ASSERT_TRUE(regs.ok);
    EXPECT_EQ(regs.reg_of_unit[static_cast<std::size_t>(s.graph.unitOf(y))],
              -1);
}

TEST(RegisterAllocTest, LiveOutAlwaysGetsRegister)
{
    LoopBuilder b("liveout");
    const OpId iv = b.induction(1);
    const OpId x = b.load("in", iv);
    const OpId acc = b.add(x, LoopBuilder::carried(kNoOp, 0));
    b.loop().mutableOp(acc).inputs[1] = LoopBuilder::carried(acc, 1);
    b.markLiveOut(acc);
    b.loopBack(iv, b.constant(64));
    const LaConfig la = LaConfig::proposed();
    Scheduled s(b.build(), la);
    const auto regs =
        assignRegisters(s.loop, s.analysis, s.graph, s.schedule, la);
    ASSERT_TRUE(regs.ok);
    EXPECT_GE(
        regs.reg_of_unit[static_cast<std::size_t>(s.graph.unitOf(acc))],
        0);
}

TEST(RegisterAllocTest, FpValuesUseFpFile)
{
    LoopBuilder b("fp");
    const OpId iv = b.induction(1);
    const OpId x = b.load("in", iv);
    const OpId w = b.liveIn("w");
    const OpId y = b.fmul(x, w);
    const OpId z = b.fadd(y, w);
    b.markLiveOut(z);
    b.store("out", iv, z);
    b.loopBack(iv, b.constant(64));
    const LaConfig la = LaConfig::proposed();
    Scheduled s(b.build(), la);
    const auto regs =
        assignRegisters(s.loop, s.analysis, s.graph, s.schedule, la);
    ASSERT_TRUE(regs.ok);
    // The live-in w is consumed by FP units: FP file.
    EXPECT_GT(regs.fp_regs_used, 0);
    EXPECT_GE(regs.reg_of_source_op[static_cast<std::size_t>(w)], 0);
}

TEST(RegisterAllocTest, AbortsWhenFileTooSmall)
{
    LoopBuilder b("pressure");
    const OpId iv = b.induction(1);
    // Many live-ins all consumed by compute: one register each.
    OpId acc = b.load("in", iv);
    for (int i = 0; i < 6; ++i) {
        const OpId k = b.liveIn("k" + std::to_string(i));
        acc = b.add(acc, k);
    }
    b.store("out", iv, acc);
    b.loopBack(iv, b.constant(64));
    LaConfig la = LaConfig::proposed();
    la.num_int_registers = 3;
    Scheduled s(b.build(), la);
    const auto regs =
        assignRegisters(s.loop, s.analysis, s.graph, s.schedule, la);
    EXPECT_FALSE(regs.ok);
    EXPECT_NE(regs.fail_reason.find("integer registers"),
              std::string::npos);
}

TEST(RegisterAllocTest, ChargesRegisterAssignmentPhase)
{
    LoopBuilder b("meter");
    const OpId iv = b.induction(1);
    const OpId x = b.load("in", iv);
    b.store("out", iv, b.add(x, b.constant(1)));
    b.loopBack(iv, b.constant(64));
    const LaConfig la = LaConfig::proposed();
    Scheduled s(b.build(), la);
    CostMeter meter;
    assignRegisters(s.loop, s.analysis, s.graph, s.schedule, la, &meter);
    EXPECT_GT(meter.units(TranslationPhase::kRegisterAssignment), 0u);
}

TEST(RegisterAllocTest, AddressConstantsNeedNoRegister)
{
    LoopBuilder b("addrconst");
    const OpId iv = b.induction(1);
    const OpId c8 = b.constant(8);
    const OpId x = b.load("in", b.add(iv, c8));  // c8 only in the address.
    b.store("out", iv, x);
    b.loopBack(iv, b.constant(64));
    const LaConfig la = LaConfig::proposed();
    Scheduled s(b.build(), la);
    const auto regs =
        assignRegisters(s.loop, s.analysis, s.graph, s.schedule, la);
    ASSERT_TRUE(regs.ok);
    EXPECT_EQ(regs.reg_of_source_op[static_cast<std::size_t>(c8)], -1);
}

}  // namespace
}  // namespace veal
