#include "veal/fuzz/shrinker.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "tests/testing/random_workloads.h"
#include "veal/fuzz/oracle.h"
#include "veal/ir/loop_builder.h"
#include "veal/ir/loop_parser.h"
#include "veal/ir/random_loop.h"

namespace veal {
namespace {

/** Count ops of @p opcode in @p loop. */
int
countOps(const Loop& loop, Opcode opcode)
{
    int count = 0;
    for (const auto& op : loop.operations())
        count += op.opcode == opcode ? 1 : 0;
    return count;
}

using testing::injectOffByOne;

TEST(DeleteOperation, RewiresConsumersToTheFirstInput)
{
    LoopBuilder b("rewire");
    const OpId i = b.induction(1);
    const OpId x = b.load("in", i);
    const OpId y = b.add(x, b.constant(3));
    const OpId s = b.store("out", i, y);
    b.loopBack(i, b.constant(64));
    const Loop loop = b.build();

    const auto shrunk = deleteOperation(loop, y);
    ASSERT_TRUE(shrunk.has_value());
    EXPECT_EQ(shrunk->size(), loop.size() - 1);
    EXPECT_EQ(shrunk->verify(), std::nullopt);

    // Ids above the victim shift down by one; the store's value operand
    // now reads the load directly.
    const OpId new_store = s - 1;
    const Operation& store_op = shrunk->op(new_store);
    ASSERT_EQ(store_op.opcode, Opcode::kStore);
    EXPECT_EQ(store_op.inputs.back().producer, x);
    EXPECT_EQ(store_op.inputs.back().distance, 0);
}

TEST(DeleteOperation, CarriedDistancesAccumulate)
{
    LoopBuilder b("distance");
    const OpId i = b.induction(1);
    const OpId x = b.load("in", i);
    const OpId v = b.add(LoopBuilder::carried(x, 1), b.constant(1));
    const OpId w = b.add(LoopBuilder::carried(v, 1), x);
    b.markLiveOut(w);
    b.loopBack(i, b.constant(64));
    const Loop loop = b.build();

    const auto shrunk = deleteOperation(loop, v);
    ASSERT_TRUE(shrunk.has_value());
    EXPECT_EQ(shrunk->verify(), std::nullopt);

    // w consumed v at distance 1 and v consumed x at distance 1, so the
    // rewired operand reads x from two iterations ago.
    const Operation& w_op = shrunk->op(w - 1);
    ASSERT_EQ(w_op.opcode, Opcode::kAdd);
    EXPECT_EQ(w_op.inputs[0].producer, x);
    EXPECT_EQ(w_op.inputs[0].distance, 2);
}

TEST(DeleteOperation, RefusesConsumedSources)
{
    LoopBuilder b("sources");
    const OpId i = b.induction(1);
    const OpId scale = b.liveIn("scale");
    const OpId x = b.load("in", i);
    const OpId y = b.mul(x, scale);
    b.store("out", i, y);
    b.loopBack(i, b.constant(64));
    const Loop loop = b.build();

    // A consumed live-in has no input to rewire through.
    EXPECT_FALSE(deleteOperation(loop, scale).has_value());
}

TEST(Shrinker, MinimisesUnderAStructuralPredicate)
{
    RandomLoopParams params;
    params.max_compute_ops = 30;
    const Loop loop = makeRandomLoop(params, 77);
    ASSERT_GT(countOps(loop, Opcode::kLoad), 0);

    const FailurePredicate has_load = [](const Loop& candidate) {
        for (const auto& op : candidate.operations()) {
            if (op.opcode == Opcode::kLoad)
                return true;
        }
        return false;
    };

    ShrinkStats stats;
    const Loop shrunk = shrinkLoop(loop, has_load, {}, &stats);
    EXPECT_EQ(shrunk.verify(), std::nullopt);
    EXPECT_TRUE(has_load(shrunk));
    EXPECT_LT(shrunk.size(), loop.size());
    EXPECT_LE(shrunk.size(), 4);
    EXPECT_GT(stats.candidates_tried, 0);
    EXPECT_GT(stats.candidates_accepted, 0);

    // Deterministic: shrinking again yields the identical loop.
    const Loop again = shrinkLoop(loop, has_load);
    EXPECT_EQ(printLoop(shrunk), printLoop(again));
}

TEST(Shrinker, ShrinkingIsAFixedPoint)
{
    RandomLoopParams params;
    const Loop loop = makeRandomLoop(params, 13);
    const FailurePredicate has_store = [](const Loop& candidate) {
        for (const auto& op : candidate.operations()) {
            if (op.opcode == Opcode::kStore)
                return true;
        }
        return false;
    };
    ASSERT_TRUE(has_store(loop));

    const Loop shrunk = shrinkLoop(loop, has_store);
    ShrinkStats stats;
    const Loop twice = shrinkLoop(shrunk, has_store, {}, &stats);
    EXPECT_EQ(printLoop(shrunk), printLoop(twice));
    EXPECT_EQ(stats.candidates_accepted, 0);
}

TEST(Shrinker, RespectsTheCandidateBudget)
{
    RandomLoopParams params;
    params.max_compute_ops = 30;
    const Loop loop = makeRandomLoop(params, 99);

    ShrinkOptions options;
    options.max_candidates = 5;
    ShrinkStats stats;
    const FailurePredicate always = [](const Loop&) { return true; };
    shrinkLoop(loop, always, options, &stats);
    EXPECT_LE(stats.candidates_tried, options.max_candidates);
}

/**
 * The acceptance demo for the whole subsystem: a deliberately injected
 * off-by-one in the scheduler's slot bookkeeping is (a) caught by the
 * oracle on a fuzz-sized random loop and (b) shrunk to a repro of at
 * most 8 ops that still triggers it, while the unperturbed pipeline
 * passes on the very same repro.
 */
TEST(Shrinker, InjectedSchedulerBugIsCaughtAndShrunkToATinyRepro)
{
    const LaConfig config = LaConfig::proposed();
    OracleOptions clean;
    OracleOptions buggy;
    buggy.perturb = injectOffByOne;

    RandomLoopParams params;
    params.max_compute_ops = 24;

    std::optional<Loop> found;
    std::uint64_t found_seed = 0;
    for (std::uint64_t seed = 1; seed <= 50 && !found; ++seed) {
        const Loop loop = makeRandomLoop(params, seed);
        if (runOracle(loop, config, seed, clean).outcome !=
            OracleOutcome::kPass)
            continue;
        if (runOracle(loop, config, seed, buggy).outcome ==
            OracleOutcome::kValidatorReject) {
            found = loop;
            found_seed = seed;
        }
    }
    ASSERT_TRUE(found.has_value())
        << "no random loop tripped the injected bug";

    const FailurePredicate still_fails = [&](const Loop& candidate) {
        return runOracle(candidate, config, found_seed, buggy).outcome ==
               OracleOutcome::kValidatorReject;
    };
    const Loop shrunk = shrinkLoop(*found, still_fails);

    EXPECT_LE(shrunk.size(), 8) << printLoop(shrunk);
    EXPECT_LT(shrunk.size(), found->size());
    EXPECT_EQ(shrunk.verify(), std::nullopt);

    const OracleReport on_shrunk =
        runOracle(shrunk, config, found_seed, buggy);
    EXPECT_EQ(on_shrunk.outcome, OracleOutcome::kValidatorReject)
        << on_shrunk.detail;
    EXPECT_NE(on_shrunk.detail.find("dependence"), std::string::npos)
        << on_shrunk.detail;

    // The shrunk repro isolates the injected bug: the honest pipeline
    // handles it fine.
    EXPECT_EQ(runOracle(shrunk, config, found_seed, clean).outcome,
              OracleOutcome::kPass);
}

}  // namespace
}  // namespace veal
