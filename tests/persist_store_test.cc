#include "veal/vm/persist/store.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "veal/fault/faulty_vfs.h"
#include "veal/support/metrics/metrics.h"
#include "veal/vm/persist/manifest_log.h"

namespace veal::persist {
namespace {

namespace fs = std::filesystem;

/** A fresh scratch directory per test, removed on teardown. */
class PersistStoreTest : public ::testing::Test {
  protected:
    void
    SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("veal-store-test-" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()));
        fs::remove_all(dir_);
    }

    void
    TearDown() override
    {
        fs::remove_all(dir_);
    }

    std::string
    dir() const
    {
        return dir_.string();
    }

    fs::path dir_;
};

PersistedImage
makeImage(const std::string& key, std::uint32_t payload = 7)
{
    PersistedImage image;
    image.key = key;
    image.summary.ok = true;
    image.summary.ii = 2;
    image.summary.stage_count = 1;
    image.summary.length = 2;
    image.summary.fu_units = 3;
    image.image_words = {payload, payload + 1, payload + 2};
    return image;
}

/** Flip one byte of @p key's payload in place (checksum must catch it). */
void
corruptRecord(const PersistentStore& store, const std::string& key)
{
    const auto location = store.recordLocation(key);
    ASSERT_TRUE(location.has_value()) << key;
    std::fstream file(location->path, std::ios::in | std::ios::out |
                                          std::ios::binary);
    ASSERT_TRUE(file.is_open()) << location->path;
    file.seekp(location->offset + location->length / 2);
    const int byte = file.peek();
    file.put(static_cast<char>(byte ^ 0x40));
}

TEST_F(PersistStoreTest, SaveThenLoadRoundTripsThroughTheFilesystem)
{
    {
        PersistentStore store(dir(), StoreOptions{});
        EXPECT_TRUE(store.save(makeImage("alpha", 11)));
        EXPECT_TRUE(store.contains("alpha"));
        EXPECT_EQ(store.size(), 1);
        const auto location = store.recordLocation("alpha");
        ASSERT_TRUE(location.has_value());
        EXPECT_TRUE(fs::exists(location->path));
    }
    // A brand-new store object (fresh process equivalent) sees the entry.
    PersistentStore store(dir(), StoreOptions{});
    EXPECT_TRUE(store.contains("alpha"));
    const auto loaded = store.load("alpha");
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->key, "alpha");
    EXPECT_EQ(loaded->image_words,
              (std::vector<std::uint32_t>{11, 12, 13}));
    EXPECT_EQ(store.stats().hits, 1);
}

TEST_F(PersistStoreTest, LoadOfAbsentKeyIsACountedMiss)
{
    PersistentStore store(dir(), StoreOptions{});
    EXPECT_FALSE(store.load("nope").has_value());
    EXPECT_EQ(store.stats().misses, 1);
    EXPECT_FALSE(store.contains("nope"));
}

TEST_F(PersistStoreTest, ResaveSupersedesAndTheOldRecordTurnsToGarbage)
{
    PersistentStore store(dir(), StoreOptions{});
    store.save(makeImage("k", 1));
    const std::int64_t live_after_first = store.stats().live_bytes;
    store.save(makeImage("k", 99));
    EXPECT_EQ(store.size(), 1);
    const auto loaded = store.load("k");
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->image_words[0], 99u);
    // Same image size, so live bytes are steady while the log grew.
    EXPECT_EQ(store.stats().live_bytes, live_after_first);
    EXPECT_GT(store.stats().log_bytes, store.stats().live_bytes);
}

TEST_F(PersistStoreTest, EvictionTakesTheProbationTail)
{
    StoreOptions options;
    options.max_entries = 3;
    PersistentStore store(dir(), options);
    store.save(makeImage("a"));
    store.save(makeImage("b"));
    store.save(makeImage("c"));
    // Promote "a" out of probation; the probation order is now b, c.
    EXPECT_TRUE(store.load("a").has_value());

    store.save(makeImage("d"));  // Over capacity: evicts "b".
    EXPECT_EQ(store.size(), 3);
    EXPECT_TRUE(store.contains("a"));
    EXPECT_FALSE(store.contains("b"));
    EXPECT_TRUE(store.contains("c"));
    EXPECT_TRUE(store.contains("d"));
    EXPECT_EQ(store.stats().evictions, 1);
    EXPECT_FALSE(store.recordLocation("b").has_value());
}

TEST_F(PersistStoreTest, EvictedEntryCannotResurrectAfterReopen)
{
    // The eviction is committed to the manifest log, so a restart
    // cannot serve what the store dropped -- even though the record
    // bytes still sit in the segment as garbage until compaction.
    StoreOptions options;
    options.max_entries = 2;
    {
        PersistentStore store(dir(), options);
        store.save(makeImage("old"));
        store.save(makeImage("mid"));
        store.save(makeImage("new"));  // Evicts "old".
        store.flush();
    }
    PersistentStore store(dir(), options);
    EXPECT_FALSE(store.contains("old"));
    EXPECT_FALSE(store.load("old").has_value());
    EXPECT_TRUE(store.contains("mid"));
    EXPECT_TRUE(store.contains("new"));
}

TEST_F(PersistStoreTest, ManifestPreservesRecencyAcrossReopen)
{
    StoreOptions options;
    options.max_entries = 3;
    {
        PersistentStore store(dir(), options);
        store.save(makeImage("x"));
        store.save(makeImage("y"));
        store.save(makeImage("z"));
        // Touch "x": protected segment, most recent overall.
        EXPECT_TRUE(store.load("x").has_value());
    }  // Destructor flushes the manifest snapshot.
    PersistentStore store(dir(), options);
    // With recency restored, the next eviction must pick "y" (probation
    // tail), not "x" -- a scan-rebuilt index could not know that.
    store.save(makeImage("w"));
    EXPECT_TRUE(store.contains("x"));
    EXPECT_FALSE(store.contains("y"));
    EXPECT_TRUE(store.contains("z"));
    EXPECT_TRUE(store.contains("w"));
}

TEST_F(PersistStoreTest, MissingManifestTriggersScanRebuild)
{
    {
        PersistentStore store(dir(), StoreOptions{});
        store.save(makeImage("a", 5));
        store.save(makeImage("b", 6));
        store.flush();
    }
    fs::remove(fs::path(dir()) / "MANIFEST.log");

    metrics::Registry registry;
    PersistentStore store(dir(), StoreOptions{}, &registry);
    EXPECT_EQ(store.size(), 2);
    EXPECT_EQ(store.stats().manifest_rebuilds, 1);
    EXPECT_EQ(registry.counter("vm.persist.manifest_rebuilds"), 1);
    EXPECT_EQ(store.load("a")->image_words[0], 5u);
    EXPECT_EQ(store.load("b")->image_words[0], 6u);
}

TEST_F(PersistStoreTest, ScanRebuildKeepsTheLastWriterOfARekeyedRecord)
{
    {
        PersistentStore store(dir(), StoreOptions{});
        store.save(makeImage("k", 1));
        store.save(makeImage("k", 2));  // Supersedes in the same log.
        store.flush();
    }
    fs::remove(fs::path(dir()) / "MANIFEST.log");

    PersistentStore store(dir(), StoreOptions{});
    EXPECT_EQ(store.size(), 1);
    EXPECT_EQ(store.load("k")->image_words[0], 2u);
}

TEST_F(PersistStoreTest, CorruptRecordIsDroppedCountedAndCommitted)
{
    {
        PersistentStore store(dir(), StoreOptions{});
        store.save(makeImage("good"));
        store.save(makeImage("bad"));
        store.flush();
    }
    {
        PersistentStore store(dir(), StoreOptions{});
        corruptRecord(store, "bad");
    }

    metrics::Registry registry;
    {
        PersistentStore store(dir(), StoreOptions{}, &registry);
        EXPECT_FALSE(store.load("bad").has_value())
            << "corrupt record must degrade to a miss";
        EXPECT_EQ(store.stats().corrupt, 1);
        EXPECT_EQ(store.stats().misses, 1);
        EXPECT_EQ(registry.counter("vm.persist.corrupt"), 1);
        EXPECT_FALSE(store.contains("bad"));
        // The good entry is untouched.
        EXPECT_TRUE(store.load("good").has_value());
        store.flush();
    }
    // The drop was committed: a reopen does not resurrect the key or
    // re-count the corruption.
    PersistentStore store(dir(), StoreOptions{});
    EXPECT_FALSE(store.contains("bad"));
    EXPECT_EQ(store.stats().corrupt, 0);
    EXPECT_TRUE(store.load("good").has_value());
}

TEST_F(PersistStoreTest, ScanRebuildSkipsACorruptRecordAndStaysClean)
{
    {
        PersistentStore store(dir(), StoreOptions{});
        store.save(makeImage("bad"));
        store.flush();
    }
    {
        PersistentStore store(dir(), StoreOptions{});
        corruptRecord(store, "bad");
    }
    fs::remove(fs::path(dir()) / "MANIFEST.log");

    // Scan-rebuild decodes every record: the corrupt one is skipped and
    // counted, and a *second* open (now with a rewritten manifest) is
    // clean.
    {
        PersistentStore store(dir(), StoreOptions{});
        EXPECT_EQ(store.size(), 0);
        EXPECT_EQ(store.stats().corrupt, 1);
        store.flush();
    }
    PersistentStore store(dir(), StoreOptions{});
    EXPECT_EQ(store.size(), 0);
    EXPECT_EQ(store.stats().corrupt, 0);
}

TEST_F(PersistStoreTest, InvalidateCommitsTheRemoval)
{
    {
        PersistentStore store(dir(), StoreOptions{});
        store.save(makeImage("k"));
        EXPECT_TRUE(store.invalidate("k"));
        EXPECT_FALSE(store.invalidate("k"))
            << "second invalidate is a no-op";
        EXPECT_FALSE(store.contains("k"));
        EXPECT_EQ(store.stats().invalidations, 1);
        EXPECT_EQ(store.stats().evictions, 0)
            << "invalidation must not masquerade as capacity pressure";
    }
    // The removal survives a reopen (it was appended to the log, not
    // just dropped from memory).
    PersistentStore store(dir(), StoreOptions{});
    EXPECT_FALSE(store.contains("k"));
}

TEST_F(PersistStoreTest, StatsAndRegistryAgree)
{
    metrics::Registry registry;
    PersistentStore store(dir(), StoreOptions{}, &registry);
    store.save(makeImage("a"));
    store.load("a");
    store.load("missing");
    store.invalidate("a");

    const StoreStats stats = store.stats();
    EXPECT_EQ(stats.saves, 1);
    EXPECT_EQ(stats.hits, 1);
    EXPECT_EQ(stats.misses, 1);
    EXPECT_EQ(stats.invalidations, 1);
    EXPECT_EQ(stats.size, 0);
    EXPECT_EQ(registry.counter("vm.persist.saves"), 1);
    EXPECT_EQ(registry.counter("vm.persist.hits"), 1);
    EXPECT_EQ(registry.counter("vm.persist.misses"), 1);
    EXPECT_EQ(registry.counter("vm.persist.invalidations"), 1);

    metrics::Registry snapshot;
    store.recordInto(snapshot, "store");
    EXPECT_EQ(snapshot.counter("store.saves"), 1);
    EXPECT_EQ(snapshot.counter("store.hits"), 1);
}

TEST_F(PersistStoreTest, KeysWithHostileCharactersRoundTrip)
{
    const std::vector<std::string> keys = {
        "plain", "with/slash", "with\\backslash", "with space",
        "with:colon", "../escape", "..", "with\nnewline",
        "with%percent"};
    {
        PersistentStore store(dir(), StoreOptions{});
        for (std::size_t i = 0; i < keys.size(); ++i)
            store.save(makeImage(keys[i], static_cast<std::uint32_t>(i)));
        EXPECT_EQ(store.size(), static_cast<std::int64_t>(keys.size()));
        store.flush();
    }
    // Keys live escaped in the manifest log now: the reopen (replay)
    // must round-trip every hostile byte exactly.
    PersistentStore store(dir(), StoreOptions{});
    for (std::size_t i = 0; i < keys.size(); ++i) {
        const auto loaded = store.load(keys[i]);
        ASSERT_TRUE(loaded.has_value()) << keys[i];
        EXPECT_EQ(loaded->key, keys[i]);
        EXPECT_EQ(loaded->image_words[0], static_cast<std::uint32_t>(i));
        // ...and every record lives inside the store directory.
        const auto location = store.recordLocation(keys[i]);
        ASSERT_TRUE(location.has_value()) << keys[i];
        EXPECT_EQ(fs::path(location->path).parent_path(),
                  fs::path(dir()))
            << keys[i];
    }
}

TEST_F(PersistStoreTest, ManyEntriesSurviveReopenInBulk)
{
    StoreOptions options;
    options.max_entries = 512;
    {
        PersistentStore store(dir(), options);
        for (int i = 0; i < 256; ++i)
            store.save(makeImage("bulk-" + std::to_string(i),
                                 static_cast<std::uint32_t>(i)));
        store.flush();
    }
    PersistentStore store(dir(), options);
    EXPECT_EQ(store.size(), 256);
    for (int i = 0; i < 256; i += 17) {
        const auto loaded = store.load("bulk-" + std::to_string(i));
        ASSERT_TRUE(loaded.has_value()) << i;
        EXPECT_EQ(loaded->image_words[0], static_cast<std::uint32_t>(i));
    }
}

// --- The log-structured layout ---------------------------------------

TEST_F(PersistStoreTest, SegmentsRotateAtTheConfiguredSize)
{
    StoreOptions options;
    options.segment_bytes = 256;  // A few records per segment.
    PersistentStore store(dir(), options);
    for (int i = 0; i < 12; ++i)
        store.save(makeImage("rot-" + std::to_string(i),
                             static_cast<std::uint32_t>(i)));
    EXPECT_GT(store.stats().segments, 1)
        << "small segment_bytes must seal and rotate";
    for (int i = 0; i < 12; ++i)
        EXPECT_TRUE(store.load("rot-" + std::to_string(i)).has_value())
            << i;
}

TEST_F(PersistStoreTest, CompactionReclaimsGarbageAndKeepsEveryLiveKey)
{
    StoreOptions options;
    options.segment_bytes = 256;
    options.compact_garbage_percent = 101;  // Never auto-compact.
    metrics::Registry registry;
    PersistentStore store(dir(), options, &registry);
    for (int i = 0; i < 12; ++i)
        store.save(makeImage("c-" + std::to_string(i),
                             static_cast<std::uint32_t>(i)));
    // Re-save half the keys: their first records are now garbage
    // spread across sealed segments.
    for (int i = 0; i < 12; i += 2)
        store.save(makeImage("c-" + std::to_string(i),
                             static_cast<std::uint32_t>(100 + i)));
    const std::int64_t log_before = store.stats().log_bytes;

    ASSERT_TRUE(store.compactNow());
    EXPECT_EQ(store.stats().compactions, 1);
    EXPECT_GT(store.stats().reclaimed_bytes, 0);
    EXPECT_LT(store.stats().log_bytes, log_before);
    EXPECT_EQ(registry.counter("vm.persist.compactions"), 1);

    // Every live key still serves its latest value.
    for (int i = 0; i < 12; ++i) {
        const auto loaded = store.load("c-" + std::to_string(i));
        ASSERT_TRUE(loaded.has_value()) << i;
        const std::uint32_t expected = (i % 2 == 0)
                                           ? static_cast<std::uint32_t>(
                                                 100 + i)
                                           : static_cast<std::uint32_t>(i);
        EXPECT_EQ(loaded->image_words[0], expected) << i;
    }
    EXPECT_EQ(store.stats().corrupt, 0);
}

TEST_F(PersistStoreTest, CompactedStoreSurvivesReopen)
{
    StoreOptions options;
    options.segment_bytes = 256;
    {
        PersistentStore store(dir(), options);
        for (int i = 0; i < 12; ++i)
            store.save(makeImage("c-" + std::to_string(i),
                                 static_cast<std::uint32_t>(i)));
        for (int i = 0; i < 12; i += 2)
            store.save(makeImage("c-" + std::to_string(i),
                                 static_cast<std::uint32_t>(100 + i)));
        store.compactNow();
        store.flush();
    }
    PersistentStore store(dir(), options);
    EXPECT_EQ(store.size(), 12);
    for (int i = 0; i < 12; ++i)
        EXPECT_TRUE(store.load("c-" + std::to_string(i)).has_value())
            << i;
}

// --- The kill-point battery ------------------------------------------

TEST_F(PersistStoreTest, TornManifestTailIsTruncatedOnReopen)
{
    {
        PersistentStore store(dir(), StoreOptions{});
        store.save(makeImage("a", 1));
        store.save(makeImage("b", 2));
    }
    // Tear the last manifest line mid-record, as a crash would.
    const fs::path manifest = fs::path(dir()) / "MANIFEST.log";
    const auto size = static_cast<std::int64_t>(fs::file_size(manifest));
    fs::resize_file(manifest, static_cast<std::uintmax_t>(size - 7));

    metrics::Registry registry;
    PersistentStore store(dir(), StoreOptions{}, &registry);
    EXPECT_GE(store.stats().tail_truncations, 1);
    EXPECT_GE(registry.counter("vm.persist.tail_truncations"), 1);
    // "b"'s add record was torn: the save is unacked, so "b" is absent
    // and "a" is intact -- exactly the acked prefix.
    EXPECT_TRUE(store.load("a").has_value());
    EXPECT_FALSE(store.contains("b"));
    EXPECT_EQ(store.stats().corrupt, 0)
        << "a torn tail is damage, not corruption";
    // The store is writable again and the key can be re-saved.
    EXPECT_TRUE(store.save(makeImage("b", 2)));
    EXPECT_TRUE(store.load("b").has_value());
}

TEST_F(PersistStoreTest, CrashBetweenSegmentAppendAndManifestCommit)
{
    // The exact window the commit protocol defends: record bytes land
    // in the segment but the manifest add never does.  Simulated by
    // tearing the manifest back past the last add while leaving the
    // segment whole.
    std::string segment_path;
    std::int64_t manifest_before = 0;
    {
        PersistentStore store(dir(), StoreOptions{});
        store.save(makeImage("acked", 1));
        manifest_before = static_cast<std::int64_t>(
            fs::file_size(fs::path(dir()) / "MANIFEST.log"));
        store.save(makeImage("orphan", 2));
        segment_path = store.recordLocation("orphan")->path;
    }
    fs::resize_file(fs::path(dir()) / "MANIFEST.log",
                    static_cast<std::uintmax_t>(manifest_before));
    const auto segment_size_before = fs::file_size(segment_path);

    metrics::Registry registry;
    PersistentStore store(dir(), StoreOptions{}, &registry);
    EXPECT_TRUE(store.load("acked").has_value());
    EXPECT_FALSE(store.contains("orphan"));
    // The orphan bytes were truncated away, not left to confuse a
    // future scan-rebuild.
    EXPECT_GE(store.stats().orphans_dropped, 1);
    EXPECT_GE(registry.counter("vm.persist.orphans_dropped"), 1);
    EXPECT_LT(fs::file_size(segment_path), segment_size_before);
}

TEST_F(PersistStoreTest, TornSegmentTailFallsBackCleanlyUnderScanRebuild)
{
    {
        PersistentStore store(dir(), StoreOptions{});
        store.save(makeImage("a", 1));
        store.save(makeImage("b", 2));
        store.flush();
    }
    // Lose the manifest AND tear the segment tail: recovery must scan
    // and keep exactly the whole records.
    const std::string segment_path = [&] {
        PersistentStore store(dir(), StoreOptions{});
        return store.recordLocation("b")->path;
    }();
    fs::remove(fs::path(dir()) / "MANIFEST.log");
    const auto size = static_cast<std::int64_t>(
        fs::file_size(segment_path));
    fs::resize_file(segment_path,
                    static_cast<std::uintmax_t>(size - 5));

    PersistentStore store(dir(), StoreOptions{});
    EXPECT_EQ(store.stats().manifest_rebuilds, 1);
    EXPECT_TRUE(store.load("a").has_value());
    EXPECT_FALSE(store.contains("b"));
}

TEST_F(PersistStoreTest, StaleTmpFilesAreSweptOnOpen)
{
    {
        PersistentStore store(dir(), StoreOptions{});
        store.save(makeImage("k"));
        store.flush();
    }
    // A crashed manifest rewrite leaves its temp file behind.
    {
        std::ofstream tmp(fs::path(dir()) / "MANIFEST.log.tmp");
        tmp << "half a snapshot";
    }
    metrics::Registry registry;
    PersistentStore store(dir(), StoreOptions{}, &registry);
    EXPECT_EQ(store.stats().tmp_swept, 1);
    EXPECT_EQ(registry.counter("vm.persist.tmp_swept"), 1);
    EXPECT_FALSE(fs::exists(fs::path(dir()) / "MANIFEST.log.tmp"));
    EXPECT_TRUE(store.load("k").has_value());
}

TEST_F(PersistStoreTest, ReopenAfterEveryManifestPrefixServesAPrefix)
{
    // Brute force the whole manifest: for every possible truncation
    // point, the reopened store must recover to *some* acked prefix
    // without crashing, corruption, or resurrecting evicted state.
    {
        PersistentStore store(dir(), StoreOptions{});
        for (int i = 0; i < 6; ++i)
            store.save(makeImage("p-" + std::to_string(i),
                                 static_cast<std::uint32_t>(i)));
        store.invalidate("p-2");
    }
    // Snapshot the whole directory: each cut must start from the same
    // crashed state (a writable reopen repairs in place -- truncating
    // segments, rewriting the manifest).
    const fs::path pristine = dir_.parent_path() /
                              (dir_.filename().string() + ".pristine");
    fs::remove_all(pristine);
    fs::copy(dir_, pristine);
    const fs::path manifest = fs::path(dir()) / "MANIFEST.log";
    const auto full = fs::file_size(manifest);

    for (std::uintmax_t cut = 0; cut <= full; cut += 3) {
        fs::remove_all(dir_);
        fs::copy(pristine, dir_);
        fs::resize_file(manifest, cut);

        PersistentStore store(dir(), StoreOptions{});
        EXPECT_EQ(store.stats().corrupt, 0) << "cut=" << cut;
        for (const std::string& key : store.keys())
            EXPECT_TRUE(store.load(key).has_value())
                << "cut=" << cut << " key=" << key;
    }
    fs::remove_all(pristine);
}

// --- Multi-process locking and degradation ---------------------------

TEST_F(PersistStoreTest, SecondStoreOnALockedDirDegradesToReadOnly)
{
    metrics::Registry registry;
    PersistentStore writer(dir(), StoreOptions{});
    ASSERT_TRUE(writer.save(makeImage("shared", 42)));
    writer.flush();

    PersistentStore reader(dir(), StoreOptions{}, &registry);
    EXPECT_TRUE(reader.readOnly());
    EXPECT_EQ(reader.stats().readonly, 1);
    EXPECT_EQ(registry.counter("vm.persist.readonly"), 1);

    // The read-only tier serves hits...
    const auto loaded = reader.load("shared");
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->image_words[0], 42u);

    // ...skips (and counts) persists and invalidations...
    EXPECT_FALSE(reader.save(makeImage("mine", 1)));
    reader.invalidate("shared");
    EXPECT_GE(reader.stats().readonly_skips, 2);
    EXPECT_GE(registry.counter("vm.persist.readonly_skips"), 2);

    // ...without disturbing the writer (whose view is authoritative).
    EXPECT_TRUE(writer.contains("shared"));
    EXPECT_TRUE(writer.save(makeImage("more", 2)));
    EXPECT_FALSE(writer.readOnly());
}

TEST_F(PersistStoreTest, LockIsReleasedWhenTheWriterCloses)
{
    {
        PersistentStore writer(dir(), StoreOptions{});
        writer.save(makeImage("k"));
    }
    PersistentStore next(dir(), StoreOptions{});
    EXPECT_FALSE(next.readOnly());
    EXPECT_TRUE(next.save(makeImage("k2")));
}

TEST_F(PersistStoreTest, ReadOnlyOpenPerformsNoDiskMutation)
{
    // The writer holds the lock from the start; damage planted after
    // its open stays un-repaired until a writable open sees it.
    PersistentStore writer_lock(dir(), StoreOptions{});
    writer_lock.save(makeImage("k"));
    writer_lock.flush();

    {
        std::ofstream tmp(fs::path(dir()) / "stale.tmp");
        tmp << "x";
    }
    const fs::path manifest = fs::path(dir()) / "MANIFEST.log";
    {
        std::ofstream out(manifest, std::ios::binary | std::ios::app);
        out << "f00dface torn-line-without-newl";
    }
    const auto manifest_size = fs::file_size(manifest);

    PersistentStore reader(dir(), StoreOptions{});
    ASSERT_TRUE(reader.readOnly());
    EXPECT_TRUE(reader.load("k").has_value());
    EXPECT_TRUE(fs::exists(fs::path(dir()) / "stale.tmp"))
        << "read-only open swept a tmp file";
    EXPECT_EQ(fs::file_size(manifest), manifest_size)
        << "read-only open truncated the manifest";
}

// --- The I/O-error taxonomy ------------------------------------------

TEST_F(PersistStoreTest, EnospcDegradesToReadOnlyNotACrash)
{
    fault::FaultyVfsOptions fault;
    fault.mode = fault::VfsFaultMode::kEnospc;
    fault.trigger_op = 6;  // Open mutations pass; a later save hits it.
    const auto faulty = std::make_shared<fault::FaultyVfs>(
        realVfs(), fault);
    StoreOptions options;
    options.vfs = faulty;

    metrics::Registry registry;
    PersistentStore store(dir(), options, &registry);
    ASSERT_FALSE(store.readOnly());
    bool degraded = false;
    for (int i = 0; i < 8; ++i) {
        if (!store.save(makeImage("e-" + std::to_string(i),
                                  static_cast<std::uint32_t>(i)))) {
            degraded = true;
            break;
        }
    }
    ASSERT_TRUE(degraded) << "ENOSPC never surfaced";
    EXPECT_TRUE(store.readOnly());
    EXPECT_GE(store.stats().io_errors, 1);
    EXPECT_EQ(store.stats().readonly, 1);
    EXPECT_GE(registry.counter("vm.persist.io_error"), 1);
    EXPECT_EQ(registry.counter("vm.persist.readonly"), 1);
    EXPECT_EQ(store.stats().corrupt, 0)
        << "a full disk is an I/O error, not corruption";

    // Acked keys keep serving from the read-only tier.
    EXPECT_TRUE(store.load("e-0").has_value());
}

TEST_F(PersistStoreTest, TransientReadFailureKeepsTheEntry)
{
    /** Fails every readRange exactly once, then recovers. */
    class FlakyReads : public Vfs {
      public:
        explicit FlakyReads(std::shared_ptr<Vfs> base)
            : base_(std::move(base))
        {
        }
        std::optional<std::vector<std::uint8_t>>
        readFile(const std::string& path) override
        {
            return base_->readFile(path);
        }
        std::optional<std::vector<std::uint8_t>>
        readRange(const std::string& path, std::int64_t offset,
                  std::int64_t size) override
        {
            if (fail_next_) {
                fail_next_ = false;
                return std::nullopt;
            }
            return base_->readRange(path, offset, size);
        }
        bool
        exists(const std::string& path) override
        {
            return base_->exists(path);
        }
        std::optional<std::int64_t>
        fileSize(const std::string& path) override
        {
            return base_->fileSize(path);
        }
        std::vector<std::string>
        listDir(const std::string& dir) override
        {
            return base_->listDir(dir);
        }
        bool
        append(const std::string& path,
               const std::vector<std::uint8_t>& bytes) override
        {
            return base_->append(path, bytes);
        }
        bool
        writeFile(const std::string& path,
                  const std::vector<std::uint8_t>& bytes) override
        {
            return base_->writeFile(path, bytes);
        }
        bool
        renameFile(const std::string& from,
                   const std::string& to) override
        {
            return base_->renameFile(from, to);
        }
        bool
        removeFile(const std::string& path) override
        {
            return base_->removeFile(path);
        }
        bool
        truncateFile(const std::string& path,
                     std::int64_t size) override
        {
            return base_->truncateFile(path, size);
        }
        bool
        syncFile(const std::string& path) override
        {
            return base_->syncFile(path);
        }
        bool
        createDirectories(const std::string& dir) override
        {
            return base_->createDirectories(dir);
        }
        std::unique_ptr<VfsLock>
        tryLockExclusive(const std::string& path) override
        {
            return base_->tryLockExclusive(path);
        }
        void
        armFailure()
        {
            fail_next_ = true;
        }

      private:
        std::shared_ptr<Vfs> base_;
        bool fail_next_ = false;
    };

    const auto flaky = std::make_shared<FlakyReads>(realVfs());
    StoreOptions options;
    options.vfs = flaky;
    metrics::Registry registry;
    PersistentStore store(dir(), options, &registry);
    store.save(makeImage("k", 9));

    flaky->armFailure();
    EXPECT_FALSE(store.load("k").has_value())
        << "a failed read is a miss";
    EXPECT_EQ(store.stats().io_errors, 1);
    EXPECT_EQ(registry.counter("vm.persist.io_error"), 1);
    EXPECT_EQ(store.stats().corrupt, 0)
        << "an I/O failure must not be misfiled as corruption";
    EXPECT_TRUE(store.contains("k"))
        << "a transient I/O failure must not drop the entry";

    // The next read succeeds: no data was lost.
    const auto loaded = store.load("k");
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->image_words[0], 9u);
}

// --- Legacy-layout migration -----------------------------------------

/** Write @p image as a PR-8 file-per-entry blob named like the old code. */
void
writeLegacyBlob(const fs::path& dir, const PersistedImage& image)
{
    const auto bytes = encodeBlob(image);
    // The legacy file name was <hex fnv1a(key)>.vpb.
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (const unsigned char byte : image.key) {
        hash ^= byte;
        hash *= 0x100000001b3ull;
    }
    char name[32];
    std::snprintf(name, sizeof(name), "%016llx.vpb",
                  static_cast<unsigned long long>(hash));
    std::ofstream out(dir / name, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

TEST_F(PersistStoreTest, LegacyFilePerEntryLayoutMigratesOnFirstOpen)
{
    fs::create_directories(dir());
    writeLegacyBlob(dir(), makeImage("old-a", 1));
    writeLegacyBlob(dir(), makeImage("old-b", 2));
    {
        std::ofstream manifest(fs::path(dir()) / "MANIFEST");
        manifest << "veal-persist-v1\n";
    }

    metrics::Registry registry;
    {
        PersistentStore store(dir(), StoreOptions{}, &registry);
        EXPECT_EQ(store.stats().migrated, 2);
        EXPECT_EQ(registry.counter("vm.persist.migrated"), 2);
        EXPECT_EQ(store.size(), 2);
        EXPECT_EQ(store.load("old-a")->image_words[0], 1u);
        EXPECT_EQ(store.load("old-b")->image_words[0], 2u);
        store.flush();
    }

    // One-way: no legacy files remain, and the second open is a plain
    // log-structured one.
    for (const auto& entry : fs::directory_iterator(dir()))
        EXPECT_NE(entry.path().extension(), ".vpb") << entry.path();
    EXPECT_FALSE(fs::exists(fs::path(dir()) / "MANIFEST"));
    PersistentStore store(dir(), StoreOptions{});
    EXPECT_EQ(store.stats().migrated, 0);
    EXPECT_EQ(store.size(), 2);
}

TEST_F(PersistStoreTest, CorruptLegacyBlobIsQuarantinedDuringMigration)
{
    fs::create_directories(dir());
    writeLegacyBlob(dir(), makeImage("good", 1));
    {
        std::ofstream bad(fs::path(dir()) / "deadbeefdeadbeef.vpb",
                          std::ios::binary);
        bad << "not a blob at all";
    }

    PersistentStore store(dir(), StoreOptions{});
    EXPECT_EQ(store.stats().migrated, 1);
    EXPECT_EQ(store.size(), 1);
    EXPECT_TRUE(store.load("good").has_value());
    EXPECT_TRUE(fs::exists(fs::path(dir()) /
                           "deadbeefdeadbeef.vpb.quarantined"))
        << "bad legacy blob must be preserved for post-mortem";
}

}  // namespace
}  // namespace veal::persist
