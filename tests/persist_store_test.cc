#include "veal/vm/persist/store.h"

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "veal/support/metrics/metrics.h"

namespace veal::persist {
namespace {

namespace fs = std::filesystem;

/** A fresh scratch directory per test, removed on teardown. */
class PersistStoreTest : public ::testing::Test {
  protected:
    void
    SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("veal-store-test-" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()));
        fs::remove_all(dir_);
    }

    void
    TearDown() override
    {
        fs::remove_all(dir_);
    }

    std::string
    dir() const
    {
        return dir_.string();
    }

    fs::path dir_;
};

PersistedImage
makeImage(const std::string& key, std::uint32_t payload = 7)
{
    PersistedImage image;
    image.key = key;
    image.summary.ok = true;
    image.summary.ii = 2;
    image.summary.stage_count = 1;
    image.summary.length = 2;
    image.summary.fu_units = 3;
    image.image_words = {payload, payload + 1, payload + 2};
    return image;
}

TEST_F(PersistStoreTest, SaveThenLoadRoundTripsThroughTheFilesystem)
{
    {
        PersistentStore store(dir(), StoreOptions{});
        store.save(makeImage("alpha", 11));
        EXPECT_TRUE(store.contains("alpha"));
        EXPECT_EQ(store.size(), 1);
        EXPECT_TRUE(fs::exists(store.blobPath("alpha")));
    }
    // A brand-new store object (fresh process equivalent) sees the entry.
    PersistentStore store(dir(), StoreOptions{});
    EXPECT_TRUE(store.contains("alpha"));
    const auto loaded = store.load("alpha");
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->key, "alpha");
    EXPECT_EQ(loaded->image_words,
              (std::vector<std::uint32_t>{11, 12, 13}));
    EXPECT_EQ(store.stats().hits, 1);
}

TEST_F(PersistStoreTest, LoadOfAbsentKeyIsACountedMiss)
{
    PersistentStore store(dir(), StoreOptions{});
    EXPECT_FALSE(store.load("nope").has_value());
    EXPECT_EQ(store.stats().misses, 1);
    EXPECT_FALSE(store.contains("nope"));
}

TEST_F(PersistStoreTest, ResaveReplacesTheBlobInPlace)
{
    PersistentStore store(dir(), StoreOptions{});
    store.save(makeImage("k", 1));
    store.save(makeImage("k", 99));
    EXPECT_EQ(store.size(), 1);
    const auto loaded = store.load("k");
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->image_words[0], 99u);
}

TEST_F(PersistStoreTest, EvictionTakesTheProbationTailAndDeletesTheBlob)
{
    StoreOptions options;
    options.max_entries = 3;
    PersistentStore store(dir(), options);
    store.save(makeImage("a"));
    store.save(makeImage("b"));
    store.save(makeImage("c"));
    // Promote "a" out of probation; the probation order is now b, c.
    EXPECT_TRUE(store.load("a").has_value());
    const std::string victim_blob = store.blobPath("b");
    ASSERT_TRUE(fs::exists(victim_blob));

    store.save(makeImage("d"));  // Over capacity: evicts "b".
    EXPECT_EQ(store.size(), 3);
    EXPECT_TRUE(store.contains("a"));
    EXPECT_FALSE(store.contains("b"));
    EXPECT_TRUE(store.contains("c"));
    EXPECT_TRUE(store.contains("d"));
    EXPECT_EQ(store.stats().evictions, 1);
    EXPECT_FALSE(fs::exists(victim_blob))
        << "evicted entry left its blob behind";
}

TEST_F(PersistStoreTest, EvictedEntryCannotResurrectAfterReopen)
{
    // The third-owner eviction contract: the blob file dies with the
    // index entry, so a restart cannot serve what the store dropped.
    StoreOptions options;
    options.max_entries = 2;
    {
        PersistentStore store(dir(), options);
        store.save(makeImage("old"));
        store.save(makeImage("mid"));
        store.save(makeImage("new"));  // Evicts "old".
        store.flush();
    }
    PersistentStore store(dir(), options);
    EXPECT_FALSE(store.contains("old"));
    EXPECT_FALSE(store.load("old").has_value());
    EXPECT_TRUE(store.contains("mid"));
    EXPECT_TRUE(store.contains("new"));
}

TEST_F(PersistStoreTest, ManifestPreservesRecencyAcrossReopen)
{
    StoreOptions options;
    options.max_entries = 3;
    {
        PersistentStore store(dir(), options);
        store.save(makeImage("x"));
        store.save(makeImage("y"));
        store.save(makeImage("z"));
        // Touch "x": protected segment, most recent overall.
        EXPECT_TRUE(store.load("x").has_value());
    }  // Destructor flushes the MANIFEST.
    PersistentStore store(dir(), options);
    // With recency restored, the next eviction must pick "y" (probation
    // tail), not "x" -- a scan-rebuilt index could not know that.
    store.save(makeImage("w"));
    EXPECT_TRUE(store.contains("x"));
    EXPECT_FALSE(store.contains("y"));
    EXPECT_TRUE(store.contains("z"));
    EXPECT_TRUE(store.contains("w"));
}

TEST_F(PersistStoreTest, MissingManifestTriggersScanRebuild)
{
    {
        PersistentStore store(dir(), StoreOptions{});
        store.save(makeImage("a", 5));
        store.save(makeImage("b", 6));
        store.flush();
    }
    fs::remove(fs::path(dir()) / "MANIFEST");

    metrics::Registry registry;
    PersistentStore store(dir(), StoreOptions{}, &registry);
    EXPECT_EQ(store.size(), 2);
    EXPECT_EQ(store.stats().manifest_rebuilds, 1);
    EXPECT_EQ(registry.counter("vm.persist.manifest_rebuilds"), 1);
    EXPECT_EQ(store.load("a")->image_words[0], 5u);
    EXPECT_EQ(store.load("b")->image_words[0], 6u);
}

TEST_F(PersistStoreTest, CorruptBlobIsQuarantinedAndReportedAsAMiss)
{
    {
        PersistentStore store(dir(), StoreOptions{});
        store.save(makeImage("good"));
        store.save(makeImage("bad"));
        store.flush();
    }
    const std::string bad_path = [&] {
        PersistentStore store(dir(), StoreOptions{});
        return store.blobPath("bad");
    }();
    {
        std::fstream file(bad_path, std::ios::in | std::ios::out |
                                        std::ios::binary);
        file.seekp(24);
        file.put('\x7f');
    }

    metrics::Registry registry;
    PersistentStore store(dir(), StoreOptions{}, &registry);
    EXPECT_FALSE(store.load("bad").has_value())
        << "corrupt blob must degrade to a miss";
    EXPECT_EQ(store.stats().corrupt, 1);
    EXPECT_EQ(store.stats().misses, 1);
    EXPECT_EQ(registry.counter("vm.persist.corrupt"), 1);
    EXPECT_FALSE(store.contains("bad"));
    EXPECT_FALSE(fs::exists(bad_path)) << "corrupt blob left in place";
    EXPECT_TRUE(fs::exists(bad_path + ".quarantined"))
        << "corrupt blob must be preserved for post-mortem";
    // The good entry is untouched.
    EXPECT_TRUE(store.load("good").has_value());
}

TEST_F(PersistStoreTest, QuarantinedFilesAreIgnoredByScanRebuild)
{
    {
        PersistentStore store(dir(), StoreOptions{});
        store.save(makeImage("bad"));
        store.flush();
    }
    const std::string bad_path = [&] {
        PersistentStore store(dir(), StoreOptions{});
        return store.blobPath("bad");
    }();
    {
        std::fstream file(bad_path, std::ios::in | std::ios::out |
                                        std::ios::binary);
        file.seekp(20);
        file.put('\x7f');
    }
    fs::remove(fs::path(dir()) / "MANIFEST");

    // Scan-rebuild decodes every blob: the corrupt one is quarantined
    // during the scan, and a *second* open does not trip over the
    // .quarantined file.
    {
        PersistentStore store(dir(), StoreOptions{});
        EXPECT_EQ(store.size(), 0);
        EXPECT_EQ(store.stats().corrupt, 1);
    }
    PersistentStore store(dir(), StoreOptions{});
    EXPECT_EQ(store.size(), 0);
    EXPECT_EQ(store.stats().corrupt, 0);
}

TEST_F(PersistStoreTest, InvalidateDeletesTheBlobAndIsNotAnEviction)
{
    PersistentStore store(dir(), StoreOptions{});
    store.save(makeImage("k"));
    const std::string path = store.blobPath("k");
    ASSERT_TRUE(fs::exists(path));

    EXPECT_TRUE(store.invalidate("k"));
    EXPECT_FALSE(store.invalidate("k")) << "second invalidate is a no-op";
    EXPECT_FALSE(store.contains("k"));
    EXPECT_FALSE(fs::exists(path));
    EXPECT_EQ(store.stats().invalidations, 1);
    EXPECT_EQ(store.stats().evictions, 0)
        << "invalidation must not masquerade as capacity pressure";
}

TEST_F(PersistStoreTest, StatsAndRegistryAgree)
{
    metrics::Registry registry;
    PersistentStore store(dir(), StoreOptions{}, &registry);
    store.save(makeImage("a"));
    store.load("a");
    store.load("missing");
    store.invalidate("a");

    const StoreStats stats = store.stats();
    EXPECT_EQ(stats.saves, 1);
    EXPECT_EQ(stats.hits, 1);
    EXPECT_EQ(stats.misses, 1);
    EXPECT_EQ(stats.invalidations, 1);
    EXPECT_EQ(stats.size, 0);
    EXPECT_EQ(registry.counter("vm.persist.saves"), 1);
    EXPECT_EQ(registry.counter("vm.persist.hits"), 1);
    EXPECT_EQ(registry.counter("vm.persist.misses"), 1);
    EXPECT_EQ(registry.counter("vm.persist.invalidations"), 1);

    metrics::Registry snapshot;
    store.recordInto(snapshot, "store");
    EXPECT_EQ(snapshot.counter("store.saves"), 1);
    EXPECT_EQ(snapshot.counter("store.hits"), 1);
}

TEST_F(PersistStoreTest, KeysWithHostileCharactersGetDistinctFiles)
{
    PersistentStore store(dir(), StoreOptions{});
    const std::vector<std::string> keys = {
        "plain", "with/slash", "with\\backslash", "with space",
        "with:colon", "../escape", "..", "with\nnewline"};
    for (std::size_t i = 0; i < keys.size(); ++i)
        store.save(makeImage(keys[i], static_cast<std::uint32_t>(i)));
    EXPECT_EQ(store.size(), static_cast<std::int64_t>(keys.size()));
    for (std::size_t i = 0; i < keys.size(); ++i) {
        const auto loaded = store.load(keys[i]);
        ASSERT_TRUE(loaded.has_value()) << keys[i];
        EXPECT_EQ(loaded->key, keys[i]);
        EXPECT_EQ(loaded->image_words[0], static_cast<std::uint32_t>(i));
        // Every blob must live inside the store directory.
        const fs::path blob(store.blobPath(keys[i]));
        EXPECT_EQ(blob.parent_path(), fs::path(dir())) << keys[i];
    }
}

TEST_F(PersistStoreTest, ManyEntriesSurviveReopenInBulk)
{
    StoreOptions options;
    options.max_entries = 512;
    {
        PersistentStore store(dir(), options);
        for (int i = 0; i < 256; ++i)
            store.save(makeImage("bulk-" + std::to_string(i),
                                 static_cast<std::uint32_t>(i)));
        store.flush();
    }
    PersistentStore store(dir(), options);
    EXPECT_EQ(store.size(), 256);
    for (int i = 0; i < 256; i += 17) {
        const auto loaded = store.load("bulk-" + std::to_string(i));
        ASSERT_TRUE(loaded.has_value()) << i;
        EXPECT_EQ(loaded->image_words[0], static_cast<std::uint32_t>(i));
    }
}

}  // namespace
}  // namespace veal::persist
