#include "veal/fuzz/corpus.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "veal/fuzz/driver.h"
#include "veal/ir/loop_parser.h"
#include "veal/workloads/kernels.h"

#ifndef VEAL_CORPUS_DIR
#error "VEAL_CORPUS_DIR must point at tests/corpus"
#endif

namespace veal {
namespace {

/** Fresh scratch directory under the gtest temp root. */
std::string
scratchDir(const std::string& name)
{
    const std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) / ("veal-" + name);
    std::filesystem::remove_all(dir);
    return dir.string();
}

CorpusCase
sampleCase()
{
    CorpusCase repro;
    repro.loop = makeDotProductLoop("dot");
    repro.config = LaConfig::proposed();
    repro.mode = TranslationMode::kFullyDynamicHeight;
    repro.seed = 424242;
    repro.iterations = 9;
    repro.expect = OracleOutcome::kPass;
    repro.note = "dot product smoke case";
    return repro;
}

TEST(LaConfigCodec, RoundTripsEveryPreset)
{
    for (const auto& preset : fuzzConfigPresets()) {
        const std::string text = encodeLaConfig(preset.config);
        const auto decoded = decodeLaConfig(text);
        ASSERT_TRUE(std::holds_alternative<LaConfig>(decoded))
            << std::get<std::string>(decoded);
        const LaConfig& config = std::get<LaConfig>(decoded);
        EXPECT_EQ(encodeLaConfig(config), text) << preset.name;
        EXPECT_EQ(config.num_int_units, preset.config.num_int_units);
        EXPECT_EQ(config.num_fp_units, preset.config.num_fp_units);
        EXPECT_EQ(config.num_int_registers,
                  preset.config.num_int_registers);
        EXPECT_EQ(config.max_ii, preset.config.max_ii);
        EXPECT_EQ(config.hasCca(), preset.config.hasCca());
    }
}

TEST(LaConfigCodec, RejectsUnknownKeys)
{
    const auto decoded = decodeLaConfig("int_units=2 frobnicate=9");
    ASSERT_TRUE(std::holds_alternative<std::string>(decoded));
    EXPECT_NE(std::get<std::string>(decoded).find("frobnicate"),
              std::string::npos);
}

TEST(CorpusFormat, RoundTripsACase)
{
    const CorpusCase repro = sampleCase();
    const std::string text = formatCorpusCase(repro);

    const CorpusParseResult parsed = parseCorpusCase(text);
    ASSERT_TRUE(std::holds_alternative<CorpusCase>(parsed))
        << std::get<std::string>(parsed);
    const CorpusCase& back = std::get<CorpusCase>(parsed);

    EXPECT_EQ(printLoop(back.loop), printLoop(repro.loop));
    EXPECT_EQ(encodeLaConfig(back.config), encodeLaConfig(repro.config));
    EXPECT_EQ(back.mode, repro.mode);
    EXPECT_EQ(back.seed, repro.seed);
    EXPECT_EQ(back.iterations, repro.iterations);
    EXPECT_EQ(back.expect, repro.expect);
    EXPECT_EQ(back.note, repro.note);

    // The directives are DSL comments, so a corpus file also parses as a
    // plain loop.
    const ParseResult plain = parseLoop(text);
    ASSERT_TRUE(std::holds_alternative<Loop>(plain));
    EXPECT_EQ(printLoop(std::get<Loop>(plain)), printLoop(repro.loop));
}

TEST(CorpusFormat, SeedDirectivesCoverTheFull64BitRange)
{
    // Regression for the 19-digit parser cap: UINT64_MAX is 20 digits
    // and used to be truncated mid-token, so a shrinker-emitted case
    // with a large seed replayed a *different* case.
    CorpusCase repro = sampleCase();
    repro.seed = 18446744073709551615ull;
    repro.fault_plan_seed = 18446744073709551615ull;
    const std::string text = formatCorpusCase(repro);

    const CorpusParseResult parsed = parseCorpusCase(text);
    ASSERT_TRUE(std::holds_alternative<CorpusCase>(parsed))
        << std::get<std::string>(parsed);
    const CorpusCase& back = std::get<CorpusCase>(parsed);
    EXPECT_EQ(back.seed, 18446744073709551615ull);
    ASSERT_TRUE(back.fault_plan_seed.has_value());
    EXPECT_EQ(*back.fault_plan_seed, 18446744073709551615ull);
}

TEST(CorpusFormat, SeedDirectivesRejectOverflowInsteadOfWrapping)
{
    const std::string loop = printLoop(sampleCase().loop);
    for (const char* directive : {"seed", "fault-seed"}) {
        const std::string over = "#! " + std::string(directive) +
                                 " 18446744073709551616\n" + loop;
        const CorpusParseResult parsed = parseCorpusCase(over);
        ASSERT_TRUE(std::holds_alternative<std::string>(parsed))
            << directive << " must overflow, not wrap";
        EXPECT_NE(std::get<std::string>(parsed).find(directive),
                  std::string::npos)
            << std::get<std::string>(parsed);
    }
}

TEST(CorpusFormat, ReportsBrokenFilesAsErrors)
{
    const CorpusParseResult no_loop = parseCorpusCase("#! seed 4\n");
    EXPECT_TRUE(std::holds_alternative<std::string>(no_loop));

    const CorpusParseResult bad_directive = parseCorpusCase(
        "#! wibble 1\n" + printLoop(sampleCase().loop));
    EXPECT_TRUE(std::holds_alternative<std::string>(bad_directive));
}

TEST(CorpusFiles, SaveListLoadRoundTrip)
{
    const std::string dir = scratchDir("corpus-files");
    const CorpusCase repro = sampleCase();

    const std::string path_b = saveCorpusCase(dir, "b-case", repro);
    const std::string path_a = saveCorpusCase(dir, "a-case", repro);

    const auto files = listCorpusFiles(dir);
    ASSERT_EQ(files.size(), 2u);
    EXPECT_EQ(files[0], path_a);  // Sorted, so replay order is stable.
    EXPECT_EQ(files[1], path_b);

    const CorpusParseResult loaded = loadCorpusFile(path_a);
    ASSERT_TRUE(std::holds_alternative<CorpusCase>(loaded))
        << std::get<std::string>(loaded);
    EXPECT_EQ(std::get<CorpusCase>(loaded).seed, repro.seed);

    EXPECT_TRUE(listCorpusFiles(dir + "-missing").empty());
}

TEST(CorpusReplay, FlagsExpectationMismatches)
{
    const std::string dir = scratchDir("corpus-replay");
    CorpusCase good = sampleCase();
    good.expect = OracleOutcome::kPass;
    saveCorpusCase(dir, "good", good);

    CorpusCase wrong = sampleCase();
    wrong.expect = OracleOutcome::kDivergence;  // Deliberately wrong.
    saveCorpusCase(dir, "wrong", wrong);

    const auto results = replayCorpus(dir);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_TRUE(results[0].ok()) << results[0].error
                                 << results[0].actual.detail;
    EXPECT_FALSE(results[1].ok());
    EXPECT_EQ(results[1].actual.outcome, OracleOutcome::kPass);
}

TEST(CorpusFormat, RoundTripsTheFaultSeedDirective)
{
    CorpusCase repro = sampleCase();
    repro.fault_plan_seed = 123;
    const std::string text = formatCorpusCase(repro);
    EXPECT_NE(text.find("#! fault-seed 123"), std::string::npos) << text;

    const CorpusParseResult parsed = parseCorpusCase(text);
    ASSERT_TRUE(std::holds_alternative<CorpusCase>(parsed))
        << std::get<std::string>(parsed);
    const CorpusCase& back = std::get<CorpusCase>(parsed);
    ASSERT_TRUE(back.fault_plan_seed.has_value());
    EXPECT_EQ(*back.fault_plan_seed, 123u);

    // Fault-free cases stay byte-compatible with the old format.
    const std::string plain = formatCorpusCase(sampleCase());
    EXPECT_EQ(plain.find("fault-seed"), std::string::npos) << plain;
    const CorpusParseResult plain_parsed = parseCorpusCase(plain);
    ASSERT_TRUE(std::holds_alternative<CorpusCase>(plain_parsed));
    EXPECT_FALSE(
        std::get<CorpusCase>(plain_parsed).fault_plan_seed.has_value());
}

TEST(CorpusFormat, RejectsAMalformedFaultSeed)
{
    CorpusCase repro = sampleCase();
    repro.fault_plan_seed = 123;
    std::string text = formatCorpusCase(repro);
    const std::size_t at = text.find("fault-seed 123");
    ASSERT_NE(at, std::string::npos);
    text.replace(at, std::string("fault-seed 123").size(),
                 "fault-seed 12x");

    const CorpusParseResult parsed = parseCorpusCase(text);
    ASSERT_TRUE(std::holds_alternative<std::string>(parsed));
    EXPECT_NE(std::get<std::string>(parsed).find("fault-seed"),
              std::string::npos)
        << std::get<std::string>(parsed);
}

/**
 * The checked-in corpus (every .veal under tests/corpus) replays clean:
 * every seed
 * case and every shrunk fuzzer find keeps reporting the outcome recorded
 * in its header.
 */
TEST(CorpusReplay, CheckedInCorpusReplaysClean)
{
    const std::string dir = VEAL_CORPUS_DIR;
    const auto files = listCorpusFiles(dir);
    EXPECT_GE(files.size(), 10u) << "corpus under " << dir;

    const auto results = replayCorpus(dir);
    ASSERT_EQ(results.size(), files.size());
    for (const auto& result : results) {
        EXPECT_TRUE(result.ok())
            << result.path << ": " << result.error << " expect="
            << toString(result.expect) << " actual="
            << toString(result.actual.outcome) << " "
            << result.actual.detail;
    }
}

}  // namespace
}  // namespace veal
