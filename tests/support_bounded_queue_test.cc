#include "veal/support/bounded_queue.h"

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace veal {
namespace {

TEST(BoundedQueue, TryPushRejectsWhenFullAndRecoversAfterPop)
{
    BoundedQueue<int> queue(2);
    EXPECT_EQ(queue.capacity(), 2u);
    EXPECT_TRUE(queue.tryPush(1));
    EXPECT_TRUE(queue.tryPush(2));
    EXPECT_FALSE(queue.tryPush(3)) << "full queue must reject";
    EXPECT_EQ(queue.size(), 2u);

    const auto first = queue.tryPop();
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(*first, 1) << "FIFO order";
    EXPECT_TRUE(queue.tryPush(3)) << "space freed by the pop";

    const auto second = queue.tryPop();
    const auto third = queue.tryPop();
    ASSERT_TRUE(second.has_value());
    ASSERT_TRUE(third.has_value());
    EXPECT_EQ(*second, 2);
    EXPECT_EQ(*third, 3);
    EXPECT_FALSE(queue.tryPop().has_value());
}

TEST(BoundedQueue, CapacityOneIsAOneElementMailbox)
{
    BoundedQueue<int> queue(1);
    EXPECT_TRUE(queue.tryPush(7));
    EXPECT_FALSE(queue.tryPush(8));
    EXPECT_EQ(*queue.tryPop(), 7);
    EXPECT_TRUE(queue.tryPush(8));
}

TEST(BoundedQueue, CloseRejectsPushesButDrainsQueuedItems)
{
    BoundedQueue<int> queue(4);
    EXPECT_TRUE(queue.tryPush(1));
    EXPECT_TRUE(queue.tryPush(2));
    queue.close();
    EXPECT_TRUE(queue.closed());
    EXPECT_FALSE(queue.tryPush(3));
    EXPECT_FALSE(queue.push(3));

    // Drain-then-stop: queued items stay poppable, then pop() reports
    // exhaustion instead of blocking forever.
    EXPECT_EQ(*queue.pop(), 1);
    EXPECT_EQ(*queue.pop(), 2);
    EXPECT_FALSE(queue.pop().has_value());
}

TEST(BoundedQueue, BlockingPopWakesOnPush)
{
    BoundedQueue<int> queue(1);
    std::optional<int> got;
    std::thread consumer([&] { got = queue.pop(); });
    queue.push(42);
    consumer.join();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, 42);
}

TEST(BoundedQueue, PushBlockedAtCapacityWakesAndFailsOnClose)
{
    // A producer parked in push() on a full queue must not deadlock
    // when the queue closes under it: it wakes and reports failure.
    BoundedQueue<int> queue(1);
    ASSERT_TRUE(queue.tryPush(1));

    std::atomic<bool> started{false};
    bool pushed = true;
    std::thread producer([&] {
        started = true;
        pushed = queue.push(2);  // Blocks: queue is at capacity.
    });
    while (!started)
        std::this_thread::yield();
    queue.close();
    producer.join();

    EXPECT_FALSE(pushed) << "push across close() must fail, not enqueue";
    // The item that was resident before the close still drains.
    EXPECT_EQ(*queue.tryPop(), 1);
    EXPECT_FALSE(queue.tryPop().has_value());
}

TEST(BoundedQueue, TryPopDrainsAClosedNonEmptyQueue)
{
    BoundedQueue<int> queue(4);
    ASSERT_TRUE(queue.tryPush(1));
    ASSERT_TRUE(queue.tryPush(2));
    ASSERT_TRUE(queue.tryPush(3));
    queue.close();

    // tryPop mirrors pop's drain-then-stop semantics without blocking.
    EXPECT_EQ(*queue.tryPop(), 1);
    EXPECT_EQ(*queue.tryPop(), 2);
    EXPECT_EQ(*queue.tryPop(), 3);
    EXPECT_FALSE(queue.tryPop().has_value());
    EXPECT_FALSE(queue.pop().has_value());
}

TEST(BoundedQueue, FifoOrderSurvivesShutdownMidStream)
{
    // Interleave pushes with a close(): everything accepted before the
    // close drains in exactly the order it was accepted.
    BoundedQueue<int> queue(8);
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(queue.tryPush(i));
    queue.close();
    EXPECT_FALSE(queue.tryPush(99));

    for (int i = 0; i < 5; ++i) {
        // Alternate the two pop surfaces; both must respect FIFO.
        const auto item = (i % 2 == 0) ? queue.tryPop() : queue.pop();
        ASSERT_TRUE(item.has_value());
        EXPECT_EQ(*item, i);
    }
    EXPECT_FALSE(queue.pop().has_value());
}

TEST(BoundedQueue, ConcurrentProducersAndConsumersLoseNothing)
{
    constexpr int kProducers = 4;
    constexpr int kConsumers = 4;
    constexpr int kPerProducer = 500;
    BoundedQueue<int> queue(8);

    std::vector<std::thread> threads;
    std::atomic<long long> sum{0};
    std::atomic<int> popped{0};
    for (int c = 0; c < kConsumers; ++c) {
        threads.emplace_back([&] {
            while (auto item = queue.pop()) {
                sum += *item;
                ++popped;
            }
        });
    }
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; ++i)
                EXPECT_TRUE(queue.push(p * kPerProducer + i));
        });
    }
    for (auto& producer : producers)
        producer.join();
    queue.close();
    for (auto& consumer : threads)
        consumer.join();

    constexpr int kTotal = kProducers * kPerProducer;
    EXPECT_EQ(popped.load(), kTotal);
    // Sum of 0..kTotal-1: every pushed value arrived exactly once.
    EXPECT_EQ(sum.load(),
              static_cast<long long>(kTotal) * (kTotal - 1) / 2);
}

}  // namespace
}  // namespace veal
