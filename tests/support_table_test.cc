#include "veal/support/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace veal {
namespace {

TEST(TextTableTest, RendersHeaderAndRows)
{
    TextTable table({"name", "value"});
    table.addRow({"alpha", "1"});
    table.addRow({"b", "22"});
    const std::string text = table.render();
    EXPECT_NE(text.find("name"), std::string::npos);
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("22"), std::string::npos);
}

TEST(TextTableTest, ColumnsAreAligned)
{
    TextTable table({"a", "b"});
    table.addRow({"xxxxx", "1"});
    table.addRow({"y", "2"});
    const std::string text = table.render();
    std::istringstream lines(text);
    std::string header;
    std::string rule;
    std::string row1;
    std::string row2;
    std::getline(lines, header);
    std::getline(lines, rule);
    std::getline(lines, row1);
    std::getline(lines, row2);
    // The second column starts at the same offset in both rows.
    EXPECT_EQ(row1.find('1'), row2.find('2'));
}

TEST(TextTableTest, RowCountTracksRows)
{
    TextTable table({"x"});
    EXPECT_EQ(table.rowCount(), 0u);
    table.addRow({"1"});
    table.addRow({"2"});
    EXPECT_EQ(table.rowCount(), 2u);
}

TEST(TextTableTest, FormatDoubleRespectsPrecision)
{
    EXPECT_EQ(TextTable::formatDouble(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::formatDouble(2.0, 0), "2");
    EXPECT_EQ(TextTable::formatDouble(-0.5, 1), "-0.5");
}

TEST(TextTableTest, StreamOperatorMatchesRender)
{
    TextTable table({"h"});
    table.addRow({"v"});
    std::ostringstream os;
    os << table;
    EXPECT_EQ(os.str(), table.render());
}

TEST(TextTableDeathTest, WrongArityPanics)
{
    TextTable table({"a", "b"});
    EXPECT_DEATH(table.addRow({"only-one"}), "");
}

}  // namespace
}  // namespace veal
