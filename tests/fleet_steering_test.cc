/**
 * Property battery for the heterogeneous-fleet scorer and steerer.
 *
 * The load-bearing contracts, each tested over seeded random loops:
 *
 *  - every BackendScorer cell equals an independently recomputed
 *    explore::scoreLoopCell() price (500-loop sweep), so placements are
 *    exactly as cheap as the service later charges;
 *  - placement is greedy best-warm-cycles with index-ordered tie-breaks,
 *    saturation spills to the *strictly* next-best backend, and the CPU
 *    is the last rung when every viable backend is full;
 *  - an empty fleet disables steering and a one-backend (baseline)
 *    fleet degenerates to today's single-design-point service
 *    bit-exactly (digests, counters, and the fleet-line-stripped
 *    report);
 *  - the scoring kernel and the suite builders are pure functions of
 *    their config arguments: A/B/A evaluations under different configs
 *    share no cached state (the regression for the hoisted SweepRunner
 *    cell config and the suite fission target).
 */

#include <cstdint>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "veal/arch/cpu_config.h"
#include "veal/explore/sweep.h"
#include "veal/fleet/fleet.h"
#include "veal/ir/random_loop.h"
#include "veal/service/service.h"
#include "veal/service/trace.h"
#include "veal/sim/tlb_model.h"
#include "veal/workloads/suite.h"

namespace veal {
namespace {

constexpr TranslationMode kMode = TranslationMode::kFullyDynamic;
constexpr std::int64_t kIterations = 12;

fleet::FleetConfig
cappedFleet(int capacity)
{
    fleet::FleetConfig config = fleet::FleetConfig::standard();
    for (auto& backend : config.backends)
        backend.capacity = capacity;
    return config;
}

/** A hand-built score set: every backend ok with the given prices. */
persist::FleetScoreSet
scoresWithWarmCycles(const std::vector<std::int64_t>& warm)
{
    persist::FleetScoreSet set;
    set.scoring_iterations = kIterations;
    set.cpu_cycles = 1 << 20;
    for (const std::int64_t cycles : warm) {
        persist::FleetBackendScore score;
        score.ok = true;
        score.ii = 2;
        score.stage_count = 2;
        score.first_cycles = cycles + 100;
        score.warm_cycles = cycles;
        set.backends.push_back(score);
    }
    return set;
}

TEST(FleetSteering, FiveHundredLoopScoresMatchIndependentRecomputation)
{
    const fleet::FleetConfig config = fleet::FleetConfig::standard();
    const CpuConfig cpu;
    const TlbConfig tlb;
    const fleet::BackendScorer scorer(config, cpu, tlb, kIterations);
    fleet::FleetSteerer steerer(config);

    for (std::uint64_t seed = 1; seed <= 500; ++seed) {
        const Loop loop = makeStressLoop(seed % 17, seed);
        const persist::FleetScoreSet set = scorer.score(loop, kMode);
        ASSERT_EQ(set.backends.size(), config.backends.size());
        ASSERT_EQ(set.scoring_iterations, kIterations);
        EXPECT_EQ(set.cpu_cycles,
                  explore::scoreCpuCycles(loop, cpu, kIterations));

        // Column-by-column against the independent one-cell kernel.
        for (std::size_t j = 0; j < config.backends.size(); ++j) {
            const explore::LoopScore expected = explore::scoreLoopCell(
                loop, config.backends[j].la, kMode, kIterations, tlb);
            const persist::FleetBackendScore& got = set.backends[j];
            ASSERT_EQ(got.ok, expected.ok) << "seed " << seed << " b" << j;
            ASSERT_EQ(got.reject, expected.reject);
            ASSERT_EQ(got.ii, expected.ii);
            ASSERT_EQ(got.stage_count, expected.stage_count);
            ASSERT_EQ(got.first_cycles, expected.first_cycles);
            ASSERT_EQ(got.warm_cycles, expected.warm_cycles)
                << "seed " << seed << " backend " << j;
        }

        // The placement is the cheapest ok backend, index tie-broken.
        const fleet::Placement placement =
            steerer.place("loop-" + std::to_string(seed), set);
        int best = -1;
        for (std::size_t j = 0; j < set.backends.size(); ++j) {
            if (!set.backends[j].ok)
                continue;
            if (best < 0 ||
                set.backends[j].warm_cycles <
                    set.backends[static_cast<std::size_t>(best)]
                        .warm_cycles) {
                best = static_cast<int>(j);
            }
        }
        if (best < 0) {
            EXPECT_TRUE(placement.unscored) << "seed " << seed;
            EXPECT_EQ(placement.backend, 0);
        } else {
            EXPECT_FALSE(placement.unscored);
            EXPECT_EQ(placement.backend, best) << "seed " << seed;
            EXPECT_EQ(placement.spill_rank, 0);
        }

        // Sticky: a replay of the same key changes nothing.
        const fleet::Placement again =
            steerer.place("loop-" + std::to_string(seed), set);
        EXPECT_EQ(again.backend, placement.backend);
        EXPECT_EQ(again.spill_rank, placement.spill_rank);
    }
}

TEST(FleetSteering, SaturationSpillsToStrictlyNextBest)
{
    fleet::FleetSteerer steerer(cappedFleet(1));
    // Backend 2 is cheapest, then 0, then 4, then 1, then 3.
    const auto set = scoresWithWarmCycles({20, 40, 10, 50, 30});

    const auto first = steerer.place("k1", set);
    EXPECT_EQ(first.backend, 2);
    EXPECT_EQ(first.spill_rank, 0);

    // Best is full: k2 spills to the strictly next-best (0), k3 to 4...
    const auto second = steerer.place("k2", set);
    EXPECT_EQ(second.backend, 0);
    EXPECT_EQ(second.spill_rank, 1);
    const auto third = steerer.place("k3", set);
    EXPECT_EQ(third.backend, 4);
    EXPECT_EQ(third.spill_rank, 2);
    const auto fourth = steerer.place("k4", set);
    EXPECT_EQ(fourth.backend, 1);
    const auto fifth = steerer.place("k5", set);
    EXPECT_EQ(fifth.backend, 3);
    EXPECT_EQ(steerer.spills(), 4);

    // Everything is full: the CPU is the last rung.
    const auto sixth = steerer.place("k6", set);
    EXPECT_EQ(sixth.backend, -1);
    EXPECT_EQ(steerer.cpuFallbacks(), 1);

    // Sticky placements survive saturation: k1 still owns backend 2.
    EXPECT_EQ(steerer.place("k1", set).backend, 2);
    EXPECT_EQ(steerer.cpuFallbacks(), 1);
}

TEST(FleetSteering, TieBreaksAreIndexOrdered)
{
    fleet::FleetSteerer steerer(cappedFleet(1));
    const auto set = scoresWithWarmCycles({25, 25, 25, 25, 25});
    // All prices equal: keys fill backends in index order.
    for (int k = 0; k < 5; ++k) {
        const auto placement =
            steerer.place("key-" + std::to_string(k), set);
        EXPECT_EQ(placement.backend, k);
        EXPECT_EQ(placement.spill_rank, k);
    }
}

TEST(FleetSteering, NotOkBackendsNeverPlace)
{
    fleet::FleetSteerer steerer(cappedFleet(0));
    auto set = scoresWithWarmCycles({5, 10, 15, 20, 25});
    set.backends[0].ok = false;  // Cheapest rejects: must be skipped.
    EXPECT_EQ(steerer.place("k", set).backend, 1);

    persist::FleetScoreSet none = scoresWithWarmCycles({5, 5, 5, 5, 5});
    for (auto& backend : none.backends) {
        backend.ok = false;
        backend.reject = TranslationReject::kScheduleFailed;
    }
    const auto placement = steerer.place("rejected-everywhere", none);
    EXPECT_TRUE(placement.unscored);
    EXPECT_EQ(placement.backend, 0);  // Ladder climbs on backend 0.
}

struct RunSnapshot {
    std::string render;
    std::map<int, std::uint64_t> digests;
    std::int64_t translate_ok = 0;
    std::int64_t la_warm_cycles = 0;
    std::int64_t la_first_cycles = 0;
    std::int64_t cpu_cycles = 0;
    std::int64_t translation_cycles = 0;
    std::int64_t path_la = 0;
    std::int64_t path_cpu = 0;
};

RunSnapshot
runService(const ServiceTrace& trace,
           std::optional<fleet::FleetConfig> fleet_config)
{
    ServiceOptions options;
    options.shards = 2;
    options.threads = 2;
    options.batch = 8;
    options.fleet = std::move(fleet_config);
    TranslationService service(options, nullptr);
    const ServiceReport& report = service.run(trace);

    RunSnapshot snapshot;
    snapshot.render = report.render();
    for (const auto& [tenant, tenant_report] : report.tenants)
        snapshot.digests[tenant] = tenant_report.digest;
    snapshot.translate_ok = report.translate_ok;
    snapshot.la_warm_cycles = report.la_warm_cycles;
    snapshot.la_first_cycles = report.la_first_cycles;
    snapshot.cpu_cycles = report.cpu_cycles;
    snapshot.translation_cycles = report.translation_cycles;
    snapshot.path_la = report.path_la;
    snapshot.path_cpu = report.path_cpu;
    return snapshot;
}

/** Drop "fleet:"/"fleet-placed:" lines -- the only permitted delta. */
std::string
stripFleetLines(const std::string& render)
{
    std::istringstream in(render);
    std::ostringstream out;
    std::string line;
    while (std::getline(in, line)) {
        if (line.rfind("fleet", 0) == 0)
            continue;
        out << line << "\n";
    }
    return out.str();
}

ServiceTrace
degeneracyTrace()
{
    TraceGenOptions gen;
    gen.seed = 42;
    gen.requests = 96;
    gen.tenants = 3;
    gen.loop_pool = 6;
    gen.tick_size = 8;
    gen.iterations = 10;
    return generateTrace(gen);
}

TEST(FleetSteering, EmptyFleetDegeneratesToTodayBitExactly)
{
    const ServiceTrace trace = degeneracyTrace();
    const RunSnapshot plain = runService(trace, std::nullopt);
    // An empty FleetConfig is "no fleet": steering never engages and
    // the report renders without fleet lines -- byte-identical.
    const RunSnapshot empty = runService(trace, fleet::FleetConfig{});
    EXPECT_EQ(empty.render, plain.render);
    EXPECT_EQ(empty.digests, plain.digests);
}

TEST(FleetSteering, OneBackendFleetDegeneratesToTodayBitExactly)
{
    const ServiceTrace trace = degeneracyTrace();
    const RunSnapshot plain = runService(trace, std::nullopt);
    // A baseline-only fleet steers every loop to the single design
    // point the fleetless service already uses: every outcome field,
    // digest, and non-fleet report line must match bit for bit.
    const RunSnapshot baseline =
        runService(trace, fleet::FleetConfig::baselineOnly());
    EXPECT_EQ(stripFleetLines(baseline.render), plain.render);
    EXPECT_EQ(baseline.digests, plain.digests);
    EXPECT_EQ(baseline.translate_ok, plain.translate_ok);
    EXPECT_EQ(baseline.la_warm_cycles, plain.la_warm_cycles);
    EXPECT_EQ(baseline.la_first_cycles, plain.la_first_cycles);
    EXPECT_EQ(baseline.cpu_cycles, plain.cpu_cycles);
    EXPECT_EQ(baseline.translation_cycles, plain.translation_cycles);
    EXPECT_EQ(baseline.path_la, plain.path_la);
    EXPECT_EQ(baseline.path_cpu, plain.path_cpu);
}

TEST(FleetSteering, CellEvaluationSharesNoStateAcrossConfigs)
{
    // A/B/A: re-evaluating a cell under config A after pricing the same
    // loop under very different configs B must reproduce A's score
    // field for field (the regression for the hoisted cell config).
    const TlbConfig tlb;
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
        const Loop loop = makeStressLoop(seed % 7, seed);
        const auto a1 = explore::scoreLoopCell(
            loop, LaConfig::proposed(), kMode, kIterations, tlb);
        const auto b = explore::scoreLoopCell(
            loop, fleet::tinyIiConfig(), kMode, kIterations, tlb);
        const auto c = explore::scoreLoopCell(
            loop, fleet::streamHeavyConfig(), kMode, kIterations, tlb);
        (void)b;
        (void)c;
        const auto a2 = explore::scoreLoopCell(
            loop, LaConfig::proposed(), kMode, kIterations, tlb);
        EXPECT_EQ(a1.ok, a2.ok) << "seed " << seed;
        EXPECT_EQ(a1.reject, a2.reject);
        EXPECT_EQ(a1.ii, a2.ii);
        EXPECT_EQ(a1.stage_count, a2.stage_count);
        EXPECT_EQ(a1.first_cycles, a2.first_cycles);
        EXPECT_EQ(a1.warm_cycles, a2.warm_cycles) << "seed " << seed;
    }
}

/** Structural fingerprint of a built suite (sites, pieces, op counts). */
std::string
suiteFingerprint(const std::vector<Benchmark>& suite)
{
    std::ostringstream os;
    for (const Benchmark& benchmark : suite) {
        os << benchmark.name << ":";
        for (const LoopSite& site : benchmark.transformed.sites) {
            os << " " << site.loop.size() << "/" << site.fissioned.size();
            for (const Loop& piece : site.fissioned)
                os << "," << piece.size();
        }
        os << "\n";
    }
    return os.str();
}

TEST(FleetSteering, SuiteBuildersArePureFunctionsOfTheFissionTarget)
{
    // A/B/A again, one level up: building the suite for another fission
    // target in between must not perturb the proposed-target suite
    // (the regression for the hoisted BenchmarkBuilder target).
    LaConfig tight = LaConfig::proposed();
    tight.name = "tight-streams";
    tight.num_load_streams = 2;
    tight.num_store_streams = 1;

    const std::string a1 = suiteFingerprint(mediaFpSuite());
    const std::string b = suiteFingerprint(mediaFpSuite(tight));
    const std::string a2 = suiteFingerprint(mediaFpSuite());
    EXPECT_EQ(a1, a2);
    EXPECT_EQ(a1, suiteFingerprint(mediaFpSuite(LaConfig::proposed())));
    // A 2-load-stream toolchain must fission far more aggressively, so
    // the builds genuinely differ -- the A/B/A would pass vacuously
    // otherwise.
    EXPECT_NE(a1, b);

    const std::string i1 = suiteFingerprint(integerSuite());
    EXPECT_EQ(i1, suiteFingerprint(integerSuite(LaConfig::proposed())));
}

}  // namespace
}  // namespace veal
