#include <gtest/gtest.h>

#include "veal/arch/cca_spec.h"
#include "veal/arch/cpu_config.h"
#include "veal/arch/fu.h"
#include "veal/arch/la_config.h"
#include "veal/arch/latency.h"

namespace veal {
namespace {

TEST(OpcodeInfoTest, ClassesArePartitioned)
{
    for (int i = 0; i < kNumOpcodes; ++i) {
        const auto opcode = static_cast<Opcode>(i);
        const auto& info = opcodeInfo(opcode);
        const int kinds = (info.is_integer ? 1 : 0) +
                          (info.is_float ? 1 : 0) +
                          (info.is_memory ? 1 : 0) +
                          (info.is_control ? 1 : 0) +
                          (info.is_value_source ? 1 : 0);
        EXPECT_EQ(kinds, 1) << toString(opcode);
    }
}

TEST(FuTest, FuClassMapping)
{
    EXPECT_EQ(fuClassFor(Opcode::kAdd), FuClass::kInt);
    EXPECT_EQ(fuClassFor(Opcode::kMul), FuClass::kInt);
    EXPECT_EQ(fuClassFor(Opcode::kShl), FuClass::kInt);
    EXPECT_EQ(fuClassFor(Opcode::kFAdd), FuClass::kFp);
    EXPECT_EQ(fuClassFor(Opcode::kCca), FuClass::kCca);
    EXPECT_EQ(fuClassFor(Opcode::kLoad), FuClass::kNone);
    EXPECT_EQ(fuClassFor(Opcode::kBranch), FuClass::kNone);
    EXPECT_EQ(fuClassFor(Opcode::kConst), FuClass::kNone);
}

TEST(LatencyTest, AcceleratorPresetMatchesPaperFigure5)
{
    const LatencyModel m = LatencyModel::accelerator();
    EXPECT_EQ(m.latency(Opcode::kMul), 3);   // "multiplies take 3 cycles"
    EXPECT_EQ(m.latency(Opcode::kCca), 2);   // "the CCA takes 2 cycles"
    EXPECT_EQ(m.latency(Opcode::kAdd), 1);   // "all other ops take 1"
    EXPECT_EQ(m.latency(Opcode::kShl), 1);
    EXPECT_EQ(m.latency(Opcode::kAnd), 1);
}

TEST(LatencyTest, SetOverrides)
{
    LatencyModel m;
    m.set(Opcode::kAdd, 5);
    EXPECT_EQ(m.latency(Opcode::kAdd), 5);
    EXPECT_EQ(m.latency(Opcode::kSub), 1);
}

TEST(CcaSpecTest, ClassicStructure)
{
    const CcaSpec cca = CcaSpec::classic();
    EXPECT_EQ(cca.num_inputs, 4);
    EXPECT_EQ(cca.num_outputs, 2);
    EXPECT_EQ(cca.num_rows, 4);
    EXPECT_EQ(cca.max_ops, 15);
    EXPECT_EQ(cca.latency, 2);
    int total_width = 0;
    for (int r = 0; r < cca.num_rows; ++r)
        total_width += cca.row_width[static_cast<std::size_t>(r)];
    EXPECT_EQ(total_width, 15);
}

TEST(CcaSpecTest, RowCapabilities)
{
    const CcaSpec cca = CcaSpec::classic();
    // Rows 1 and 3 (0-indexed 0 and 2) do arithmetic; all rows do logic.
    EXPECT_TRUE(cca.rowSupports(0, CcaOpClass::kArith));
    EXPECT_FALSE(cca.rowSupports(1, CcaOpClass::kArith));
    EXPECT_TRUE(cca.rowSupports(2, CcaOpClass::kArith));
    EXPECT_FALSE(cca.rowSupports(3, CcaOpClass::kArith));
    for (int r = 0; r < 4; ++r)
        EXPECT_TRUE(cca.rowSupports(r, CcaOpClass::kLogic));
}

TEST(CcaSpecTest, SupportsOnlyArithAndLogic)
{
    const CcaSpec cca = CcaSpec::classic();
    EXPECT_TRUE(cca.supports(Opcode::kAdd));
    EXPECT_TRUE(cca.supports(Opcode::kSub));
    EXPECT_TRUE(cca.supports(Opcode::kCmp));
    EXPECT_TRUE(cca.supports(Opcode::kAnd));
    EXPECT_TRUE(cca.supports(Opcode::kXor));
    // Not supported: shifts, multiplies, FP, memory (paper §3.1).
    EXPECT_FALSE(cca.supports(Opcode::kShl));
    EXPECT_FALSE(cca.supports(Opcode::kMul));
    EXPECT_FALSE(cca.supports(Opcode::kFAdd));
    EXPECT_FALSE(cca.supports(Opcode::kLoad));
}

TEST(LaConfigTest, ProposedMatchesPaperSection32)
{
    const LaConfig la = LaConfig::proposed();
    EXPECT_EQ(la.num_cca_units, 1);
    EXPECT_EQ(la.num_int_units, 2);
    EXPECT_EQ(la.num_fp_units, 2);
    EXPECT_EQ(la.num_int_registers, 16);
    EXPECT_EQ(la.num_fp_registers, 16);
    EXPECT_EQ(la.num_load_streams, 16);
    EXPECT_EQ(la.num_store_streams, 8);
    EXPECT_EQ(la.num_load_addr_gens, 4);
    EXPECT_EQ(la.num_store_addr_gens, 2);
    EXPECT_EQ(la.max_ii, 16);
    EXPECT_EQ(la.bus_latency, 10);
    EXPECT_TRUE(la.hasCca());
}

TEST(LaConfigTest, FuCountDispatch)
{
    const LaConfig la = LaConfig::proposed();
    EXPECT_EQ(la.fuCount(FuClass::kInt), 2);
    EXPECT_EQ(la.fuCount(FuClass::kFp), 2);
    EXPECT_EQ(la.fuCount(FuClass::kCca), 1);
    EXPECT_EQ(la.fuCount(FuClass::kNone), 0);
}

TEST(LaConfigTest, InfiniteHasNoCcaButUnlimitedUnits)
{
    const LaConfig la = LaConfig::infinite();
    EXPECT_FALSE(la.hasCca());
    EXPECT_GE(la.num_int_units, LaConfig::kUnlimited);
    EXPECT_GE(la.max_ii, LaConfig::kUnlimited);
}

TEST(LaConfigTest, InfiniteWithCcaKeepsOneCca)
{
    const LaConfig la = LaConfig::infiniteWithCca();
    EXPECT_TRUE(la.hasCca());
    EXPECT_EQ(la.num_cca_units, 1);
}

TEST(CpuConfigTest, PresetsMatchPaperAreas)
{
    EXPECT_DOUBLE_EQ(CpuConfig::arm11().area_mm2, 4.34);
    EXPECT_DOUBLE_EQ(CpuConfig::cortexA8().area_mm2, 10.2);
    EXPECT_DOUBLE_EQ(CpuConfig::quadIssue().area_mm2, 14.0);
    EXPECT_EQ(CpuConfig::arm11().issue_width, 1);
    EXPECT_EQ(CpuConfig::cortexA8().issue_width, 2);
    EXPECT_EQ(CpuConfig::quadIssue().issue_width, 4);
}

}  // namespace
}  // namespace veal
