#include "veal/support/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace veal {
namespace {

TEST(RngTest, SameSeedSameSequence)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int differing = 0;
    for (int i = 0; i < 32; ++i)
        differing += a.next() != b.next() ? 1 : 0;
    EXPECT_GT(differing, 30);
}

TEST(RngTest, NextBelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(10), 10u);
}

TEST(RngTest, NextBelowOneIsAlwaysZero)
{
    Rng rng(9);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.nextBelow(1), 0u);
}

TEST(RngTest, NextBelowCoversAllResidues)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.nextBelow(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextInRangeInclusiveBounds)
{
    Rng rng(5);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto value = rng.nextInRange(-3, 3);
        EXPECT_GE(value, -3);
        EXPECT_LE(value, 3);
        saw_lo |= value == -3;
        saw_hi |= value == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval)
{
    Rng rng(17);
    for (int i = 0; i < 1000; ++i) {
        const double value = rng.nextDouble();
        EXPECT_GE(value, 0.0);
        EXPECT_LT(value, 1.0);
    }
}

TEST(RngTest, NextBoolMatchesProbabilityRoughly)
{
    Rng rng(23);
    int heads = 0;
    constexpr int kTrials = 10000;
    for (int i = 0; i < kTrials; ++i)
        heads += rng.nextBool(0.25) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(heads) / kTrials, 0.25, 0.03);
}

TEST(RngDeathTest, NextBelowZeroPanics)
{
    Rng rng(1);
    EXPECT_DEATH(rng.nextBelow(0), "");
}

}  // namespace
}  // namespace veal
