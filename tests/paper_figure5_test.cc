/**
 * Golden reproduction of the paper's worked example (Figure 5 / Figure 9):
 * a 15-op loop with two 4-cycle recurrences, where ops 5-6-8 collapse into
 * one CCA instruction, ops 7 and 10 must NOT merge (it would lengthen the
 * mpy recurrence), RecMII = 4, ResMII = 3, and the loop schedules at
 * II = 4 with op 10 in a later pipeline stage.
 */

#include <gtest/gtest.h>

#include "veal/ir/loop_builder.h"
#include "veal/sched/mii.h"
#include "veal/vm/translator.h"

namespace veal {
namespace {

struct Figure5 {
    Loop loop;
    OpId op1, op2, op3, op4, op5, op6, op7, op8, op9, op10, op11, op12;
    OpId induction;
};

Figure5
makeFigure5Loop()
{
    LoopBuilder b("figure5");
    b.setTripCount(1024);
    const OpId i = b.induction(1);           // paper op 13
    const OpId c16 = b.constant(16);
    const OpId c5 = b.constant(5);
    const OpId c1 = b.constant(1);
    const OpId c3 = b.constant(3);
    const OpId c32 = b.constant(32);

    const OpId a1 = b.add(i, c16);           // op 1: load address
    const OpId x = b.load("in", a1);         // op 2
    // Recurrence A: 3 -> (5,6,8) -> 9 -> 3 (distance 1).
    const OpId shl = b.shl(LoopBuilder::carried(kNoOp, 0), c1);  // op 3
    const OpId andv = b.andOp(shl, x);                           // op 5
    const OpId subv = b.sub(x, c5);                              // op 6
    const OpId xorv = b.xorOp(andv, subv);                       // op 8
    const OpId shr = b.shr(xorv, c1);                            // op 9
    b.loop().mutableOp(shl).inputs[0] = LoopBuilder::carried(shr, 1);
    // Recurrence B: 4 -> 7 -> 4 (distance 1); mpy takes 3 cycles.
    const OpId mpy = b.mul(LoopBuilder::carried(kNoOp, 0), c3);  // op 4
    const OpId orv = b.orOp(mpy, x);                             // op 7
    b.loop().mutableOp(mpy).inputs[0] = LoopBuilder::carried(orv, 1);

    const OpId add10 = b.add(orv, shr);      // op 10
    const OpId a11 = b.add(i, c32);          // op 11: store address
    const OpId st = b.store("out", a11, add10);  // op 12
    b.loopBack(i, b.constant(1024));         // ops 14, 15

    return Figure5{b.build(), a1, x, shl, mpy, andv, subv, orv,
                   xorv, shr, add10, a11, st, i};
}

class Figure5Test : public ::testing::Test {
  protected:
    Figure5 f_ = makeFigure5Loop();
    LaConfig la_ = LaConfig::proposed();
};

TEST_F(Figure5Test, AnalysisSeparatesAddressesAndControl)
{
    const auto analysis = analyzeLoop(f_.loop);
    ASSERT_TRUE(analysis.ok());
    EXPECT_EQ(analysis.roles[static_cast<std::size_t>(f_.op1)],
              OpRole::kAddress);
    EXPECT_EQ(analysis.roles[static_cast<std::size_t>(f_.op11)],
              OpRole::kAddress);
    EXPECT_EQ(analysis.roles[static_cast<std::size_t>(f_.induction)],
              OpRole::kControl);
    EXPECT_EQ(analysis.load_streams.size(), 1u);
    EXPECT_EQ(analysis.store_streams.size(), 1u);
    EXPECT_EQ(analysis.load_streams[0].offset, 16);
    EXPECT_EQ(analysis.store_streams[0].offset, 32);
}

TEST_F(Figure5Test, CcaMappingCollapsesOps568Only)
{
    // Paper: "ops 5-6-8 were collapsed into a single CCA instruction";
    // "Ops 7 and 10 could legally be combined; however, doing so would
    // lengthen one of the recurrence cycles".
    const auto analysis = analyzeLoop(f_.loop);
    const auto mapping =
        mapToCca(f_.loop, analysis, *la_.cca, la_.latencies);
    ASSERT_EQ(mapping.groups.size(), 1u);
    EXPECT_EQ(mapping.groups[0].members,
              (std::vector<OpId>{f_.op5, f_.op6, f_.op8}));
    EXPECT_EQ(mapping.group_of_op[static_cast<std::size_t>(f_.op7)], -1);
    EXPECT_EQ(mapping.group_of_op[static_cast<std::size_t>(f_.op10)], -1);
}

TEST_F(Figure5Test, RecMiiIsFourFromBothRecurrences)
{
    const auto analysis = analyzeLoop(f_.loop);
    const auto mapping =
        mapToCca(f_.loop, analysis, *la_.cca, la_.latencies);
    const SchedGraph graph(f_.loop, analysis, mapping, la_);
    // 3 -> CCA{5,6,8} -> 9 -> 3: 1 + 2 + 1 = 4; 4 -> 7 -> 4: 3 + 1 = 4.
    EXPECT_EQ(recMii(graph), 4);
}

TEST_F(Figure5Test, ResMiiIsThreeFromFiveIntegerOps)
{
    // Paper: "there are 5 integer instructions in the loop (3, 4, 7, 9,
    // and 10) and 2 integer units, II must be at least ceil(5/2) = 3".
    const auto analysis = analyzeLoop(f_.loop);
    const auto mapping =
        mapToCca(f_.loop, analysis, *la_.cca, la_.latencies);
    const SchedGraph graph(f_.loop, analysis, mapping, la_);
    EXPECT_EQ(resMii(graph, la_), 3);
}

TEST_F(Figure5Test, SchedulesAtIiFourWithOp10InLaterStage)
{
    const auto result =
        translateLoop(f_.loop, la_, TranslationMode::kFullyDynamic);
    ASSERT_TRUE(result.ok) << toString(result.reject) << ": "
                           << result.reject_detail;
    EXPECT_EQ(result.mii, 4);
    EXPECT_EQ(result.schedule.ii, 4);
    ASSERT_TRUE(result.graph.has_value());
    EXPECT_FALSE(
        validateSchedule(*result.graph, la_, result.schedule).has_value());

    // Op 10 depends on both recurrences' outputs; the paper schedules it
    // at time 5, i.e. in a later stage than the recurrence bodies.
    const int unit10 = result.graph->unitOf(f_.op10);
    EXPECT_GE(result.schedule.stageOf(unit10), 1);
    EXPECT_GE(result.schedule.stage_count, 2);
}

TEST_F(Figure5Test, SchedulesAtIiFourWithoutCcaToo)
{
    // Without a CCA the recurrence is 4 unit-latency ops (still 4) and
    // ResMII is ceil(8/2) = 4: the loop still reaches II = 4.
    LaConfig no_cca = la_;
    no_cca.num_cca_units = 0;
    no_cca.cca.reset();
    const auto result =
        translateLoop(f_.loop, no_cca, TranslationMode::kFullyDynamic);
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(result.schedule.ii, 4);
}

TEST_F(Figure5Test, HybridAnnotationsReproduceTheSameIi)
{
    const auto annotations = precompileAnnotations(f_.loop, la_);
    ASSERT_TRUE(annotations.cca_mapping.has_value());
    ASSERT_TRUE(annotations.op_priority.has_value());
    const auto hybrid = translateLoop(
        f_.loop, la_, TranslationMode::kHybridStaticCcaPriority,
        &annotations);
    ASSERT_TRUE(hybrid.ok);
    EXPECT_EQ(hybrid.schedule.ii, 4);
    // The hybrid translator skips the expensive phases: it must be much
    // cheaper than the fully dynamic one.
    const auto dynamic =
        translateLoop(f_.loop, la_, TranslationMode::kFullyDynamic);
    EXPECT_LT(hybrid.meter.totalInstructions(),
              0.5 * dynamic.meter.totalInstructions());
}

TEST_F(Figure5Test, RegisterDemandIsModest)
{
    const auto result =
        translateLoop(f_.loop, la_, TranslationMode::kFullyDynamic);
    ASSERT_TRUE(result.ok);
    EXPECT_LE(result.registers.int_regs_used, 8);
    EXPECT_EQ(result.registers.fp_regs_used, 0);
}

}  // namespace
}  // namespace veal
