/**
 * Fault injection through the service front end: per-request plan
 * seeds, warm-image corruption -> invalidate -> strike -> quarantine,
 * tenant-scoped quarantine, and replay-stable fault accounting under
 * concurrency.
 */

#include <cstdint>
#include <optional>
#include <string>

#include <gtest/gtest.h>

#include "veal/service/service.h"
#include "veal/service/trace.h"
#include "veal/support/metrics/metrics.h"

namespace veal {
namespace {

// A loop seed whose trace loop translates cleanly (publishes an image
// the corruption probe can bit-flip); shared by the service corpus.
constexpr std::uint64_t kOkLoopSeed = 201;

ServiceTrace
makeSharedKeyTrace(int ticks, int tenants)
{
    ServiceTrace trace;
    trace.ticks.resize(static_cast<std::size_t>(ticks));
    for (auto& tick : trace.ticks) {
        for (int tenant = 0; tenant < tenants; ++tenant) {
            TraceRequest request;
            request.tenant = tenant;
            request.loop_seed = kOkLoopSeed;
            request.iterations = 8;
            tick.push_back(request);
        }
    }
    return trace;
}

struct FaultRun {
    std::string render;
    std::string metrics;
    ServiceReport report;
};

FaultRun
runFault(std::optional<std::uint64_t> fault_seed, int shards, int threads,
         int batch, int quarantine_strikes, const ServiceTrace& trace)
{
    metrics::Registry registry;
    ServiceOptions options;
    options.shards = shards;
    options.threads = threads;
    options.batch = batch;
    options.quarantine_strikes = quarantine_strikes;
    options.fault_seed = fault_seed;
    TranslationService service(options, &registry);
    FaultRun run;
    run.report = service.run(trace);
    run.render = run.report.render();
    run.metrics = registry.toJson();
    return run;
}

TEST(ServiceFault, PlanSeedIsAPureFunctionOfSeedAndSequence)
{
    EXPECT_EQ(makeServicePlanSeed(9, 4), makeServicePlanSeed(9, 4));
    EXPECT_NE(makeServicePlanSeed(9, 4), makeServicePlanSeed(9, 5))
        << "each request draws its own fault stream";
    EXPECT_NE(makeServicePlanSeed(9, 4), makeServicePlanSeed(10, 4))
        << "different campaigns draw different streams";
}

TEST(ServiceFault, CorruptionInvalidatesAndIsReplayStable)
{
    const ServiceTrace trace = makeSharedKeyTrace(30, 2);

    // Deterministically scan fault seeds until a warm-image corruption
    // fires.  Everything downstream of the seed is pure, so the scan is
    // stable across machines and runs.
    std::optional<std::uint64_t> hit;
    for (std::uint64_t seed = 1; seed <= 300 && !hit; ++seed) {
        const FaultRun run = runFault(seed, 2, 1, 16, 2, trace);
        if (run.report.invalidated > 0)
            hit = seed;
    }
    ASSERT_TRUE(hit.has_value())
        << "no corruption fired in 300 campaigns; probe is dead";

    const FaultRun first = runFault(*hit, 2, 1, 16, 2, trace);
    EXPECT_GT(first.report.invalidated, 0);
    EXPECT_FALSE(first.report.fault_fired.empty())
        << "fired faults must land in the taxonomy";
    EXPECT_FALSE(first.report.fault_probes.empty());

    // Replay stability: the same campaign twice is byte-identical.
    const FaultRun second = runFault(*hit, 2, 1, 16, 2, trace);
    EXPECT_EQ(first.render, second.render);
    EXPECT_EQ(first.metrics, second.metrics);

    // And the fault ladder under concurrency: the same campaign at the
    // far corner of the matrix is still byte-identical.
    const FaultRun wide = runFault(*hit, 8, 8, 64, 2, trace);
    EXPECT_EQ(wide.render, first.render);
    EXPECT_EQ(wide.metrics, first.metrics);
}

TEST(ServiceFault, QuarantineIsTenantScoped)
{
    const ServiceTrace trace = makeSharedKeyTrace(40, 2);

    // With a 1-strike policy the first corruption quarantines that
    // (tenant, key) pair.  Find a campaign where exactly one of the two
    // tenants sharing the key is quarantined: the other must keep being
    // served from the warm tier.
    std::optional<FaultRun> scoped;
    for (std::uint64_t seed = 1; seed <= 500 && !scoped; ++seed) {
        FaultRun run = runFault(seed, 2, 1, 16, 1, trace);
        if (run.report.quarantined_pairs != 1)
            continue;
        const TenantReport& a = run.report.tenants.at(0);
        const TenantReport& b = run.report.tenants.at(1);
        if ((a.quarantined > 0) == (b.quarantined > 0))
            continue;
        scoped = std::move(run);
    }
    ASSERT_TRUE(scoped.has_value())
        << "no single-tenant quarantine in 500 campaigns";

    const TenantReport& struck =
        scoped->report.tenants.at(0).quarantined > 0
            ? scoped->report.tenants.at(0)
            : scoped->report.tenants.at(1);
    const TenantReport& spared =
        scoped->report.tenants.at(0).quarantined > 0
            ? scoped->report.tenants.at(1)
            : scoped->report.tenants.at(0);
    EXPECT_GT(struck.quarantined, 0)
        << "the struck tenant rides the CPU path from then on";
    EXPECT_EQ(spared.quarantined, 0);
    EXPECT_GT(spared.warm, struck.warm)
        << "the spared tenant keeps its warm service on the shared key";
    EXPECT_EQ(scoped->report.quarantined, struck.quarantined);
}

TEST(ServiceFault, ArmedRunsDivergeFromFaultFreeOnes)
{
    const ServiceTrace trace = makeSharedKeyTrace(30, 2);
    const FaultRun clean = runFault(std::nullopt, 2, 1, 16, 2, trace);
    EXPECT_EQ(clean.report.invalidated, 0);
    EXPECT_TRUE(clean.report.fault_fired.empty());
    EXPECT_TRUE(clean.report.fault_probes.empty())
        << "no probes are drawn without a campaign seed";

    // Some armed campaign must visibly change translation behaviour
    // (degraded ladder rungs or invalidations) relative to fault-free.
    bool diverged = false;
    for (std::uint64_t seed = 1; seed <= 100 && !diverged; ++seed) {
        const FaultRun armed = runFault(seed, 2, 1, 16, 2, trace);
        diverged = armed.report.invalidated > 0 ||
                   armed.report.rungs != clean.report.rungs;
    }
    EXPECT_TRUE(diverged)
        << "100 armed campaigns behaved exactly like fault-free";
}

}  // namespace
}  // namespace veal
