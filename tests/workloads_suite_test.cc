#include "veal/workloads/suite.h"

#include <gtest/gtest.h>
#include <set>

#include "veal/arch/cpu_config.h"
#include "veal/sim/cpu_sim.h"

namespace veal {
namespace {

double
categoryTime(const Application& app, LoopFeature feature)
{
    const CpuConfig cpu = CpuConfig::arm11();
    double total = 0.0;
    for (const auto& site : app.sites) {
        if (site.loop.feature() != feature)
            continue;
        total += static_cast<double>(
                     simulateLoopOnCpu(site.loop, cpu, site.iterations)
                         .total_cycles) *
                 static_cast<double>(site.invocations);
    }
    return total;
}

TEST(SuiteTest, HasTheExpectedBenchmarks)
{
    const auto suite = mediaFpSuite();
    EXPECT_EQ(suite.size(), 16u);
    std::set<std::string> names;
    for (const auto& benchmark : suite)
        names.insert(benchmark.name);
    for (const char* required :
         {"rawcaudio", "mpeg2dec", "pegwitenc", "172.mgrid", "171.swim",
          "cjpeg", "epic", "g721enc"}) {
        EXPECT_TRUE(names.contains(required)) << required;
    }
}

TEST(SuiteTest, FractionsAreCalibratedAgainstFigure2)
{
    for (const auto& benchmark : mediaFpSuite()) {
        const auto& app = benchmark.transformed;
        const double modulo =
            categoryTime(app, LoopFeature::kModuloSchedulable);
        const double spec =
            categoryTime(app, LoopFeature::kNeedsSpeculation);
        const double sub =
            categoryTime(app, LoopFeature::kHasSubroutineCall);
        const double total = modulo + spec + sub +
                             static_cast<double>(app.acyclic_cycles);
        ASSERT_GT(total, 0.0);
        // Calibration holds the modulo fraction within a few points
        // (invocation counts are integers).
        EXPECT_NEAR(modulo / total, benchmark.fractions.modulo, 0.05)
            << benchmark.name;
        EXPECT_NEAR(static_cast<double>(app.acyclic_cycles) / total,
                    benchmark.fractions.acyclic, 0.05)
            << benchmark.name;
    }
}

TEST(SuiteTest, TransformedAndUntransformedShareProfiles)
{
    for (const auto& benchmark : mediaFpSuite()) {
        ASSERT_EQ(benchmark.transformed.sites.size(),
                  benchmark.untransformed.sites.size())
            << benchmark.name;
        for (std::size_t s = 0; s < benchmark.transformed.sites.size();
             ++s) {
            EXPECT_EQ(benchmark.transformed.sites[s].invocations,
                      benchmark.untransformed.sites[s].invocations);
            EXPECT_EQ(benchmark.transformed.sites[s].iterations,
                      benchmark.untransformed.sites[s].iterations);
        }
        EXPECT_EQ(benchmark.transformed.acyclic_cycles,
                  benchmark.untransformed.acyclic_cycles);
    }
}

TEST(SuiteTest, UntransformedBinariesNeverCarryFission)
{
    for (const auto& benchmark : mediaFpSuite()) {
        for (const auto& site : benchmark.untransformed.sites)
            EXPECT_TRUE(site.fissioned.empty());
    }
}

TEST(SuiteTest, MgridCarriesFissionedLoops)
{
    const auto benchmark = findBenchmark("172.mgrid");
    int fissioned_sites = 0;
    for (const auto& site : benchmark.transformed.sites)
        fissioned_sites += site.fissioned.empty() ? 0 : 1;
    EXPECT_GE(fissioned_sites, 2);  // resid and psinv.
}

TEST(SuiteTest, MediaSuiteIsMostlyModuloSchedulable)
{
    // Figure 2's left group: the media/FP apps spend the majority of
    // their time in modulo-schedulable loops.
    for (const auto& benchmark : mediaFpSuite())
        EXPECT_GE(benchmark.fractions.modulo, 0.5) << benchmark.name;
}

TEST(SuiteTest, IntegerSuiteIsMostlyNot)
{
    for (const auto& benchmark : integerSuite()) {
        EXPECT_LE(benchmark.fractions.modulo, 0.2) << benchmark.name;
        EXPECT_FALSE(benchmark.media_or_fp);
    }
}

TEST(SuiteTest, FindBenchmarkReturnsRequested)
{
    EXPECT_EQ(findBenchmark("rawcaudio").name, "rawcaudio");
}

TEST(SuiteDeathTest, FindUnknownBenchmarkIsFatal)
{
    EXPECT_EXIT(findBenchmark("no-such-benchmark"),
                ::testing::ExitedWithCode(1), "");
}

}  // namespace
}  // namespace veal
