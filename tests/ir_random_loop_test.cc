#include "veal/ir/random_loop.h"

#include <gtest/gtest.h>

#include "veal/ir/loop_analysis.h"

namespace veal {
namespace {

class RandomLoopSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomLoopSeeds, AlwaysVerifies)
{
    RandomLoopParams params;
    Loop loop = makeRandomLoop(params, GetParam());
    EXPECT_FALSE(loop.verify().has_value());
}

TEST_P(RandomLoopSeeds, AnalysisNeverCrashesAndAddressesAreAffine)
{
    RandomLoopParams params;
    Loop loop = makeRandomLoop(params, GetParam());
    const auto analysis = analyzeLoop(loop);
    // Random loops only build affine addresses and counted control.
    EXPECT_TRUE(analysis.ok()) << toString(analysis.reject);
}

TEST_P(RandomLoopSeeds, DeterministicForSameSeed)
{
    RandomLoopParams params;
    Loop a = makeRandomLoop(params, GetParam());
    Loop b = makeRandomLoop(params, GetParam());
    ASSERT_EQ(a.size(), b.size());
    for (OpId id = 0; id < a.size(); ++id) {
        EXPECT_EQ(a.op(id).opcode, b.op(id).opcode);
        EXPECT_EQ(a.op(id).inputs, b.op(id).inputs);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLoopSeeds,
                         ::testing::Range<std::uint64_t>(0, 25));

TEST(RandomLoopTest, RespectsSizeParameters)
{
    RandomLoopParams params;
    params.min_compute_ops = 5;
    params.max_compute_ops = 10;
    params.max_loads = 2;
    params.max_stores = 1;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        Loop loop = makeRandomLoop(params, seed);
        const int loads = loop.countOps([](const Operation& op) {
            return op.opcode == Opcode::kLoad;
        });
        const int stores = loop.countOps([](const Operation& op) {
            return op.opcode == Opcode::kStore;
        });
        EXPECT_LE(loads, 2);
        EXPECT_EQ(stores, 1);
    }
}

TEST(RandomLoopTest, RecurrenceProbabilityZeroMeansAcyclicDataflow)
{
    RandomLoopParams params;
    params.recurrence_prob = 0.0;
    Loop loop = makeRandomLoop(params, 3);
    // Only the induction self-edge may be carried.
    for (const auto& edge : loop.allEdges()) {
        if (edge.distance > 0) {
            EXPECT_TRUE(loop.op(edge.from).is_induction);
        }
    }
}

}  // namespace
}  // namespace veal
