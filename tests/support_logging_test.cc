#include "veal/support/logging.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "veal/support/assert.h"

namespace veal {
namespace {

/** Captures log traffic for inspection. */
class CaptureSink : public LogSink {
  public:
    void
    write(LogLevel level, const std::string& message) override
    {
        entries.emplace_back(level, message);
    }

    std::vector<std::pair<LogLevel, std::string>> entries;
};

class LoggingTest : public ::testing::Test {
  protected:
    void SetUp() override { previous_ = setLogSink(&sink_); }
    void TearDown() override { setLogSink(previous_); }

    CaptureSink sink_;
    LogSink* previous_ = nullptr;
};

TEST_F(LoggingTest, InformDeliversComposedMessage)
{
    inform("loop ", 42, " translated in ", 1.5, " ms");
    ASSERT_EQ(sink_.entries.size(), 1u);
    EXPECT_EQ(sink_.entries[0].first, LogLevel::kInfo);
    EXPECT_EQ(sink_.entries[0].second, "loop 42 translated in 1.5 ms");
}

TEST_F(LoggingTest, WarnUsesWarnLevel)
{
    warn("stream budget tight");
    ASSERT_EQ(sink_.entries.size(), 1u);
    EXPECT_EQ(sink_.entries[0].first, LogLevel::kWarn);
}

TEST_F(LoggingTest, MultipleMessagesArriveInOrder)
{
    inform("first");
    warn("second");
    inform("third");
    ASSERT_EQ(sink_.entries.size(), 3u);
    EXPECT_EQ(sink_.entries[0].second, "first");
    EXPECT_EQ(sink_.entries[1].second, "second");
    EXPECT_EQ(sink_.entries[2].second, "third");
}

TEST_F(LoggingTest, NullSinkRestoresDefault)
{
    // Installing nullptr falls back to the default sink (stderr), and the
    // previous sink is returned so callers can restore it.
    LogSink* mine = setLogSink(nullptr);
    EXPECT_EQ(mine, &sink_);
    // Restore for TearDown symmetry.
    setLogSink(&sink_);
}

TEST_F(LoggingTest, LogSinkAccessorMatchesInstalled)
{
    EXPECT_EQ(logSink(), &sink_);
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("internal invariant broken"), "");
}

TEST(PanicGuardTest, GuardedPanicThrowsInsteadOfAborting)
{
    ScopedPanicGuard guard;
    EXPECT_TRUE(ScopedPanicGuard::active());
    try {
        panic("tripped on purpose: ", 42);
        FAIL() << "panic returned";
    } catch (const PanicError& error) {
        EXPECT_STREQ(error.what(), "tripped on purpose: 42");
    }
}

TEST(PanicGuardTest, GuardsNest)
{
    ScopedPanicGuard outer;
    {
        ScopedPanicGuard inner;
        EXPECT_THROW(panic("inner"), PanicError);
    }
    // Still guarded by the outer scope.
    EXPECT_TRUE(ScopedPanicGuard::active());
    EXPECT_THROW(panic("outer"), PanicError);
}

TEST(PanicGuardTest, GuardIsThreadLocal)
{
    ScopedPanicGuard guard;
    std::thread other([] { EXPECT_FALSE(ScopedPanicGuard::active()); });
    other.join();
    EXPECT_TRUE(ScopedPanicGuard::active());
}

TEST(PanicGuardTest, GuardedAssertThrows)
{
    ScopedPanicGuard guard;
    const int ii = 0;
    EXPECT_THROW(VEAL_ASSERT(ii >= 1, "bad II ", ii), PanicError);
}

TEST(LoggingDeathTest, FatalExitsWithStatusOne)
{
    EXPECT_EXIT(fatal("bad configuration"),
                ::testing::ExitedWithCode(1), "");
}

}  // namespace
}  // namespace veal
