#include "veal/fuzz/oracle.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "tests/testing/random_workloads.h"
#include "veal/ir/loop_builder.h"
#include "veal/ir/random_loop.h"
#include "veal/support/logging.h"
#include "veal/workloads/kernels.h"

namespace veal {
namespace {

using testing::injectOffByOne;

TEST(MakeFuzzInput, DeterministicPerSeed)
{
    const Loop loop = makeDotProductLoop("dot");
    const ExecutionInput a = makeFuzzInput(loop, 7, 12);
    const ExecutionInput b = makeFuzzInput(loop, 7, 12);
    EXPECT_EQ(a.live_ins, b.live_ins);
    EXPECT_EQ(a.initial, b.initial);
    EXPECT_EQ(a.memory, b.memory);
    EXPECT_EQ(a.iterations, 12);

    const ExecutionInput c = makeFuzzInput(loop, 8, 12);
    EXPECT_NE(a.memory, c.memory);
}

TEST(Oracle, PassesOnKernelLoops)
{
    const LaConfig config = LaConfig::proposed();
    const Loop kernels[] = {
        makeDotProductLoop("dot"),
        makeFirLoop("fir", 8),
        makeCopyScaleLoop("copy"),
        makeSadLoop("sad"),
        makeQuantLoop("quant"),
    };
    int passes = 0;
    for (const auto& loop : kernels) {
        const OracleReport report = runOracle(loop, config, 11);
        EXPECT_FALSE(isFailure(report.outcome))
            << loop.name() << ": " << toString(report.outcome) << " "
            << report.detail;
        passes += report.outcome == OracleOutcome::kPass ? 1 : 0;
        if (report.outcome == OracleOutcome::kPass) {
            EXPECT_GE(report.ii, 1) << loop.name();
        }
    }
    EXPECT_GE(passes, 3);
}

TEST(Oracle, NeverFailsOnRandomLoopsAcrossModes)
{
    const LaConfig config = LaConfig::proposed();
    constexpr TranslationMode kModes[] = {
        TranslationMode::kStatic,
        TranslationMode::kFullyDynamic,
        TranslationMode::kFullyDynamicHeight,
        TranslationMode::kHybridStaticCcaPriority,
    };
    RandomLoopParams params;
    int passes = 0;
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
        const Loop loop = makeRandomLoop(params, seed);
        OracleOptions options;
        options.mode = kModes[seed % 4];
        const OracleReport report = runOracle(loop, config, seed, options);
        EXPECT_FALSE(isFailure(report.outcome))
            << "seed " << seed << ": " << toString(report.outcome) << " "
            << report.detail;
        passes += report.outcome == OracleOutcome::kPass ? 1 : 0;
    }
    EXPECT_GT(passes, 0);
}

TEST(Oracle, ClassifiesTranslatorReject)
{
    LoopBuilder b("fp-loop");
    const OpId i = b.induction(1);
    const OpId x = b.load("in", i);
    const OpId f = b.itof(x);
    const OpId g = b.fadd(f, f);
    b.store("out", i, g);
    b.loopBack(i, b.constant(64));

    LaConfig no_fp = LaConfig::proposed();
    no_fp.num_fp_units = 0;
    const OracleReport report = runOracle(b.build(), no_fp, 3);
    EXPECT_EQ(report.outcome, OracleOutcome::kTranslatorReject);
    EXPECT_FALSE(report.detail.empty());
}

TEST(Oracle, InjectedDependenceBugIsCaughtByTheValidator)
{
    const LaConfig config = LaConfig::proposed();
    const Loop loop = makeDotProductLoop("dot");

    OracleOptions options;
    ASSERT_EQ(runOracle(loop, config, 5, options).outcome,
              OracleOutcome::kPass);

    options.perturb = injectOffByOne;
    const OracleReport report = runOracle(loop, config, 5, options);
    EXPECT_EQ(report.outcome, OracleOutcome::kValidatorReject)
        << report.detail;
    EXPECT_NE(report.detail.find("dependence"), std::string::npos)
        << report.detail;
}

TEST(Oracle, InjectedAddressStreamBugIsCaughtAsDivergence)
{
    // Shift the store address generator's affine pattern one element
    // off.  The schedule stays perfectly valid -- no structural
    // invariant can see it -- so only differential execution against the
    // interpreter catches the bug.
    const Loop loop = makeCopyScaleLoop("copy");
    const LaConfig config = LaConfig::proposed();
    OracleOptions options;
    ASSERT_EQ(runOracle(loop, config, 9, options).outcome,
              OracleOutcome::kPass);

    options.perturb = [](TranslationResult& translation) {
        ASSERT_FALSE(translation.analysis.store_streams.empty());
        translation.analysis.store_streams[0].offset += 1;
    };
    const OracleReport report = runOracle(loop, config, 9, options);
    EXPECT_EQ(report.outcome, OracleOutcome::kDivergence) << report.detail;
    EXPECT_FALSE(report.detail.empty());
}

TEST(Oracle, InjectedPanicIsClassifiedAsCrashGuard)
{
    const Loop loop = makeDotProductLoop("dot");
    OracleOptions options;
    options.perturb = [](TranslationResult&) {
        panic("injected fuzz-test panic");
    };
    const OracleReport report =
        runOracle(loop, LaConfig::proposed(), 1, options);
    EXPECT_EQ(report.outcome, OracleOutcome::kCrashGuard);
    EXPECT_NE(report.detail.find("injected fuzz-test panic"),
              std::string::npos)
        << report.detail;
}

TEST(Oracle, OutcomeNamesAndFailureClasses)
{
    EXPECT_STREQ(toString(OracleOutcome::kPass), "pass");
    EXPECT_STREQ(toString(OracleOutcome::kTranslatorReject),
                 "translator-reject");
    EXPECT_STREQ(toString(OracleOutcome::kValidatorReject),
                 "validator-reject");
    EXPECT_STREQ(toString(OracleOutcome::kDivergence), "divergence");
    EXPECT_STREQ(toString(OracleOutcome::kCrashGuard), "crash-guard");
    EXPECT_STREQ(toString(OracleOutcome::kFaultRecovered),
                 "fault-recovered");

    EXPECT_FALSE(isFailure(OracleOutcome::kPass));
    EXPECT_FALSE(isFailure(OracleOutcome::kTranslatorReject));
    EXPECT_TRUE(isFailure(OracleOutcome::kValidatorReject));
    EXPECT_TRUE(isFailure(OracleOutcome::kDivergence));
    EXPECT_TRUE(isFailure(OracleOutcome::kCrashGuard));
    EXPECT_FALSE(isFailure(OracleOutcome::kFaultRecovered))
        << "recovery is the hardening working, not a bug";
}

TEST(OracleFaults, RecoveredAtADeeperRungStillMatchesTheInterpreter)
{
    OracleOptions options;
    FaultPlan plan;
    plan.faults.push_back(
        ArmedFault{FaultSite::kSchedulerPlacement, 0, 1});
    options.fault_plan = plan;

    const OracleReport report =
        runOracle(makeDotProductLoop("dot"), LaConfig::proposed(), 3,
                  options);
    EXPECT_EQ(report.outcome, OracleOutcome::kFaultRecovered)
        << report.detail;
    EXPECT_EQ(report.rung, DegradationRung::kRelaxedIi);
    EXPECT_GE(report.faults_fired, 1);
    EXPECT_NE(report.detail.find("relaxed-ii"), std::string::npos)
        << report.detail;
}

TEST(OracleFaults, CleanCpuPinCountsAsRecovered)
{
    OracleOptions options;
    FaultPlan plan;
    plan.faults.push_back(
        ArmedFault{FaultSite::kSchedulerPlacement, 0, -1});
    options.fault_plan = plan;

    const OracleReport report =
        runOracle(makeDotProductLoop("dot"), LaConfig::proposed(), 3,
                  options);
    EXPECT_EQ(report.outcome, OracleOutcome::kFaultRecovered)
        << report.detail;
    EXPECT_NE(report.detail.find("pinned to CPU"), std::string::npos)
        << report.detail;
}

TEST(OracleFaults, ArmedButSilentPlanKeepsThePassOutcome)
{
    OracleOptions options;
    FaultPlan plan;
    plan.faults.push_back(
        ArmedFault{FaultSite::kSchedulerPlacement, 1000, 1});
    options.fault_plan = plan;

    const OracleReport report =
        runOracle(makeDotProductLoop("dot"), LaConfig::proposed(), 3,
                  options);
    EXPECT_EQ(report.outcome, OracleOutcome::kPass) << report.detail;
    EXPECT_EQ(report.faults_fired, 0);
}

}  // namespace
}  // namespace veal
