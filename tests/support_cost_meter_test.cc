#include "veal/support/cost_meter.h"

#include <gtest/gtest.h>
#include <set>
#include <string>

namespace veal {
namespace {

TEST(CostMeterTest, StartsEmpty)
{
    CostMeter meter;
    EXPECT_EQ(meter.totalInstructions(), 0.0);
    for (int i = 0; i < kNumTranslationPhases; ++i) {
        EXPECT_EQ(meter.units(static_cast<TranslationPhase>(i)), 0u);
    }
}

TEST(CostMeterTest, ChargeAccumulatesPerPhase)
{
    CostMeter meter;
    meter.charge(TranslationPhase::kPriority, 10);
    meter.charge(TranslationPhase::kPriority, 5);
    meter.charge(TranslationPhase::kScheduling, 3);
    EXPECT_EQ(meter.units(TranslationPhase::kPriority), 15u);
    EXPECT_EQ(meter.units(TranslationPhase::kScheduling), 3u);
    EXPECT_EQ(meter.units(TranslationPhase::kCcaMapping), 0u);
}

TEST(CostMeterTest, InstructionsApplyWeights)
{
    CostMeter::Weights weights{};
    weights.instructions_per_unit.fill(0.0);
    weights.instructions_per_unit[static_cast<int>(
        TranslationPhase::kMiiComputation)] = 2.5;
    CostMeter meter(weights);
    meter.charge(TranslationPhase::kMiiComputation, 4);
    EXPECT_DOUBLE_EQ(meter.instructions(TranslationPhase::kMiiComputation),
                     10.0);
    EXPECT_DOUBLE_EQ(meter.totalInstructions(), 10.0);
}

TEST(CostMeterTest, ClearKeepsWeights)
{
    CostMeter meter;
    meter.charge(TranslationPhase::kCcaMapping, 100);
    meter.clear();
    EXPECT_EQ(meter.units(TranslationPhase::kCcaMapping), 0u);
    meter.charge(TranslationPhase::kCcaMapping, 1);
    EXPECT_GT(meter.totalInstructions(), 0.0);
}

TEST(CostMeterTest, AddMergesCounters)
{
    CostMeter a;
    CostMeter b;
    a.charge(TranslationPhase::kPriority, 7);
    b.charge(TranslationPhase::kPriority, 3);
    b.charge(TranslationPhase::kRegisterAssignment, 2);
    a.add(b);
    EXPECT_EQ(a.units(TranslationPhase::kPriority), 10u);
    EXPECT_EQ(a.units(TranslationPhase::kRegisterAssignment), 2u);
}

TEST(CostMeterTest, CalibratedWeightsAreAllPositive)
{
    const auto& weights = CostMeter::calibratedWeights();
    for (int i = 0; i < kNumTranslationPhases; ++i)
        EXPECT_GT(weights.instructions_per_unit[i], 0.0) << i;
}

TEST(CostMeterTest, PhaseNamesAreDistinct)
{
    std::set<std::string> names;
    for (int i = 0; i < kNumTranslationPhases; ++i)
        names.insert(toString(static_cast<TranslationPhase>(i)));
    EXPECT_EQ(names.size(), static_cast<std::size_t>(
        kNumTranslationPhases));
}

}  // namespace
}  // namespace veal
