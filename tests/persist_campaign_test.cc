/**
 * The every-crash-point persistence campaign, exercised small: every
 * (mode, trigger) pair over both workloads must come back clean, the
 * report must be byte-identical for any thread count, and the FaultyVfs
 * primitives it stands on must behave exactly as documented.
 */

#include "veal/fault/persist_campaign.h"

#include <filesystem>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "veal/fault/faulty_vfs.h"
#include "veal/support/metrics/metrics.h"
#include "veal/vm/persist/vfs.h"

namespace veal {
namespace {

namespace fs = std::filesystem;

using fault::FaultyVfs;
using fault::FaultyVfsOptions;
using fault::VfsFaultMode;

/** Small-but-real campaign shape: a couple of seconds, not minutes. */
PersistCampaignOptions
smallCampaign(const std::string& scratch)
{
    PersistCampaignOptions options;
    options.seed = 5;
    options.requests = 24;
    options.tenants = 2;
    options.loop_pool = 4;
    options.tick_size = 8;
    options.scratch_dir = scratch;
    return options;
}

class PersistCampaignTest : public ::testing::Test {
  protected:
    void
    SetUp() override
    {
        scratch_ = fs::temp_directory_path() /
                   ("veal-campaign-test-" +
                    std::string(::testing::UnitTest::GetInstance()
                                    ->current_test_info()
                                    ->name()));
        fs::remove_all(scratch_);
    }

    void
    TearDown() override
    {
        fs::remove_all(scratch_);
    }

    fs::path scratch_;
};

TEST_F(PersistCampaignTest, EveryCrashPointRecoversClean)
{
    metrics::Registry registry;
    const PersistCampaignSummary summary =
        runPersistCampaign(smallCampaign(scratch_.string()), &registry);

    EXPECT_TRUE(summary.clean()) << summary.render();
    EXPECT_GT(summary.service_mutation_ops, 0);
    EXPECT_GT(summary.churn_mutation_ops, 0);
    // All four modes, the full trigger space each.
    EXPECT_EQ(summary.points,
              4 * (summary.service_mutation_ops +
                   summary.churn_mutation_ops));
    EXPECT_EQ(static_cast<std::int64_t>(summary.points_by_mode.size()),
              4);
    // Crash/ENOSPC points always degrade; the aggregate must show it.
    EXPECT_GT(summary.degraded_runs, 0);
    EXPECT_TRUE(summary.multiprocess_ok) << summary.multiprocess_detail;

    EXPECT_EQ(registry.counter("persist_campaign.points"),
              summary.points);
    EXPECT_EQ(registry.counter("persist_campaign.violations"), 0);
    EXPECT_EQ(registry.counter("persist_campaign.multiprocess_ok"), 1);
}

TEST_F(PersistCampaignTest, ReportIsByteIdenticalForAnyThreadCount)
{
    PersistCampaignOptions one = smallCampaign((scratch_ / "t1").string());
    one.threads = 1;
    PersistCampaignOptions four =
        smallCampaign((scratch_ / "t4").string());
    four.threads = 4;

    const std::string render_one = runPersistCampaign(one).render();
    const std::string render_four = runPersistCampaign(four).render();
    EXPECT_EQ(render_one, render_four);
}

TEST_F(PersistCampaignTest, SingleModeCampaignRestrictsTheGrid)
{
    PersistCampaignOptions options = smallCampaign(scratch_.string());
    options.modes = {VfsFaultMode::kEnospc};
    const PersistCampaignSummary summary = runPersistCampaign(options);
    EXPECT_TRUE(summary.clean()) << summary.render();
    EXPECT_EQ(static_cast<std::int64_t>(summary.points_by_mode.size()),
              1);
    EXPECT_EQ(summary.points_by_mode.count("enospc"), 1u);
}

// --- FaultyVfs primitives --------------------------------------------

TEST_F(PersistCampaignTest, FaultyVfsCrashTearsTheTriggeringWrite)
{
    fs::create_directories(scratch_);
    FaultyVfsOptions options;
    options.mode = VfsFaultMode::kCrash;
    options.trigger_op = 0;
    FaultyVfs vfs(persist::realVfs(), options);

    const std::string path = (scratch_ / "file").string();
    const std::vector<std::uint8_t> payload(100, 0xab);
    EXPECT_FALSE(vfs.append(path, payload)) << "the crashing write fails";
    EXPECT_TRUE(vfs.died());
    EXPECT_TRUE(vfs.fired());

    // A *strict* prefix landed: never the full buffer (an acked-iff-
    // applied recovery contract depends on this).
    const auto on_disk = persist::realVfs()->fileSize(path);
    const std::int64_t landed = on_disk.value_or(0);
    EXPECT_LT(landed, 100);

    // Dead means dead: reads, writes, even exists() fail from now on.
    EXPECT_FALSE(vfs.exists(path));
    EXPECT_FALSE(vfs.readFile(path).has_value());
    EXPECT_FALSE(vfs.append(path, payload));
    EXPECT_EQ(vfs.tryLockExclusive((scratch_ / "L").string()), nullptr);
}

TEST_F(PersistCampaignTest, FaultyVfsShortWriteFailsOnceThenRecovers)
{
    fs::create_directories(scratch_);
    FaultyVfsOptions options;
    options.mode = VfsFaultMode::kShortWrite;
    options.trigger_op = 0;
    FaultyVfs vfs(persist::realVfs(), options);

    const std::string path = (scratch_ / "file").string();
    const std::vector<std::uint8_t> payload(64, 0x5a);
    EXPECT_FALSE(vfs.append(path, payload));
    // Transient: the next write goes through whole.
    EXPECT_TRUE(vfs.append(path, payload));
    EXPECT_TRUE(vfs.exists(path));
}

TEST_F(PersistCampaignTest, FaultyVfsBitFlipCorruptsExactlyOneBit)
{
    fs::create_directories(scratch_);
    FaultyVfsOptions options;
    options.mode = VfsFaultMode::kBitFlip;
    options.trigger_op = 0;
    options.seed = 9;
    FaultyVfs vfs(persist::realVfs(), options);

    const std::string path = (scratch_ / "file").string();
    const std::vector<std::uint8_t> payload(32, 0x00);
    EXPECT_TRUE(vfs.append(path, payload))
        << "a bit flip is silent: the write reports success";

    const auto written = persist::realVfs()->readFile(path);
    ASSERT_TRUE(written.has_value());
    ASSERT_EQ(written->size(), payload.size());
    int flipped_bits = 0;
    for (std::size_t i = 0; i < written->size(); ++i) {
        std::uint8_t diff = (*written)[i] ^ payload[i];
        while (diff != 0) {
            flipped_bits += diff & 1;
            diff >>= 1;
        }
    }
    EXPECT_EQ(flipped_bits, 1);
}

TEST_F(PersistCampaignTest, FaultyVfsEnospcFailsMutationsButKeepsReads)
{
    fs::create_directories(scratch_);
    const std::string path = (scratch_ / "file").string();
    persist::realVfs()->writeFile(path, {1, 2, 3});

    FaultyVfsOptions options;
    options.mode = VfsFaultMode::kEnospc;
    options.trigger_op = 0;
    FaultyVfs vfs(persist::realVfs(), options);

    EXPECT_FALSE(vfs.append(path, {4}));
    EXPECT_FALSE(vfs.writeFile((scratch_ / "new").string(), {5}));
    EXPECT_FALSE(vfs.renameFile(path, (scratch_ / "moved").string()));
    // The disk is full, not gone: reads still serve.
    EXPECT_TRUE(vfs.exists(path));
    const auto bytes = vfs.readFile(path);
    ASSERT_TRUE(bytes.has_value());
    EXPECT_EQ(bytes->size(), 3u);
    // Nothing mutated despite three attempts.
    EXPECT_EQ(persist::realVfs()->fileSize(path).value_or(0), 3);
}

TEST_F(PersistCampaignTest, FaultyVfsDrawsAreDeterministicPerTrigger)
{
    fs::create_directories(scratch_);
    const std::vector<std::uint8_t> payload(200, 0x77);
    const auto run_once = [&](const std::string& name) {
        FaultyVfsOptions options;
        options.mode = VfsFaultMode::kCrash;
        options.trigger_op = 0;
        options.seed = 42;
        FaultyVfs vfs(persist::realVfs(), options);
        const std::string path = (scratch_ / name).string();
        vfs.append(path, payload);
        return persist::realVfs()->fileSize(path).value_or(0);
    };
    EXPECT_EQ(run_once("a"), run_once("b"))
        << "the torn-write cut must be a pure function of (seed, "
           "trigger)";
}

}  // namespace
}  // namespace veal
