#include "veal/ir/transforms.h"

#include <gtest/gtest.h>

#include "veal/ir/loop_analysis.h"
#include "veal/ir/loop_builder.h"
#include "veal/workloads/kernels.h"

namespace veal {
namespace {

// ---------------------------------------------------------------- inlining

TEST(InlineTest, ReplacesKnownCallWithBody)
{
    LoopBuilder b("call");
    const OpId iv = b.induction(1);
    const OpId x = b.load("in", iv);
    const OpId clipped = b.call("sat8", {Operand{x, 0}});
    b.store("out", iv, clipped);
    b.loopBack(iv, b.constant(64));
    Loop loop = b.build();
    ASSERT_EQ(loop.feature(), LoopFeature::kHasSubroutineCall);

    Loop inlined = inlineCalls(loop, standardCalleeLibrary());
    EXPECT_EQ(inlined.feature(), LoopFeature::kModuloSchedulable);
    EXPECT_EQ(inlined.countOps([](const Operation& op) {
                  return op.opcode == Opcode::kCall;
              }),
              0);
    // sat8 expands to max + min.
    EXPECT_EQ(inlined.countOps([](const Operation& op) {
                  return op.opcode == Opcode::kMin ||
                         op.opcode == Opcode::kMax;
              }),
              2);
    EXPECT_FALSE(inlined.verify().has_value());
}

TEST(InlineTest, UnknownCalleeSurvives)
{
    LoopBuilder b("unknown");
    const OpId iv = b.induction(1);
    const OpId x = b.load("in", iv);
    const OpId s = b.call("sin", {Operand{x, 0}});
    b.store("out", iv, s);
    b.loopBack(iv, b.constant(64));
    Loop loop = b.build();

    Loop inlined = inlineCalls(loop, standardCalleeLibrary());
    EXPECT_EQ(inlined.feature(), LoopFeature::kHasSubroutineCall);
    EXPECT_EQ(inlined.countOps([](const Operation& op) {
                  return op.opcode == Opcode::kCall;
              }),
              1);
}

TEST(InlineTest, CallResultFeedsDownstreamUsers)
{
    LoopBuilder b("chain");
    const OpId iv = b.induction(1);
    const OpId x = b.load("in", iv);
    const OpId c = b.call("iabs", {Operand{x, 0}});
    const OpId doubled = b.add(c, c);
    b.store("out", iv, doubled);
    b.loopBack(iv, b.constant(64));
    Loop loop = b.build();

    Loop inlined = inlineCalls(loop, standardCalleeLibrary());
    EXPECT_FALSE(inlined.verify().has_value());
    // The add must now consume the max produced by the inlined iabs.
    bool add_consumes_max = false;
    for (const auto& op : inlined.operations()) {
        if (op.opcode != Opcode::kAdd || op.is_induction)
            continue;
        for (const auto& input : op.inputs) {
            add_consumes_max |=
                inlined.op(input.producer).opcode == Opcode::kMax;
        }
    }
    EXPECT_TRUE(add_consumes_max);
}

TEST(InlineTest, PreservesTripCountAndMemoryEdges)
{
    LoopBuilder b("meta");
    b.setTripCount(777);
    const OpId iv = b.induction(1);
    const OpId x = b.load("a", iv);
    const OpId y = b.call("avg2", {Operand{x, 0}, Operand{x, 0}});
    const OpId st = b.store("a", iv, y);
    b.memoryEdge(st, x, 1);
    b.loopBack(iv, b.constant(777));
    Loop loop = b.build();

    Loop inlined = inlineCalls(loop, standardCalleeLibrary());
    EXPECT_EQ(inlined.tripCount(), 777);
    EXPECT_EQ(inlined.memoryEdges().size(), 1u);
    EXPECT_EQ(inlined.memoryEdges()[0].distance, 1);
}

// ---------------------------------------------------------------- fission

Loop
makeWideAccumulateLoop(int points)
{
    LoopBuilder b("wide" + std::to_string(points));
    const OpId iv = b.induction(1);
    OpId acc = kNoOp;
    for (int p = 0; p < points; ++p) {
        const OpId offset = b.constant(p * 3);
        const OpId x = b.load("r", b.add(iv, offset));
        const OpId scaled = b.mul(x, b.constant(p + 1));
        acc = acc == kNoOp ? scaled : b.add(acc, scaled);
    }
    b.store("z", iv, acc);
    b.loopBack(iv, b.constant(128));
    return b.build();
}

TEST(FissionTest, LoopWithinBudgetIsNotSplit)
{
    Loop loop = makeWideAccumulateLoop(4);
    EXPECT_FALSE(fissionLoop(loop, 16, 8).has_value());
}

TEST(FissionTest, SplitsOverBudgetLoop)
{
    Loop loop = makeWideAccumulateLoop(20);
    const auto result = fissionLoop(loop, 12, 4);
    ASSERT_TRUE(result.has_value());
    EXPECT_GE(result->loops.size(), 2u);
    EXPECT_GT(result->comm_streams, 0);
    for (const auto& piece : result->loops) {
        EXPECT_FALSE(piece.verify().has_value());
        const auto analysis = analyzeLoop(piece);
        ASSERT_TRUE(analysis.ok()) << piece.name();
        EXPECT_LE(analysis.load_streams.size(), 12u);
        EXPECT_LE(analysis.store_streams.size(), 4u);
    }
}

TEST(FissionTest, PiecesCommunicateThroughCommArrays)
{
    Loop loop = makeWideAccumulateLoop(20);
    const auto result = fissionLoop(loop, 12, 4);
    ASSERT_TRUE(result.has_value());
    bool found_comm_store = false;
    bool found_comm_load = false;
    for (const auto& piece : result->loops) {
        for (const auto& op : piece.operations()) {
            if (op.symbol.rfind("fiss_comm_", 0) == 0) {
                found_comm_store |= op.opcode == Opcode::kStore;
                found_comm_load |= op.opcode == Opcode::kLoad;
            }
        }
    }
    EXPECT_TRUE(found_comm_store);
    EXPECT_TRUE(found_comm_load);
}

TEST(FissionTest, EveryPieceKeepsLoopControl)
{
    Loop loop = makeWideAccumulateLoop(20);
    const auto result = fissionLoop(loop, 12, 4);
    ASSERT_TRUE(result.has_value());
    for (const auto& piece : result->loops) {
        EXPECT_EQ(piece.countOps([](const Operation& op) {
                      return op.opcode == Opcode::kBranch;
                  }),
                  1)
            << piece.name();
        EXPECT_EQ(piece.tripCount(), loop.tripCount());
    }
}

TEST(FissionTest, RecurrenceCannotBeSplit)
{
    // One dependence cycle touching every load: a single SCC over budget.
    LoopBuilder b("unsplittable");
    const OpId iv = b.induction(1);
    OpId acc = kNoOp;
    std::vector<OpId> adds;
    for (int p = 0; p < 10; ++p) {
        const OpId offset = b.constant(p * 5);
        const OpId x = b.load("r", b.add(iv, offset));
        const OpId sum = b.add(x, acc == kNoOp ? x : acc);
        adds.push_back(sum);
        acc = sum;
    }
    // Close the cycle: the first add consumes the last's carried value.
    b.loop().mutableOp(adds.front()).inputs[1] =
        LoopBuilder::carried(adds.back(), 1);
    b.store("z", iv, acc);
    b.loopBack(iv, b.constant(64));
    Loop loop = b.build();

    EXPECT_FALSE(fissionLoop(loop, 4, 2).has_value());
}

TEST(FissionTest, RespectsFpOpBudget)
{
    // An FP chain that fits the stream budget but not the FP op budget.
    LoopBuilder b("fpwide");
    const OpId iv = b.induction(1);
    const OpId w = b.liveIn("w");
    OpId acc = kNoOp;
    for (int p = 0; p < 6; ++p) {
        const OpId offset = b.constant(p);
        const OpId x = b.load("r", b.add(iv, offset));
        const OpId weighted = b.fmul(x, w);
        acc = acc == kNoOp ? weighted : b.fadd(acc, weighted);
    }
    b.store("z", iv, acc);
    b.loopBack(iv, b.constant(64));
    Loop loop = b.build();

    FissionBudget budget;
    budget.max_load_streams = 16;
    budget.max_store_streams = 8;
    budget.max_fp_ops = 6;  // 11 FP ops total: must split.
    const auto result = fissionLoop(loop, budget);
    ASSERT_TRUE(result.has_value());
    EXPECT_GE(result->loops.size(), 2u);
    for (const auto& piece : result->loops) {
        const auto analysis = analyzeLoop(piece);
        ASSERT_TRUE(analysis.ok());
        int fp_ops = 0;
        for (const auto& op : piece.operations()) {
            if (analysis.roles[static_cast<std::size_t>(op.id)] ==
                    OpRole::kCompute &&
                opcodeInfo(op.opcode).is_float) {
                ++fp_ops;
            }
        }
        EXPECT_LE(fp_ops, 6) << piece.name();
    }
}

TEST(FissionTest, MgridStencilSplitsUnderProposedBudget)
{
    Loop loop = makeStencilNLoop("resid", 20);
    FissionBudget budget;
    budget.max_load_streams = 16;
    budget.max_store_streams = 8;
    budget.max_int_ops = 32;
    budget.max_fp_ops = 24;
    const auto result = fissionLoop(loop, budget);
    ASSERT_TRUE(result.has_value());
    EXPECT_GE(result->loops.size(), 2u);
}

}  // namespace
}  // namespace veal
