#include "veal/explore/sweep.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "veal/arch/cpu_config.h"

namespace veal::explore {
namespace {

/** A small suite so the grid tests stay fast. */
std::vector<Benchmark>
smallSuite()
{
    auto suite = mediaFpSuite();
    suite.resize(3);
    return suite;
}

/** A small config grid exercising CCA and non-CCA baselines. */
std::vector<LaConfig>
smallGrid()
{
    std::vector<LaConfig> configs;
    configs.push_back(LaConfig::proposed());

    LaConfig narrow = LaConfig::infinite();
    narrow.num_int_units = 2;
    configs.push_back(narrow);

    LaConfig few_regs = LaConfig::infiniteWithCca();
    few_regs.num_int_registers = 4;
    configs.push_back(few_regs);

    LaConfig tight_ii = LaConfig::proposed();
    tight_ii.max_ii = 4;
    configs.push_back(tight_ii);
    return configs;
}

/** The serial reference the parallel engine must match bit-for-bit. */
double
serialMeanSpeedup(const std::vector<Benchmark>& suite, const LaConfig& la,
                  TranslationMode mode)
{
    double sum = 0.0;
    for (const auto& benchmark : suite) {
        VmOptions options;
        options.mode = mode;
        const VirtualMachine vm(la, CpuConfig::arm11(), options);
        sum += vm.run(benchmark.transformed).speedup;
    }
    return sum / static_cast<double>(suite.size());
}

TEST(SweepRunnerTest, SerialAndEightThreadResultsAreBitIdentical)
{
    const auto configs = smallGrid();
    const SweepRunner serial(smallSuite(), 1);
    const SweepRunner parallel(smallSuite(), 8);

    const auto serial_means =
        serial.meanSpeedup(configs, TranslationMode::kFullyDynamic);
    const auto parallel_means =
        parallel.meanSpeedup(configs, TranslationMode::kFullyDynamic);
    ASSERT_EQ(serial_means.size(), parallel_means.size());
    for (std::size_t i = 0; i < serial_means.size(); ++i)
        EXPECT_EQ(serial_means[i], parallel_means[i]) << "config " << i;

    const auto serial_fractions = serial.fractionOfInfinite(configs);
    const auto parallel_fractions = parallel.fractionOfInfinite(configs);
    ASSERT_EQ(serial_fractions.size(), parallel_fractions.size());
    for (std::size_t i = 0; i < serial_fractions.size(); ++i) {
        EXPECT_EQ(serial_fractions[i], parallel_fractions[i])
            << "config " << i;
    }
}

TEST(SweepRunnerTest, RepeatedParallelSweepsAreStable)
{
    const auto configs = smallGrid();
    const SweepRunner runner(smallSuite(), 8);
    const auto first =
        runner.meanSpeedup(configs, TranslationMode::kStatic);
    for (int round = 0; round < 3; ++round) {
        const auto again =
            runner.meanSpeedup(configs, TranslationMode::kStatic);
        EXPECT_EQ(first, again) << "round " << round;
    }
}

TEST(SweepRunnerTest, MeanSpeedupMatchesSerialReference)
{
    const auto suite = smallSuite();
    const auto configs = smallGrid();
    const SweepRunner runner(suite, 4);
    const auto means =
        runner.meanSpeedup(configs, TranslationMode::kFullyDynamic);
    ASSERT_EQ(means.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        EXPECT_EQ(means[i],
                  serialMeanSpeedup(suite, configs[i],
                                    TranslationMode::kFullyDynamic))
            << "config " << i;
    }
}

TEST(SweepRunnerTest, FractionOfInfiniteIsBoundedAndInfiniteIsUnity)
{
    const SweepRunner runner(smallSuite(), 4);
    const auto fractions = runner.fractionOfInfinite(
        {LaConfig::proposed(), LaConfig::infiniteWithCca()});
    ASSERT_EQ(fractions.size(), 2u);
    EXPECT_GT(fractions[0], 0.0);
    EXPECT_LE(fractions[0], 1.0 + 1e-9);
    EXPECT_DOUBLE_EQ(fractions[1], 1.0);
}

TEST(SweepRunnerTest, SweepMeanReducesInBenchmarkOrder)
{
    // A cell function with bench-dependent magnitudes makes any
    // permutation of the summation order visible in the low bits.
    const auto suite = smallSuite();
    const SweepRunner runner(suite, 8);
    const auto cell = [](const Benchmark& benchmark, const LaConfig&) {
        double value = 0.1;
        for (const char c : benchmark.name)
            value = value * 1.7 + static_cast<double>(c) * 1e-3;
        return value;
    };
    double expected = 0.0;
    for (const auto& benchmark : suite)
        expected += cell(benchmark, LaConfig::proposed());
    expected /= static_cast<double>(suite.size());

    const auto means =
        runner.sweepMean({LaConfig::proposed()}, cell);
    ASSERT_EQ(means.size(), 1u);
    EXPECT_EQ(means[0], expected);
}

TEST(SweepRunnerTest, StatsCountCellsAndAccumulate)
{
    const SweepRunner runner(smallSuite(), 2);
    const auto configs = smallGrid();
    runner.meanSpeedup(configs, TranslationMode::kStatic);
    EXPECT_EQ(runner.lastStats().cells,
              static_cast<std::int64_t>(configs.size() * 3));
    EXPECT_EQ(runner.lastStats().threads, 2);

    runner.fractionOfInfinite({LaConfig::proposed()});
    EXPECT_EQ(runner.lastStats().cells, 2 * 3);
    EXPECT_EQ(runner.stats().cells,
              static_cast<std::int64_t>(configs.size() * 3) + 2 * 3);
    EXPECT_GE(runner.stats().wall_seconds, 0.0);
    EXPECT_GE(runner.stats().cell_seconds, 0.0);
}

TEST(SweepRunnerTest, CellSpeedupMatchesVirtualMachine)
{
    const auto suite = smallSuite();
    VmOptions options;
    options.mode = TranslationMode::kStatic;
    const VirtualMachine vm(LaConfig::proposed(), CpuConfig::arm11(),
                            options);
    EXPECT_EQ(cellSpeedup(suite[0], LaConfig::proposed(),
                          TranslationMode::kStatic),
              vm.run(suite[0].transformed).speedup);
}

}  // namespace
}  // namespace veal::explore
