#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "veal/support/metrics/metrics.h"
#include "veal/vm/vm.h"
#include "veal/workloads/kernels.h"
#include "veal/workloads/suite.h"

namespace veal {
namespace {

std::int64_t
phaseCycleSum(const metrics::Registry& registry)
{
    std::int64_t sum = 0;
    for (int i = 0; i < kNumTranslationPhases; ++i) {
        sum += registry.counter(
            std::string("vm.phase_cycles.") +
            toString(static_cast<TranslationPhase>(i)));
    }
    return sum + registry.counter("vm.phase_cycles.override");
}

Application
makeTwoLoopApp()
{
    Application app;
    app.name = "telemetry";
    app.sites.push_back(LoopSite{.loop = makeSadLoop("sad"),
                                 .fissioned = {},
                                 .invocations = 50,
                                 .iterations = 256});
    app.sites.push_back(LoopSite{.loop = makeQuantLoop("quant"),
                                 .fissioned = {},
                                 .invocations = 40,
                                 .iterations = 512});
    app.acyclic_cycles = 50000;
    return app;
}

TEST(VmTelemetryTest, PlainAndMeteredRunsAgree)
{
    const auto app = makeTwoLoopApp();
    VmOptions options;
    options.mode = TranslationMode::kFullyDynamic;
    const VirtualMachine vm(LaConfig::proposed(), CpuConfig::arm11(),
                            options);
    metrics::Registry registry;
    const auto plain = vm.run(app);
    const auto metered = vm.run(app, &registry);
    EXPECT_EQ(plain.accelerated_cycles, metered.accelerated_cycles);
    EXPECT_EQ(plain.translation_cycles, metered.translation_cycles);
    EXPECT_EQ(plain.cache_hits, metered.cache_hits);
    EXPECT_EQ(plain.cache_misses, metered.cache_misses);
}

TEST(VmTelemetryTest, PhaseCyclesSumExactlyToTranslationCycles)
{
    // The acceptance contract: for every benchmark in the suite and
    // every translation mode, the registry's per-phase attribution sums
    // *exactly* (int64 equality, no tolerance) to the cost model's
    // reported translation_cycles.
    const auto suite = mediaFpSuite();
    for (const auto mode : {TranslationMode::kStatic,
                            TranslationMode::kFullyDynamic,
                            TranslationMode::kFullyDynamicHeight,
                            TranslationMode::kHybridStaticCcaPriority}) {
        VmOptions options;
        options.mode = mode;
        const VirtualMachine vm(LaConfig::proposed(), CpuConfig::arm11(),
                                options);
        for (const auto& benchmark : suite) {
            metrics::Registry registry;
            const auto result =
                vm.run(benchmark.transformed, &registry);
            EXPECT_EQ(phaseCycleSum(registry), result.translation_cycles)
                << benchmark.name << " in mode " << toString(mode);
        }
    }
}

TEST(VmTelemetryTest, PenaltyOverrideChargesTheOverrideBucket)
{
    const auto app = makeTwoLoopApp();
    VmOptions options;
    options.mode = TranslationMode::kFullyDynamic;
    options.penalty_override = 12345.0;
    const VirtualMachine vm(LaConfig::proposed(), CpuConfig::arm11(),
                            options);
    metrics::Registry registry;
    const auto result = vm.run(app, &registry);
    EXPECT_EQ(registry.counter("vm.phase_cycles.override"),
              result.translation_cycles);
    EXPECT_EQ(registry.counter("vm.phase_cycles.priority"), 0);
}

TEST(VmTelemetryTest, CountersMatchRunResult)
{
    const auto app = makeTwoLoopApp();
    VmOptions options;
    options.mode = TranslationMode::kFullyDynamic;
    const VirtualMachine vm(LaConfig::proposed(), CpuConfig::arm11(),
                            options);
    metrics::Registry registry;
    const auto result = vm.run(app, &registry);
    EXPECT_EQ(registry.counter("vm.cache.hits"), result.cache_hits);
    EXPECT_EQ(registry.counter("vm.cache.misses"), result.cache_misses);
    EXPECT_EQ(registry.counter("vm.pieces"), 2);
    EXPECT_EQ(registry.counter("vm.translate.ok"), 2);
    EXPECT_EQ(registry.counter("vm.path.la"), 2);
    // Every accelerated piece lands one II observation.
    const auto* ii = registry.histogram("vm.ii");
    ASSERT_NE(ii, nullptr);
    EXPECT_EQ(ii->total, registry.counter("vm.path.la"));
    // Scheduling effort was observed (at least one II per ok piece).
    EXPECT_GE(registry.counter("vm.sched.attempted_iis"), 2);
    // The decision trace covers cache verdict + per-piece events.
    EXPECT_GE(registry.traceEvents().size(), 3u);
}

TEST(VmTelemetryTest, RejectedLoopIsCountedAndTraced)
{
    Application app;
    app.name = "calls";
    app.sites.push_back(LoopSite{.loop = makeMathCallLoop("libm"),
                                 .fissioned = {},
                                 .invocations = 10,
                                 .iterations = 128});
    app.acyclic_cycles = 1000;
    VmOptions options;
    options.mode = TranslationMode::kFullyDynamic;
    const VirtualMachine vm(LaConfig::proposed(), CpuConfig::arm11(),
                            options);
    metrics::Registry registry;
    const auto result = vm.run(app, &registry);
    EXPECT_EQ(registry.counter("vm.translate.reject.analysis"), 1);
    EXPECT_EQ(registry.counter("vm.translate.ok"), 0);
    // Even the failed analysis work is attributed exactly.
    EXPECT_EQ(phaseCycleSum(registry), result.translation_cycles);
    bool traced = false;
    for (const auto& event : registry.traceEvents()) {
        if (event.event == "translate" && event.detail == "analysis")
            traced = true;
    }
    EXPECT_TRUE(traced);
}

TEST(VmTelemetryTest, MeteredRunsAccumulateIntoOneRegistry)
{
    const auto app = makeTwoLoopApp();
    VmOptions options;
    options.mode = TranslationMode::kFullyDynamic;
    const VirtualMachine vm(LaConfig::proposed(), CpuConfig::arm11(),
                            options);
    metrics::Registry registry;
    const auto once = vm.run(app, &registry);
    const auto twice = vm.run(app, &registry);
    EXPECT_EQ(phaseCycleSum(registry),
              once.translation_cycles + twice.translation_cycles);
    EXPECT_EQ(registry.counter("vm.apps"), 2);
}

}  // namespace
}  // namespace veal
