#include "veal/sim/tlb_model.h"

#include <gtest/gtest.h>

#include "veal/arch/la_config.h"
#include "veal/ir/loop_analysis.h"
#include "veal/ir/loop_builder.h"
#include "veal/vm/translator.h"

namespace veal {
namespace {

TlbConfig
enabledConfig()
{
    TlbConfig config = TlbConfig::proposed();
    EXPECT_TRUE(config.enabled);
    return config;
}

TEST(StreamPageSpan, ZeroStridePinsOnePage)
{
    const TlbConfig config = enabledConfig();
    EXPECT_EQ(streamPageSpan(0, 1, config), 1);
    EXPECT_EQ(streamPageSpan(0, 100000, config), 1);
}

TEST(StreamPageSpan, UnitStrideSweepsContiguously)
{
    // 8-byte elements, 4096-byte pages: 512 elements per page.
    const TlbConfig config = enabledConfig();
    EXPECT_EQ(streamPageSpan(1, 1, config), 1);
    EXPECT_EQ(streamPageSpan(1, 512, config), 1);
    EXPECT_EQ(streamPageSpan(1, 513, config), 2);
    EXPECT_EQ(streamPageSpan(1, 1024, config), 2);
    EXPECT_EQ(streamPageSpan(1, 1025, config), 3);
}

TEST(StreamPageSpan, NegativeStrideMatchesItsMirror)
{
    const TlbConfig config = enabledConfig();
    for (const std::int64_t iterations : {1, 7, 512, 5000}) {
        EXPECT_EQ(streamPageSpan(-3, iterations, config),
                  streamPageSpan(3, iterations, config));
    }
}

TEST(StreamPageSpan, SparseStrideCapsAtOnePagePerIteration)
{
    // Stride 1024 elements = 8192 bytes = 2 pages/iteration of span,
    // but each iteration touches only one element, so the distinct-page
    // set is bounded by the iteration count.
    const TlbConfig config = enabledConfig();
    EXPECT_EQ(streamPageSpan(1024, 16, config), 16);
    EXPECT_EQ(streamPageSpan(1 << 20, 7, config), 7);
}

TEST(StreamTlbCharge, DisabledConfigChargesNothing)
{
    const TlbConfig off = TlbConfig::off();
    const TlbCharge charge =
        streamTlbCharge({1, 2, 3}, {4}, off, 100000, true);
    EXPECT_EQ(charge.pages, 0);
    EXPECT_EQ(charge.walks, 0);
    EXPECT_EQ(charge.cycles, 0);
}

TEST(StreamTlbCharge, FirstInvocationWalksTheWholeWorkingSet)
{
    TlbConfig config = enabledConfig();
    config.entries = 4;
    config.walk_cycles = 10;
    // Two unit-stride streams over 1024 iterations: 2 pages each.
    const TlbCharge first =
        streamTlbCharge({1}, {1}, config, 1024, /*first_invocation=*/true);
    EXPECT_EQ(first.pages, 4);
    EXPECT_EQ(first.walks, 4);
    EXPECT_EQ(first.cycles, 40);
}

TEST(StreamTlbCharge, WarmInvocationWalksOnlyTheExcessOverCapacity)
{
    TlbConfig config = enabledConfig();
    config.entries = 3;
    config.walk_cycles = 10;
    const TlbCharge warm =
        streamTlbCharge({1}, {1}, config, 1024, /*first_invocation=*/false);
    EXPECT_EQ(warm.pages, 4);
    EXPECT_EQ(warm.walks, 1) << "3 of 4 pages stayed resident";
    EXPECT_EQ(warm.cycles, 10);

    config.entries = 64;
    const TlbCharge resident =
        streamTlbCharge({1}, {1}, config, 1024, /*first_invocation=*/false);
    EXPECT_EQ(resident.walks, 0) << "a fitting working set re-walks nothing";
    EXPECT_EQ(resident.cycles, 0);
}

TEST(StreamTlbCharge, AnalysisOverloadMatchesExplicitStrides)
{
    // The equivalence the persistence layer depends on: pricing from a
    // live LoopAnalysis and from the persisted stride lists must agree
    // bit for bit, or warm-started reports would drift.
    LoopBuilder b("tlb-streams");
    const OpId iv = b.induction(1);
    const OpId wide = b.induction(4);  // Second stream, 4x the stride.
    const OpId a = b.load("A", iv);
    const OpId c = b.load("B", wide);
    const OpId k = b.liveIn("k");
    const OpId y = b.mul(a, k);
    const OpId z = b.add(y, c);
    b.markLiveOut(z);
    b.store("out", iv, z);
    b.loopBack(iv, b.constant(4096));
    const Loop loop = b.build();
    const TranslationResult tr =
        translateLoop(loop, LaConfig::proposed(),
                      TranslationMode::kFullyDynamic);
    ASSERT_TRUE(tr.ok);

    std::vector<std::int64_t> load_strides;
    for (const auto& stream : tr.analysis.load_streams)
        load_strides.push_back(stream.stride);
    std::vector<std::int64_t> store_strides;
    for (const auto& stream : tr.analysis.store_streams)
        store_strides.push_back(stream.stride);
    ASSERT_FALSE(load_strides.empty());
    ASSERT_FALSE(store_strides.empty());

    const TlbConfig config = enabledConfig();
    for (const std::int64_t iterations : {1, 12, 512, 4096}) {
        for (const bool first : {true, false}) {
            const TlbCharge from_analysis =
                streamTlbCharge(tr.analysis, config, iterations, first);
            const TlbCharge from_strides = streamTlbCharge(
                load_strides, store_strides, config, iterations, first);
            EXPECT_EQ(from_analysis.pages, from_strides.pages);
            EXPECT_EQ(from_analysis.walks, from_strides.walks);
            EXPECT_EQ(from_analysis.cycles, from_strides.cycles);
        }
    }
}

TEST(StreamTlbCharge, WarmNeverChargesMoreThanFirst)
{
    TlbConfig config = enabledConfig();
    config.entries = 2;
    for (const std::int64_t iterations : {1, 100, 2048}) {
        const TlbCharge first =
            streamTlbCharge({1, 3}, {2}, config, iterations, true);
        const TlbCharge warm =
            streamTlbCharge({1, 3}, {2}, config, iterations, false);
        EXPECT_EQ(first.pages, warm.pages) << "working set is invariant";
        EXPECT_LE(warm.walks, first.walks);
        EXPECT_LE(warm.cycles, first.cycles);
    }
}

}  // namespace
}  // namespace veal
