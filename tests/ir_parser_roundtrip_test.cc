/**
 * Round-trip fidelity of the loop DSL: parseLoop(printLoop(L)) must
 * reproduce an isomorphic loop for every loop the generator can emit.
 * The differential fuzzer persists shrunk repros through printLoop, so a
 * field the printer drops is a repro that cannot reproduce.
 */

#include <gtest/gtest.h>

#include <string>

#include "veal/ir/loop_builder.h"
#include "veal/ir/loop_parser.h"
#include "veal/ir/random_loop.h"
#include "veal/sim/interpreter.h"
#include "veal/support/rng.h"

namespace veal {
namespace {

/** Parse @p text or fail the test with the parser's diagnostic. */
Loop
parseOrFail(const std::string& text)
{
    ParseResult result = parseLoop(text);
    if (auto* error = std::get_if<ParseError>(&result)) {
        ADD_FAILURE() << "parse error at line " << error->line << ": "
                      << error->message << "\n"
                      << text;
        return Loop("parse-failed");
    }
    return std::move(std::get<Loop>(result));
}

/**
 * Builder and parser both expand `induction` as (step const, add) and
 * `loopback` as (cmp, branch), so a printed builder loop re-parses with
 * identical ids: isomorphism is checkable op-for-op.
 */
void
expectIsomorphic(const Loop& expected, const Loop& actual)
{
    ASSERT_EQ(expected.size(), actual.size());
    for (OpId id = 0; id < expected.size(); ++id) {
        const Operation& a = expected.op(id);
        const Operation& b = actual.op(id);
        EXPECT_EQ(a.opcode, b.opcode) << "op " << id;
        EXPECT_EQ(a.inputs, b.inputs) << "op " << id;
        EXPECT_EQ(a.is_induction, b.is_induction) << "op " << id;
        EXPECT_EQ(a.is_live_out, b.is_live_out) << "op " << id;
        EXPECT_EQ(a.symbol, b.symbol) << "op " << id;
        if (a.opcode == Opcode::kConst) {
            EXPECT_EQ(a.immediate, b.immediate) << "op " << id;
        }
    }
    ASSERT_EQ(expected.memoryEdges().size(), actual.memoryEdges().size());
    for (std::size_t e = 0; e < expected.memoryEdges().size(); ++e)
        EXPECT_EQ(expected.memoryEdges()[e], actual.memoryEdges()[e]);
    EXPECT_EQ(expected.tripCount(), actual.tripCount());
    EXPECT_EQ(expected.feature(), actual.feature());
}

/** Round-trip @p loop and check isomorphism plus print idempotence. */
void
expectRoundTrips(const Loop& loop)
{
    const std::string text = printLoop(loop);
    const Loop reparsed = parseOrFail(text);
    if (reparsed.name() == "parse-failed")
        return;
    expectIsomorphic(loop, reparsed);
    EXPECT_EQ(printLoop(reparsed), text) << "print not idempotent";
}

TEST(ParserRoundTripProperty, FiveHundredRandomSeeds)
{
    for (std::uint64_t seed = 0; seed < 500; ++seed) {
        // Vary the generator's shape knobs with the seed so the corpus
        // of shapes is wider than the default parameters.
        RandomLoopParams params;
        params.fp_fraction = 0.1 + 0.2 * static_cast<double>(seed % 4);
        params.recurrence_prob = 0.15 * static_cast<double>(seed % 5);
        params.max_carried_distance = 1 + static_cast<int>(seed % 3);
        params.max_compute_ops = 8 + static_cast<int>(seed % 40);
        const Loop loop = makeRandomLoop(params, seed);
        expectRoundTrips(loop);
        if (HasFailure()) {
            FAIL() << "round-trip broke at seed " << seed;
        }
    }
}

TEST(ParserRoundTripProperty, ReparsedLoopsComputeTheSameResults)
{
    // Ids survive the round trip, so the same ExecutionInput applies to
    // both loops and the interpreter must agree everywhere.
    for (std::uint64_t seed = 0; seed < 100; ++seed) {
        const Loop loop = makeRandomLoop(RandomLoopParams{}, seed);
        const Loop reparsed = parseOrFail(printLoop(loop));
        ASSERT_EQ(loop.size(), reparsed.size());

        Rng rng(seed);
        ExecutionInput input;
        input.iterations = 6;
        for (const auto& op : loop.operations()) {
            if (op.opcode == Opcode::kLiveIn)
                input.live_ins[op.id] = rng.nextInRange(-32, 32);
            if (!op.inputs.empty())
                input.initial[op.id] = rng.nextInRange(-8, 8);
            if (op.opcode == Opcode::kLoad) {
                for (std::int64_t index = -32; index < 128; ++index) {
                    input.memory[op.symbol][index] =
                        rng.nextInRange(-50, 50);
                }
            }
        }
        const ExecutionResult a = interpretLoop(loop, input);
        const ExecutionResult b = interpretLoop(reparsed, input);
        EXPECT_EQ(a.live_outs, b.live_outs) << "seed " << seed;
        EXPECT_EQ(a.memory, b.memory) << "seed " << seed;
    }
}

// ----- Regressions for fields the printer used to drop.

TEST(ParserRoundTripRegression, StoreReferencedByMemoryEdge)
{
    // A store endpoint of a memedge must print in the named form
    // (`vN = store ...`) so the memedge line can reference it.
    LoopBuilder b("mem_recurrence");
    const OpId iv = b.induction(1);
    const OpId prev = b.load("out", b.sub(iv, b.constant(1)));
    const OpId next = b.add(prev, b.load("in", iv));
    const OpId st = b.store("out", iv, next);
    b.memoryEdge(st, prev, 1);
    b.loopBack(iv, b.constant(32));
    const Loop loop = b.build();

    const std::string text = printLoop(loop);
    EXPECT_NE(text.find("= store "), std::string::npos) << text;
    EXPECT_NE(text.find("memedge "), std::string::npos) << text;
    expectRoundTrips(loop);
}

TEST(ParserRoundTripRegression, CmpFeedingBranchWithExtraConsumer)
{
    // The back-branch comparison also feeds a select: it must keep its
    // name (printed as `branch <pred>`), not fold into `loopback`.
    LoopBuilder b("shared_cmp");
    const OpId iv = b.induction(1);
    const OpId x = b.load("in", iv);
    const OpId bound = b.constant(32);
    const OpId pred = b.cmp(iv, bound);
    const OpId pick = b.select(pred, x, b.constant(-1));
    b.store("out", iv, pick);
    Operation branch;
    branch.opcode = Opcode::kBranch;
    branch.inputs = {Operand{pred, 0}};
    b.loop().addOperation(std::move(branch));
    const Loop loop = b.build();

    const std::string text = printLoop(loop);
    EXPECT_NE(text.find("branch "), std::string::npos) << text;
    expectRoundTrips(loop);
}

TEST(ParserRoundTripRegression, LiveOutBackBranchComparison)
{
    // A live-out comparison must stay named even when the branch is its
    // only consumer; `loopback` would drop the liveout.
    LoopBuilder b("liveout_cmp");
    const OpId iv = b.induction(1);
    b.store("out", iv, b.load("in", iv));
    b.loopBack(iv, b.constant(16));
    Loop loop = b.build();
    for (const auto& op : loop.operations()) {
        if (op.opcode == Opcode::kCmp)
            loop.mutableOp(op.id).is_live_out = true;
    }

    const std::string text = printLoop(loop);
    EXPECT_NE(text.find("liveout"), std::string::npos) << text;
    expectRoundTrips(loop);
}

TEST(ParserRoundTripRegression, LiveOutInductionStepConstant)
{
    // The step constant normally folds into the induction line; marked
    // live-out it needs a name of its own.
    LoopBuilder b("liveout_step");
    const OpId iv = b.induction(3);
    b.store("out", iv, b.load("in", iv));
    b.loopBack(iv, b.constant(8));
    Loop loop = b.build();
    // induction() lays out the step constant immediately before the add.
    const OpId step_const = loop.op(iv).inputs[1].producer;
    ASSERT_EQ(loop.op(step_const).opcode, Opcode::kConst);
    loop.mutableOp(step_const).is_live_out = true;

    expectRoundTrips(loop);
}

TEST(ParserRoundTripRegression, StepConstantSharedWithCompute)
{
    // A step constant consumed elsewhere keeps its name and the
    // induction line references it (`induction v0`), so the round trip
    // is still an identity.
    LoopBuilder b("shared_step");
    const OpId iv = b.induction(2);
    const OpId step = b.loop().op(iv).inputs[1].producer;
    const OpId x = b.load("in", iv);
    b.store("out", iv, b.add(x, Operand{step, 0}));
    b.loopBack(iv, b.constant(8));
    const Loop loop = b.build();

    const std::string text = printLoop(loop);
    EXPECT_NE(text.find("induction v"), std::string::npos) << text;
    expectRoundTrips(loop);
}

TEST(ParserRoundTripRegression, SpeculativeAndTripSurvive)
{
    LoopBuilder b("spec");
    const OpId iv = b.induction(1);
    b.store("out", iv, b.constant(7));
    b.loopBack(iv, b.constant(999));
    Loop loop = b.build();
    loop.setTripCount(999);
    loop.setFeature(LoopFeature::kNeedsSpeculation);
    expectRoundTrips(loop);
}

}  // namespace
}  // namespace veal
