#include "veal/sched/mrt.h"

#include <gtest/gtest.h>

namespace veal {
namespace {

TEST(MrtTest, ReservesDistinctInstances)
{
    LaConfig la = LaConfig::proposed();  // 2 integer units.
    ModuloReservationTable mrt(la, 4);
    EXPECT_EQ(mrt.reserve(FuClass::kInt, 0, 1), 0);
    EXPECT_EQ(mrt.reserve(FuClass::kInt, 0, 1), 1);
    EXPECT_EQ(mrt.reserve(FuClass::kInt, 0, 1), -1);  // Slot 0 full.
    EXPECT_EQ(mrt.reserve(FuClass::kInt, 1, 1), 0);   // Other slot free.
}

TEST(MrtTest, ModuloWrapsTimes)
{
    LaConfig la = LaConfig::proposed();
    ModuloReservationTable mrt(la, 4);
    EXPECT_EQ(mrt.reserve(FuClass::kInt, 2, 1), 0);
    // Time 6 maps to the same slot (6 mod 4 == 2): second instance.
    EXPECT_EQ(mrt.reserve(FuClass::kInt, 6, 1), 1);
    // Negative times wrap correctly: -2 mod 4 == 2.
    EXPECT_EQ(mrt.reserve(FuClass::kInt, -2, 1), -1);
}

TEST(MrtTest, NonPipelinedUnitTakesConsecutiveSlots)
{
    LaConfig la = LaConfig::proposed();  // 1 CCA.
    ModuloReservationTable mrt(la, 4);
    EXPECT_EQ(mrt.reserve(FuClass::kCca, 1, 2), 0);  // Slots 1 and 2.
    EXPECT_EQ(mrt.reserve(FuClass::kCca, 2, 1), -1);
    EXPECT_EQ(mrt.reserve(FuClass::kCca, 3, 2), 0);  // Slots 3 and 0.
    EXPECT_EQ(mrt.reserve(FuClass::kCca, 0, 1), -1);
}

TEST(MrtTest, InitIntervalLargerThanIiFails)
{
    LaConfig la = LaConfig::proposed();
    ModuloReservationTable mrt(la, 1);
    EXPECT_EQ(mrt.reserve(FuClass::kCca, 0, 2), -1);
}

TEST(MrtTest, ClearReleasesEverything)
{
    LaConfig la = LaConfig::proposed();
    ModuloReservationTable mrt(la, 2);
    EXPECT_EQ(mrt.reserve(FuClass::kInt, 0, 1), 0);
    EXPECT_EQ(mrt.reserve(FuClass::kInt, 0, 1), 1);
    mrt.clear();
    EXPECT_EQ(mrt.reserve(FuClass::kInt, 0, 1), 0);
}

TEST(MrtTest, OccupiedReflectsReservations)
{
    LaConfig la = LaConfig::proposed();
    ModuloReservationTable mrt(la, 3);
    mrt.reserve(FuClass::kFp, 1, 1);
    EXPECT_TRUE(mrt.occupied(FuClass::kFp, 0, 1));
    EXPECT_FALSE(mrt.occupied(FuClass::kFp, 0, 0));
    EXPECT_FALSE(mrt.occupied(FuClass::kFp, 1, 1));
}

TEST(MrtTest, ProbesAreCounted)
{
    LaConfig la = LaConfig::proposed();
    ModuloReservationTable mrt(la, 2);
    std::uint64_t probes = 0;
    mrt.reserve(FuClass::kInt, 0, 1, &probes);
    EXPECT_GT(probes, 0u);
}

TEST(MrtTest, UnlimitedConfigGetsPracticalWidth)
{
    LaConfig la = LaConfig::infinite();
    ModuloReservationTable mrt(la, 4);
    // Still bounded, but plenty of instances to never conflict in practice.
    EXPECT_GT(mrt.instanceCount(FuClass::kInt), 8);
    for (int i = 0; i < 16; ++i)
        EXPECT_GE(mrt.reserve(FuClass::kInt, 0, 1), 0);
}

}  // namespace
}  // namespace veal
