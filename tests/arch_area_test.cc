#include "veal/arch/area.h"

#include <gtest/gtest.h>

namespace veal {
namespace {

TEST(AreaTest, ProposedDesignIsAbout3Point8mm2)
{
    // Paper §3.2: the proposed LA consumes ~3.8 mm^2 in 90 nm.
    AreaModel model;
    EXPECT_NEAR(model.totalArea(LaConfig::proposed()), 3.8, 0.05);
}

TEST(AreaTest, FpUnitsDominate)
{
    // Paper §3.2: 2.38 of the 3.8 mm^2 is the two double-precision FPUs.
    AreaModel model;
    const auto items = model.breakdown(LaConfig::proposed());
    double fp_area = 0.0;
    for (const auto& item : items) {
        if (item.component == "fp units")
            fp_area = item.mm2;
    }
    EXPECT_NEAR(fp_area, 2.38, 0.01);
}

TEST(AreaTest, BreakdownSumsToTotal)
{
    AreaModel model;
    const LaConfig la = LaConfig::proposed();
    double sum = 0.0;
    for (const auto& item : model.breakdown(la))
        sum += item.mm2;
    EXPECT_DOUBLE_EQ(sum, model.totalArea(la));
}

TEST(AreaTest, AreaGrowsMonotonicallyWithResources)
{
    AreaModel model;
    LaConfig la = LaConfig::proposed();
    const double base = model.totalArea(la);

    LaConfig more_int = la;
    more_int.num_int_units += 2;
    EXPECT_GT(model.totalArea(more_int), base);

    LaConfig more_regs = la;
    more_regs.num_int_registers += 16;
    EXPECT_GT(model.totalArea(more_regs), base);

    LaConfig more_streams = la;
    more_streams.num_load_streams += 8;
    EXPECT_GT(model.totalArea(more_streams), base);

    LaConfig deeper_control = la;
    deeper_control.max_ii *= 2;
    EXPECT_GT(model.totalArea(deeper_control), base);
}

TEST(AreaTest, NoCcaRemovesItsArea)
{
    AreaModel model;
    LaConfig la = LaConfig::proposed();
    LaConfig no_cca = la;
    no_cca.num_cca_units = 0;
    no_cca.cca.reset();
    EXPECT_LT(model.totalArea(no_cca), model.totalArea(la));
}

TEST(AreaTest, LaIsCheaperThanSecondCore)
{
    // Paper §3.2: "the loop accelerator could be added ... for less than
    // the cost of a second simple core".
    AreaModel model;
    EXPECT_LT(model.totalArea(LaConfig::proposed()), AreaModel::kArm11Mm2);
    // ARM11 + LA < Cortex A8 alone:
    EXPECT_LT(AreaModel::kArm11Mm2 + model.totalArea(LaConfig::proposed()),
              AreaModel::kCortexA8Mm2);
}

}  // namespace
}  // namespace veal
