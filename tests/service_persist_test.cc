/**
 * The cross-run persistence contract of the translation service: a
 * `cache_dir` run populates the on-disk store, a fresh service over the
 * same directory warm-starts with zero translation cycles, warm reports
 * are byte-identical across restarts and the whole shards/threads/batch
 * matrix, corruption degrades through the quarantine ladder (committing
 * the drop so nothing resurrects), eviction extends to disk, and a
 * second service on a locked directory serves from a read-only tier.
 */

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "veal/service/service.h"
#include "veal/service/trace.h"
#include "veal/support/metrics/metrics.h"
#include "veal/vm/persist/store.h"

namespace veal {
namespace {

namespace fs = std::filesystem;

class ServicePersistTest : public ::testing::Test {
  protected:
    void
    SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("veal-service-persist-" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()));
        fs::remove_all(dir_);
    }

    void
    TearDown() override
    {
        fs::remove_all(dir_);
    }

    std::string
    cacheDir() const
    {
        return dir_.string();
    }

    fs::path dir_;
};

ServiceTrace
makeTrace(std::uint64_t seed = 11, int requests = 192)
{
    TraceGenOptions gen;
    gen.seed = seed;
    gen.requests = requests;
    gen.tenants = 3;
    gen.loop_pool = 8;
    gen.tick_size = 16;
    gen.iterations = 12;
    return generateTrace(gen);
}

ServiceOptions
makeOptions(const std::string& cache_dir, int shards = 2, int threads = 1,
            int batch = 16)
{
    ServiceOptions options;
    options.shards = shards;
    options.threads = threads;
    options.batch = batch;
    options.cache_dir = cache_dir;
    return options;
}

struct RunResult {
    ServiceReport report;
    std::string render;
    std::string metrics;
};

RunResult
runService(const ServiceTrace& trace, const ServiceOptions& options)
{
    metrics::Registry registry;
    TranslationService service(options, &registry);
    service.run(trace);
    service.flushPersistentStore();
    return {service.report(), service.report().render(),
            registry.toJson()};
}

TEST_F(ServicePersistTest, ColdRunPopulatesTheStore)
{
    const ServiceTrace trace = makeTrace();
    const RunResult cold = runService(trace, makeOptions(cacheDir()));
    EXPECT_EQ(cold.report.persisted, 0)
        << "nothing can be served from an empty store";
    EXPECT_GT(cold.report.translation_cycles, 0);
    // The run left a durable log-structured store behind: a manifest
    // log plus at least one segment file.
    EXPECT_TRUE(fs::exists(fs::path(cacheDir()) / "MANIFEST.log"));
    EXPECT_TRUE(fs::exists(fs::path(cacheDir()) / "seg-0.vlog"));
    // One save per fresh job: coalesced twins ride their provider.
    persist::PersistentStore store(cacheDir(), persist::StoreOptions{});
    EXPECT_EQ(store.size(), cold.report.cold);
}

TEST_F(ServicePersistTest, WarmStartIsTranslationFreeAndStable)
{
    const ServiceTrace trace = makeTrace();
    const RunResult cold = runService(trace, makeOptions(cacheDir()));

    const RunResult warm1 = runService(trace, makeOptions(cacheDir()));
    const RunResult warm2 = runService(trace, makeOptions(cacheDir()));

    // Warm runs serve every first-sight key from the store.
    EXPECT_EQ(warm1.report.translation_cycles, 0);
    EXPECT_EQ(warm1.report.cold, 0);
    EXPECT_EQ(warm1.report.coalesced, 0);
    EXPECT_EQ(warm1.report.persisted,
              cold.report.cold + cold.report.coalesced);
    // Execution-side pricing is unchanged by where the image came from.
    EXPECT_EQ(warm1.report.cpu_cycles, cold.report.cpu_cycles);
    EXPECT_EQ(warm1.report.la_warm_cycles, cold.report.la_warm_cycles);
    // Restarts are byte-identical, reports and metrics both.
    EXPECT_EQ(warm1.render, warm2.render);
    EXPECT_EQ(warm1.metrics, warm2.metrics);
}

TEST_F(ServicePersistTest, WarmReportIsIdenticalAcrossTheShapeMatrix)
{
    const ServiceTrace trace = makeTrace();
    runService(trace, makeOptions(cacheDir()));

    const RunResult baseline =
        runService(trace, makeOptions(cacheDir(), 1, 1, 1));
    for (const int shards : {2, 8}) {
        for (const int threads : {1, 4}) {
            for (const int batch : {1, 5, 64}) {
                const RunResult probe = runService(
                    trace,
                    makeOptions(cacheDir(), shards, threads, batch));
                EXPECT_EQ(probe.render, baseline.render)
                    << "shards=" << shards << " threads=" << threads
                    << " batch=" << batch;
                EXPECT_EQ(probe.metrics, baseline.metrics)
                    << "shards=" << shards << " threads=" << threads
                    << " batch=" << batch;
            }
        }
    }
}

TEST_F(ServicePersistTest, PersistedOutcomeFeedsTenantAccounting)
{
    const ServiceTrace trace = makeTrace();
    runService(trace, makeOptions(cacheDir()));
    const RunResult warm = runService(trace, makeOptions(cacheDir()));

    std::int64_t tenant_persisted = 0;
    for (const auto& [tenant, stats] : warm.report.tenants)
        tenant_persisted += stats.persisted;
    EXPECT_EQ(tenant_persisted, warm.report.persisted)
        << "per-tenant persisted counts must sum to the report total";
    EXPECT_GT(warm.report.warm, 0)
        << "store loads must rehydrate the warm tier for later ticks";
}

TEST_F(ServicePersistTest, CorruptBlobDegradesAndNeverResurrects)
{
    const ServiceTrace trace = makeTrace();
    runService(trace, makeOptions(cacheDir()));

    // Corrupt one record's payload in its segment file (a real bit
    // flip, not an injected probe).
    {
        persist::PersistentStore store(cacheDir(),
                                       persist::StoreOptions{});
        const auto keys = store.keys();
        ASSERT_FALSE(keys.empty());
        const auto location = store.recordLocation(keys.front());
        ASSERT_TRUE(location.has_value());
        std::fstream file(location->path, std::ios::in | std::ios::out |
                                              std::ios::binary);
        const std::int64_t at = location->offset + 18;
        file.seekg(at);
        char byte = 0;
        file.get(byte);
        file.seekp(at);
        file.put(static_cast<char>(byte ^ 0x20));
    }

    const RunResult repaired = runService(trace, makeOptions(cacheDir()));
    // The corrupted key re-translates (cold), everything else persists.
    EXPECT_GT(repaired.report.translation_cycles, 0);
    EXPECT_GT(repaired.report.persisted, 0);
    EXPECT_GT(repaired.report.cold + repaired.report.coalesced, 0);

    const RunResult warm = runService(trace, makeOptions(cacheDir()));
    EXPECT_EQ(warm.report.translation_cycles, 0)
        << "repair must re-save the re-translated key";
}

TEST_F(ServicePersistTest, InjectedCorruptionOnPersistedServeInvalidates)
{
    // Arm the fault stream: kCacheCorruption probes now also fire on
    // persisted serves, which must invalidate the store entry (deleting
    // the blob), purge the shard caches, and re-translate -- while the
    // report stays shape-independent (the determinism property test
    // covers that; here we pin the persist-side bookkeeping).
    const ServiceTrace trace = makeTrace(23);
    runService(trace, makeOptions(cacheDir()));

    ServiceOptions faulted = makeOptions(cacheDir());
    faulted.fault_seed = 99;
    const RunResult warm = runService(trace, faulted);
    if (warm.report.invalidated + warm.report.quarantined == 0)
        GTEST_SKIP() << "fault stream never drew a corruption probe";
    EXPECT_GT(warm.report.translation_cycles, 0)
        << "an invalidated persisted image must re-translate";
}

ServiceTrace
traceOfSeeds(const std::vector<int>& seeds)
{
    std::string text = "veal-trace-v1\n";
    for (const int seed : seeds)
        text += "tick\nsubmit tenant=0 seed=" + std::to_string(seed) +
                "\n";
    auto parsed = parseTrace(text);
    return std::get<ServiceTrace>(std::move(parsed));
}

TEST_F(ServicePersistTest, StoreCapacityEvictionNeverResurrects)
{
    // Eight distinct keys through a four-entry store: save order
    // 1..8, so the probation tail evicts 1..4 and 5..8 survive on
    // disk.  Deterministic by construction -- no random trace.
    ServiceOptions tiny = makeOptions(cacheDir());
    tiny.store.max_entries = 4;
    const RunResult cold =
        runService(traceOfSeeds({1, 2, 3, 4, 5, 6, 7, 8}), tiny);
    ASSERT_EQ(cold.report.cold, 8);

    // Only 4 entries may remain; the evictions were committed to the
    // manifest log, so a reopen agrees.
    {
        persist::PersistentStore store(cacheDir(), tiny.store);
        EXPECT_EQ(store.size(), 4);
    }

    // Replay most-recent-first: the four survivors serve from disk,
    // the four evicted keys re-translate (an evicted entry never
    // resurrects), and nothing crashes along the way.
    const RunResult warm =
        runService(traceOfSeeds({8, 7, 6, 5, 4, 3, 2, 1}), tiny);
    EXPECT_EQ(warm.report.persisted, 4);
    EXPECT_EQ(warm.report.cold, 4);
    EXPECT_GT(warm.report.translation_cycles, 0);
    EXPECT_LT(warm.report.translation_cycles,
              cold.report.translation_cycles)
        << "the surviving entries must still save their translations";
}

TEST_F(ServicePersistTest, PersistenceOffLeavesReportsUntouched)
{
    // The whole feature is opt-in: without cache_dir the report must be
    // bit-identical to what the service produced before persistence
    // existed (pinned implicitly by the golden service tests; here we
    // pin that the no-cache-dir path writes nothing to disk).
    const ServiceTrace trace = makeTrace();
    ServiceOptions options;
    options.shards = 2;
    const RunResult plain = runService(trace, options);
    EXPECT_EQ(plain.report.persisted, 0);
    EXPECT_FALSE(fs::exists(dir_));
}

TEST_F(ServicePersistTest, SecondServiceOnTheSameDirServesReadOnly)
{
    // Two veal-serve processes pointed at one --cache-dir: the first
    // owns the flock; the second degrades to a read-only cache tier --
    // it still *serves* persisted images, just never writes.
    const ServiceTrace trace = makeTrace();
    runService(trace, makeOptions(cacheDir()));  // Populate.

    metrics::Registry writer_registry;
    TranslationService writer(makeOptions(cacheDir()),
                              &writer_registry);
    ASSERT_NE(writer.persistentStore(), nullptr);
    ASSERT_FALSE(writer.persistentStore()->readOnly());

    metrics::Registry reader_registry;
    TranslationService reader(makeOptions(cacheDir()),
                              &reader_registry);
    ASSERT_NE(reader.persistentStore(), nullptr);
    EXPECT_TRUE(reader.persistentStore()->readOnly());
    EXPECT_EQ(reader_registry.counter("vm.persist.readonly"), 1);

    // The read-only tier still warm-starts the reader.
    reader.run(trace);
    EXPECT_EQ(reader.report().translation_cycles, 0)
        << "read-only tier must still serve persisted images";
    EXPECT_GT(reader.report().persisted, 0);

    // The writer is undisturbed: same directory, still writable, and a
    // run through it produces the canonical warm report.
    writer.run(trace);
    EXPECT_FALSE(writer.persistentStore()->readOnly());
    EXPECT_EQ(writer.report().translation_cycles, 0);
    EXPECT_EQ(writer.report().render(), reader.report().render())
        << "a read-only warm run must not diverge from the writer's";

    // A reader that translates *new* keys skips (and counts) every
    // persist instead of erroring.
    metrics::Registry fresh_registry;
    TranslationService fresh_reader(makeOptions(cacheDir()),
                                    &fresh_registry);
    ASSERT_TRUE(fresh_reader.persistentStore()->readOnly());
    fresh_reader.run(makeTrace(31));  // Unseen seed: cold translations.
    EXPECT_GT(fresh_reader.report().cold, 0);
    EXPECT_GT(fresh_registry.counter("vm.persist.readonly_skips"), 0)
        << "skipped persists must be counted, not silent";
}

TEST_F(ServicePersistTest, TlbChargesAreOffByDefaultAndMeteredWhenOn)
{
    const ServiceTrace trace = makeTrace();
    const RunResult off = runService(trace, makeOptions(cacheDir()));
    EXPECT_EQ(off.report.tlb_pages, 0);
    EXPECT_EQ(off.report.tlb_walks, 0);
    EXPECT_EQ(off.report.tlb_cycles, 0);

    // A fresh directory: the TLB-on cold run must actually translate
    // (the off run above already populated cacheDir()).
    const std::string tlb_dir = (dir_ / "tlb").string();
    ServiceOptions with_tlb = makeOptions(tlb_dir);
    with_tlb.tlb = TlbConfig::proposed();
    with_tlb.tlb.entries = 1;  // Tiny TLB: warm re-walks too.
    const RunResult on = runService(trace, with_tlb);
    EXPECT_GT(on.report.tlb_pages, 0);
    EXPECT_GT(on.report.tlb_walks, 0);
    EXPECT_EQ(on.report.tlb_cycles,
              on.report.tlb_walks * with_tlb.tlb.walk_cycles);
    // TLB charges ride on execution pricing, never translation.
    EXPECT_EQ(on.report.translation_cycles,
              off.report.translation_cycles);
    EXPECT_GT(on.report.la_warm_cycles, off.report.la_warm_cycles);

    // A warm start prices TLB from the persisted summary strides.  It
    // charges no first-invocation walks (nothing translates), so its
    // totals sit below the cold TLB run -- but warm restarts agree with
    // each other bit for bit.
    const RunResult on_warm1 = runService(trace, with_tlb);
    const RunResult on_warm2 = runService(trace, with_tlb);
    EXPECT_GT(on_warm1.report.tlb_cycles, 0);
    EXPECT_LT(on_warm1.report.tlb_walks, on.report.tlb_walks);
    EXPECT_EQ(on_warm1.render, on_warm2.render);
    EXPECT_EQ(on_warm1.metrics, on_warm2.metrics);
}

}  // namespace
}  // namespace veal
