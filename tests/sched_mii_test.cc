#include "veal/sched/mii.h"

#include <gtest/gtest.h>

#include "veal/ir/loop_builder.h"

namespace veal {
namespace {

struct Built {
    Loop loop;
    LoopAnalysis analysis;
    CcaMapping mapping;
};

Built
build(Loop loop, const LaConfig& config)
{
    auto analysis = analyzeLoop(loop);
    EXPECT_TRUE(analysis.ok());
    auto mapping = emptyCcaMapping(loop);
    (void)config;
    return Built{std::move(loop), std::move(analysis), std::move(mapping)};
}

Loop
makeAccumulator(int latency_ops)
{
    // acc = acc + x with `latency_ops` unit-latency ops in the cycle.
    LoopBuilder b("acc");
    const OpId iv = b.induction(1);
    const OpId x = b.load("in", iv);
    OpId value = b.add(LoopBuilder::carried(kNoOp, 0), x);
    const OpId first = value;
    for (int i = 1; i < latency_ops; ++i)
        value = b.xorOp(value, x);
    b.loop().mutableOp(first).inputs[0] = LoopBuilder::carried(value, 1);
    b.store("out", iv, value);
    b.loopBack(iv, b.constant(64));
    return b.build();
}

TEST(RecMiiTest, AcyclicGraphIsOne)
{
    LoopBuilder b("acyclic");
    const OpId iv = b.induction(1);
    const OpId x = b.load("in", iv);
    const OpId y = b.mul(x, b.constant(3));
    b.store("out", iv, y);
    b.loopBack(iv, b.constant(64));
    const LaConfig la = LaConfig::infinite();
    auto built = build(b.build(), la);
    SchedGraph graph(built.loop, built.analysis, built.mapping, la);
    EXPECT_EQ(recMii(graph), 1);
}

TEST(RecMiiTest, ChainRecurrenceLengthSetsRecMii)
{
    const LaConfig la = LaConfig::infinite();
    for (int length = 1; length <= 6; ++length) {
        auto built = build(makeAccumulator(length), la);
        SchedGraph graph(built.loop, built.analysis, built.mapping, la);
        EXPECT_EQ(recMii(graph), length) << "cycle of " << length
                                         << " unit-latency ops";
    }
}

TEST(RecMiiTest, DistanceTwoHalvesTheRatio)
{
    // A 4-op cycle carried over two iterations: RecMII = ceil(4/2) = 2.
    LoopBuilder b("dist2");
    const OpId iv = b.induction(1);
    const OpId x = b.load("in", iv);
    OpId v = b.add(LoopBuilder::carried(kNoOp, 0), x);
    const OpId first = v;
    v = b.xorOp(v, x);
    v = b.orOp(v, x);
    v = b.andOp(v, x);
    b.loop().mutableOp(first).inputs[0] = LoopBuilder::carried(v, 2);
    b.store("out", iv, v);
    b.loopBack(iv, b.constant(64));
    const LaConfig la = LaConfig::infinite();
    auto built = build(b.build(), la);
    SchedGraph graph(built.loop, built.analysis, built.mapping, la);
    EXPECT_EQ(recMii(graph), 2);
}

TEST(RecMiiTest, MultiplyLatencyCountsFully)
{
    // mpy(3) + or(1) around a distance-1 cycle: RecMII = 4 (Figure 5).
    LoopBuilder b("mpyrec");
    const OpId iv = b.induction(1);
    const OpId x = b.load("in", iv);
    const OpId mpy = b.mul(LoopBuilder::carried(kNoOp, 0), x);
    const OpId orv = b.orOp(mpy, x);
    b.loop().mutableOp(mpy).inputs[0] = LoopBuilder::carried(orv, 1);
    b.store("out", iv, orv);
    b.loopBack(iv, b.constant(64));
    const LaConfig la = LaConfig::infinite();
    auto built = build(b.build(), la);
    SchedGraph graph(built.loop, built.analysis, built.mapping, la);
    EXPECT_EQ(recMii(graph), 4);
}

TEST(ResMiiTest, IntOpsOverIntUnits)
{
    // 5 integer compute ops on 2 integer units: ResMII >= 3 (Figure 5).
    LoopBuilder b("res");
    const OpId iv = b.induction(1);
    const OpId x = b.load("in", iv);
    OpId v = x;
    for (int i = 0; i < 5; ++i)
        v = b.xorOp(v, x);
    b.store("out", iv, v);
    b.loopBack(iv, b.constant(64));
    LaConfig la = LaConfig::infinite();
    la.num_int_units = 2;
    auto built = build(b.build(), la);
    SchedGraph graph(built.loop, built.analysis, built.mapping, la);
    EXPECT_EQ(resMii(graph, la), 3);
}

TEST(ResMiiTest, MemoryPortPressureCounts)
{
    LoopBuilder b("memports");
    const OpId iv = b.induction(1);
    OpId acc = kNoOp;
    for (int i = 0; i < 6; ++i) {
        const OpId offset = b.constant(i);
        const OpId x = b.load("in", b.add(iv, offset));
        acc = acc == kNoOp ? x : b.add(acc, x);
    }
    b.store("out", iv, acc);
    b.loopBack(iv, b.constant(64));
    LaConfig la = LaConfig::infinite();
    la.num_memory_ports = 2;
    auto built = build(b.build(), la);
    SchedGraph graph(built.loop, built.analysis, built.mapping, la);
    // 7 memory accesses over 2 ports: ceil(7/2) = 4.
    EXPECT_EQ(resMii(graph, la), 4);
}

TEST(ResMiiTest, MissingFuClassIsUnschedulable)
{
    LoopBuilder b("fp");
    const OpId iv = b.induction(1);
    const OpId x = b.load("in", iv);
    const OpId y = b.fadd(x, x);
    b.store("out", iv, y);
    b.loopBack(iv, b.constant(64));
    LaConfig la = LaConfig::infinite();
    la.num_fp_units = 0;
    auto built = build(b.build(), la);
    SchedGraph graph(built.loop, built.analysis, built.mapping, la);
    EXPECT_GE(resMii(graph, la), LaConfig::kUnlimited);
}

TEST(ResMiiTest, NonPipelinedCcaConsumesTwoSlots)
{
    LoopBuilder b("ccadem");
    const OpId iv = b.induction(1);
    const OpId x = b.load("in", iv);
    const OpId a = b.andOp(x, x);
    const OpId o = b.orOp(a, x);
    b.store("out", iv, o);
    b.loopBack(iv, b.constant(64));
    Loop loop = b.build();
    LaConfig la = LaConfig::infiniteWithCca();
    la.num_cca_units = 1;
    const auto analysis = analyzeLoop(loop);
    const auto mapping = mapToCca(loop, analysis, *la.cca, la.latencies);
    ASSERT_EQ(mapping.groups.size(), 1u);
    SchedGraph graph(loop, analysis, mapping, la);
    EXPECT_EQ(resMii(graph, la), 2);  // One group, init interval 2.
}

TEST(IiFeasibleTest, FeasibleAtRecMiiInfeasibleBelow)
{
    const LaConfig la = LaConfig::infinite();
    auto built = build(makeAccumulator(4), la);
    SchedGraph graph(built.loop, built.analysis, built.mapping, la);
    EXPECT_EQ(recMii(graph), 4);
    EXPECT_TRUE(iiFeasible(graph, 4));
    EXPECT_TRUE(iiFeasible(graph, 10));
    EXPECT_FALSE(iiFeasible(graph, 3));
    EXPECT_FALSE(iiFeasible(graph, 1));
}

TEST(RecMiiSubsetTest, SubsetRestrictsToMembers)
{
    // Two independent recurrences of lengths 2 and 5.
    LoopBuilder b("two");
    const OpId iv = b.induction(1);
    const OpId x = b.load("in", iv);
    OpId v1 = b.add(LoopBuilder::carried(kNoOp, 0), x);
    const OpId f1 = v1;
    v1 = b.xorOp(v1, x);
    b.loop().mutableOp(f1).inputs[0] = LoopBuilder::carried(v1, 1);

    OpId v2 = b.add(LoopBuilder::carried(kNoOp, 0), x);
    const OpId f2 = v2;
    for (int i = 0; i < 4; ++i)
        v2 = b.orOp(v2, x);
    b.loop().mutableOp(f2).inputs[0] = LoopBuilder::carried(v2, 1);

    b.store("out", iv, b.add(v1, v2));
    b.loopBack(iv, b.constant(64));
    const LaConfig la = LaConfig::infinite();
    auto built = build(b.build(), la);
    SchedGraph graph(built.loop, built.analysis, built.mapping, la);

    EXPECT_EQ(recMii(graph), 5);

    // Restrict to the short recurrence.
    std::vector<bool> member(static_cast<std::size_t>(graph.numUnits()),
                             false);
    member[static_cast<std::size_t>(graph.unitOf(f1))] = true;
    member[static_cast<std::size_t>(graph.unitOf(v1))] = true;
    EXPECT_EQ(recMiiOfSubset(graph, member), 2);
}

}  // namespace
}  // namespace veal
