#include "veal/workloads/kernels.h"
#include "veal/ir/transforms.h"

#include <gtest/gtest.h>

#include "veal/ir/loop_analysis.h"
#include "veal/vm/translator.h"

namespace veal {
namespace {

/** Every kernel builder, with the expected mapping outcome. */
struct KernelCase {
    std::string name;
    Loop loop;
    bool expect_translates;  ///< On the proposed LA, fully dynamic.
};

std::vector<KernelCase>
makeKernelCases()
{
    std::vector<KernelCase> cases;
    auto add = [&](Loop loop, bool translates) {
        std::string name = loop.name();
        cases.push_back(
            KernelCase{std::move(name), std::move(loop), translates});
    };
    add(makeAdpcmStepLoop("adpcm"), true);
    add(makeG721PredictorLoop("g721"), true);
    add(makeFirLoop("fir8", 8), true);
    add(makeDotProductLoop("dot"), true);
    add(makeWaveletLiftLoop("wave"), true);
    add(makeDct8Loop("dct8", 1), true);
    add(makeSadLoop("sad"), true);
    add(makeQuantLoop("quant"), true);
    add(makeShaMixLoop("sha", 3), true);
    add(makeStencil5Loop("swim"), true);
    add(makeMatVecLoop("mesa", 3, 3), true);
    add(makeViterbiAcsLoop("vit"), true);
    add(makeCopyScaleLoop("copy"), true);
    // Never map: too many streams / speculation / calls.
    add(makeStencilNLoop("mgrid", 20), false);
    add(makeDct8Loop("dct8x2", 2), false);
    add(makeSearchWhileLoop("search"), false);
    add(makeMathCallLoop("libm"), false);
    add(makeAdpcmStepLoop("adpcm_call", true), false);
    return cases;
}

class KernelTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KernelTest, VerifiesStructurally)
{
    auto cases = makeKernelCases();
    const auto& c = cases[GetParam()];
    EXPECT_FALSE(c.loop.verify().has_value()) << c.name;
}

TEST_P(KernelTest, TranslationOutcomeMatchesExpectation)
{
    auto cases = makeKernelCases();
    const auto& c = cases[GetParam()];
    const auto result = translateLoop(c.loop, LaConfig::proposed(),
                                      TranslationMode::kFullyDynamic);
    EXPECT_EQ(result.ok, c.expect_translates)
        << c.name << ": " << toString(result.reject) << " "
        << result.reject_detail;
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelTest,
                         ::testing::Range<std::size_t>(0, 18));

TEST(KernelStructureTest, FirTapsControlStreams)
{
    for (const int taps : {2, 4, 8}) {
        Loop loop = makeFirLoop("fir", taps);
        const auto analysis = analyzeLoop(loop);
        ASSERT_TRUE(analysis.ok());
        EXPECT_EQ(static_cast<int>(analysis.load_streams.size()), taps);
    }
}

TEST(KernelStructureTest, StencilPointsControlStreams)
{
    Loop loop = makeStencilNLoop("s", 7);
    const auto analysis = analyzeLoop(loop);
    ASSERT_TRUE(analysis.ok());
    EXPECT_EQ(analysis.load_streams.size(), 7u);
}

TEST(KernelStructureTest, AdpcmHasCarriedRecurrences)
{
    Loop loop = makeAdpcmStepLoop("adpcm");
    int carried = 0;
    for (const auto& edge : loop.allEdges())
        carried += edge.distance > 0 ? 1 : 0;
    EXPECT_GE(carried, 3);  // induction + step + valpred.
}

TEST(KernelStructureTest, ShaRoundsGrowTheRecurrence)
{
    const auto shallow = translateLoop(makeShaMixLoop("s2", 2),
                                       LaConfig::infinite(),
                                       TranslationMode::kFullyDynamic);
    const auto deep = translateLoop(makeShaMixLoop("s3", 3),
                                    LaConfig::infinite(),
                                    TranslationMode::kFullyDynamic);
    ASSERT_TRUE(shallow.ok);
    ASSERT_TRUE(deep.ok);
    EXPECT_GT(deep.mii, shallow.mii);
}

TEST(KernelStructureTest, UntransformedVariantsKeepCalls)
{
    for (Loop loop : {makeAdpcmStepLoop("a", true),
                      makeG721PredictorLoop("g", true),
                      makeSadLoop("s", true), makeQuantLoop("q", true)}) {
        EXPECT_EQ(loop.feature(), LoopFeature::kHasSubroutineCall)
            << loop.name();
    }
}

TEST(KernelStructureTest, CalleeLibraryCoversUsedHelpers)
{
    const auto library = standardCalleeLibrary();
    for (const char* name : {"clip", "sat8", "iabs", "avg2"})
        EXPECT_TRUE(library.contains(name)) << name;
}

TEST(KernelStructureTest, InlinedVariantsTranslate)
{
    const auto library = standardCalleeLibrary();
    for (Loop loop : {makeAdpcmStepLoop("a", true),
                      makeG721PredictorLoop("g", true),
                      makeSadLoop("s", true), makeQuantLoop("q", true)}) {
        Loop inlined = inlineCalls(loop, library);
        const auto result = translateLoop(inlined, LaConfig::proposed(),
                                          TranslationMode::kFullyDynamic);
        EXPECT_TRUE(result.ok) << loop.name() << ": "
                               << toString(result.reject);
    }
}

}  // namespace
}  // namespace veal
