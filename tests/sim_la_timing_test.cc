#include "veal/sim/la_timing.h"

#include <gtest/gtest.h>

#include "veal/ir/loop_builder.h"
#include "veal/vm/translator.h"

namespace veal {
namespace {

TranslationResult
translateSimple()
{
    LoopBuilder b("simple");
    const OpId iv = b.induction(1);
    const OpId x = b.load("in", iv);
    const OpId k = b.liveIn("k");
    const OpId y = b.mul(x, k);
    b.markLiveOut(y);
    b.store("out", iv, y);
    b.loopBack(iv, b.constant(256));
    Loop loop = b.build();
    auto result = translateLoop(loop, LaConfig::proposed(),
                                TranslationMode::kFullyDynamic);
    EXPECT_TRUE(result.ok);
    return result;
}

TEST(LaTimingTest, KernelDominatesForLongLoops)
{
    const auto tr = translateSimple();
    const LaConfig la = LaConfig::proposed();
    const auto cost =
        acceleratorLoopCost(tr.schedule, *tr.graph, tr.analysis,
                            tr.registers, la, 1 << 20);
    EXPECT_GT(cost.pipeline_cycles, 100 * cost.setup_cycles);
    // Kernel rate: II cycles per iteration asymptotically.
    const double per_iteration =
        static_cast<double>(cost.pipeline_cycles) / (1 << 20);
    EXPECT_NEAR(per_iteration, tr.schedule.ii, 0.1);
}

TEST(LaTimingTest, SetupIncludesBusAndConfig)
{
    const auto tr = translateSimple();
    const LaConfig la = LaConfig::proposed();
    const auto first =
        acceleratorLoopCost(tr.schedule, *tr.graph, tr.analysis,
                            tr.registers, la, 16, true);
    const auto warm =
        acceleratorLoopCost(tr.schedule, *tr.graph, tr.analysis,
                            tr.registers, la, 16, false);
    EXPECT_GT(first.setup_cycles, warm.setup_cycles);
    EXPECT_GE(warm.setup_cycles, la.bus_latency);
    EXPECT_GE(first.drain_cycles, la.bus_latency);
    EXPECT_EQ(first.pipeline_cycles, warm.pipeline_cycles);
}

TEST(LaTimingTest, TotalsAreAdditive)
{
    const auto tr = translateSimple();
    const LaConfig la = LaConfig::proposed();
    const auto cost =
        acceleratorLoopCost(tr.schedule, *tr.graph, tr.analysis,
                            tr.registers, la, 100);
    EXPECT_EQ(cost.total(), cost.setup_cycles + cost.pipeline_cycles +
                                cost.drain_cycles);
}

TEST(LaTimingTest, MoreIterationsMoreCycles)
{
    const auto tr = translateSimple();
    const LaConfig la = LaConfig::proposed();
    const auto small =
        acceleratorLoopCost(tr.schedule, *tr.graph, tr.analysis,
                            tr.registers, la, 100);
    const auto large =
        acceleratorLoopCost(tr.schedule, *tr.graph, tr.analysis,
                            tr.registers, la, 200);
    EXPECT_EQ(large.total() - small.total(), 100 * tr.schedule.ii);
}

TEST(LaTimingTest, PipelineIncludesFillDrain)
{
    const auto tr = translateSimple();
    const LaConfig la = LaConfig::proposed();
    const auto one =
        acceleratorLoopCost(tr.schedule, *tr.graph, tr.analysis,
                            tr.registers, la, 1);
    // A single iteration costs the whole schedule length.
    EXPECT_EQ(one.pipeline_cycles, tr.schedule.length);
}

}  // namespace
}  // namespace veal
