/**
 * Golden fleet-placement snapshots plus the persisted-score round trip.
 *
 * Every `tests/corpus/seed-*.veal` loop is scored and steered under
 * each preset fleet ("baseline" and "standard") and summarised as one
 * line: the chosen backend, the winning II, and the translation mode.
 * The lines are compared against `tests/golden/fleet_placements.golden`
 * so any change to a preset shape, the scoring kernel, or the steering
 * order moves a visible diff instead of drifting silently.
 *
 * To refresh after an intentional change:
 *
 *     VEAL_UPDATE_GOLDEN=1 ./build/tests/fleet_golden_test
 *
 * The second half pins the v2-blob contract end to end: a service run
 * with --fleet against a fresh store persists its score sets, and a
 * restart over the same store rehydrates every placement without
 * computing a single score (fleet_scores_computed == 0), with the
 * placement histogram and per-tenant digests byte-identical.
 */

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "veal/arch/cpu_config.h"
#include "veal/fleet/fleet.h"
#include "veal/fuzz/corpus.h"
#include "veal/service/service.h"
#include "veal/service/trace.h"
#include "veal/sim/tlb_model.h"

#ifndef VEAL_CORPUS_DIR
#error "VEAL_CORPUS_DIR must point at tests/corpus"
#endif
#ifndef VEAL_GOLDEN_DIR
#error "VEAL_GOLDEN_DIR must point at tests/golden"
#endif

namespace veal {
namespace {

constexpr std::int64_t kIterations = 12;

/** One snapshot line per (fleet, corpus case), no trailing newline. */
std::string
snapshotLine(const std::string& fleet_name,
             const fleet::FleetConfig& config, const std::string& stem,
             const CorpusCase& repro)
{
    const fleet::BackendScorer scorer(config, CpuConfig{}, TlbConfig{},
                                      kIterations);
    fleet::FleetSteerer steerer(config);
    const persist::FleetScoreSet set =
        scorer.score(repro.loop, repro.mode);
    const fleet::Placement placement = steerer.place(stem, set);

    std::ostringstream os;
    os << fleet_name << " " << stem << " mode=" << toString(repro.mode);
    if (placement.unscored) {
        os << " backend=cpu-ladder reject="
           << toString(set.backends.empty()
                           ? TranslationReject::kNone
                           : set.backends[0].reject);
        return os.str();
    }
    const auto chosen = static_cast<std::size_t>(placement.backend);
    os << " backend="
       << config.backends[chosen].la.name
       << " ii=" << set.backends[chosen].ii
       << " warm=" << set.backends[chosen].warm_cycles;
    return os.str();
}

std::string
goldenPath()
{
    return std::string(VEAL_GOLDEN_DIR) + "/fleet_placements.golden";
}

TEST(FleetGolden, CorpusPlacementsMatchSnapshots)
{
    const auto files = listCorpusFiles(VEAL_CORPUS_DIR);
    ASSERT_FALSE(files.empty()) << "no corpus at " VEAL_CORPUS_DIR;

    const std::pair<std::string, fleet::FleetConfig> fleets[] = {
        {"baseline", fleet::FleetConfig::baselineOnly()},
        {"standard", fleet::FleetConfig::standard()},
    };

    std::ostringstream actual;
    for (const auto& [fleet_name, config] : fleets) {
        for (const auto& path : files) {
            const auto parsed = loadCorpusFile(path);
            ASSERT_TRUE(std::holds_alternative<CorpusCase>(parsed))
                << path << ": " << std::get<std::string>(parsed);
            const auto stem =
                std::filesystem::path(path).stem().string();
            actual << snapshotLine(fleet_name, config, stem,
                                   std::get<CorpusCase>(parsed))
                   << "\n";
        }
    }

    if (std::getenv("VEAL_UPDATE_GOLDEN") != nullptr) {
        std::filesystem::create_directories(VEAL_GOLDEN_DIR);
        std::ofstream out(goldenPath(), std::ios::trunc);
        out << actual.str();
        ASSERT_TRUE(out.good()) << "failed writing " << goldenPath();
        GTEST_SKIP() << "golden refreshed: " << goldenPath();
    }

    std::ifstream in(goldenPath());
    ASSERT_TRUE(in.good())
        << "missing " << goldenPath()
        << "; run with VEAL_UPDATE_GOLDEN=1 to create it";
    std::ostringstream expected;
    expected << in.rdbuf();

    EXPECT_EQ(actual.str(), expected.str())
        << "fleet placements drifted; if the change is intentional, "
           "refresh with VEAL_UPDATE_GOLDEN=1 and review the diff";
}

TEST(FleetGolden, SnapshotsAreDeterministic)
{
    const auto files = listCorpusFiles(VEAL_CORPUS_DIR);
    ASSERT_FALSE(files.empty());
    const auto parsed = loadCorpusFile(files.front());
    ASSERT_TRUE(std::holds_alternative<CorpusCase>(parsed));
    const auto& repro = std::get<CorpusCase>(parsed);
    const auto config = fleet::FleetConfig::standard();
    EXPECT_EQ(snapshotLine("standard", config, "case", repro),
              snapshotLine("standard", config, "case", repro));
}

struct FleetRun {
    std::string render;
    std::map<std::string, std::int64_t> placed;
    std::int64_t scores_computed = 0;
    std::int64_t scores_persisted = 0;
    std::map<int, std::uint64_t> digests;
};

FleetRun
runWithStore(const ServiceTrace& trace, const std::string& cache_dir)
{
    ServiceOptions options;
    options.shards = 2;
    options.threads = 2;
    options.batch = 8;
    options.cache_dir = cache_dir;
    options.fleet = fleet::FleetConfig::standard();
    TranslationService service(options, nullptr);
    const ServiceReport& report = service.run(trace);
    service.flushPersistentStore();

    FleetRun run;
    run.render = report.render();
    run.placed = report.fleet_placed;
    run.scores_computed = report.fleet_scores_computed;
    run.scores_persisted = report.fleet_scores_persisted;
    for (const auto& [tenant, tenant_report] : report.tenants)
        run.digests[tenant] = tenant_report.digest;
    return run;
}

TEST(FleetGolden, PersistedScoresRehydratePlacementsWithoutRescoring)
{
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / "veal-fleet-golden-store";
    std::error_code ec;
    fs::remove_all(dir, ec);

    TraceGenOptions gen;
    gen.seed = 9;
    gen.requests = 120;
    gen.tenants = 3;
    gen.loop_pool = 8;
    gen.tick_size = 8;
    gen.iterations = 10;
    const ServiceTrace trace = generateTrace(gen);

    const FleetRun cold = runWithStore(trace, dir.string());
    EXPECT_GT(cold.scores_computed, 0);
    EXPECT_EQ(cold.scores_persisted, 0);

    // Restart over the populated store: every placement rehydrates
    // from v2 blobs -- zero scoring work, identical steering.  (The
    // tenant digests fold the cache outcome, so cold-vs-warm digests
    // legitimately differ; warm restarts must agree with each other.)
    const FleetRun warm = runWithStore(trace, dir.string());
    EXPECT_EQ(warm.scores_computed, 0)
        << "a restart re-scored keys whose blobs carry fleet scores";
    EXPECT_EQ(warm.scores_persisted, cold.scores_computed);
    EXPECT_EQ(warm.placed, cold.placed);

    const FleetRun warm2 = runWithStore(trace, dir.string());
    EXPECT_EQ(warm2.render, warm.render);
    EXPECT_EQ(warm2.digests, warm.digests);
    EXPECT_EQ(warm2.placed, warm.placed);
    EXPECT_EQ(warm2.scores_computed, 0);

    fs::remove_all(dir, ec);
}

}  // namespace
}  // namespace veal
