/**
 * Admission-control and warm-tier invariants of the translation
 * service: quota-before-queue rejection order, the quota-0 and
 * depth-1 edge cases, tenant hogging, all-rejected ticks, and the
 * "no same-epoch re-translation across shards" guarantee.
 */

#include <gtest/gtest.h>

#include "veal/service/service.h"
#include "veal/service/trace.h"

namespace veal {
namespace {

ServiceRequest
makeRequest(int tenant, const Loop& loop, const std::string& key)
{
    ServiceRequest request;
    request.tenant = tenant;
    request.loop = loop;
    request.key = key;
    request.iterations = 8;
    return request;
}

TEST(ServiceAdmission, QuotaZeroRejectsEverySubmission)
{
    ServiceOptions options;
    options.tenant_quota = 0;
    TranslationService service(options);
    const Loop loop = makeTraceLoop(1);

    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(service.submit(makeRequest(0, loop, "k")),
                  AdmissionOutcome::kQuotaExceeded);
    }
    service.drainTick();

    const ServiceReport& report = service.report();
    EXPECT_EQ(report.submitted, 5);
    EXPECT_EQ(report.admitted, 0);
    EXPECT_EQ(report.rejected_quota, 5);
    EXPECT_EQ(report.rejected_queue, 0);
    // An all-rejected tick still accounts every submission per tenant.
    ASSERT_EQ(report.tenants.count(0), 1u);
    EXPECT_EQ(report.tenants.at(0).rejected_quota, 5);
    EXPECT_EQ(service.warmTier().size(), 0)
        << "nothing admitted, nothing translated";
}

TEST(ServiceAdmission, QueueDepthOneAdmitsExactlyOnePerTick)
{
    ServiceOptions options;
    options.queue_depth = 1;
    options.tenant_quota = 8;
    TranslationService service(options);
    const Loop loop = makeTraceLoop(2);

    EXPECT_EQ(service.submit(makeRequest(0, loop, "k")),
              AdmissionOutcome::kAdmitted);
    EXPECT_EQ(service.submit(makeRequest(1, loop, "k")),
              AdmissionOutcome::kQueueFull);
    EXPECT_EQ(service.submit(makeRequest(0, loop, "k")),
              AdmissionOutcome::kQueueFull);
    service.drainTick();

    // The drain freed the slot: the next tick admits again.
    EXPECT_EQ(service.submit(makeRequest(1, loop, "k")),
              AdmissionOutcome::kAdmitted);
    service.drainTick();

    const ServiceReport& report = service.report();
    EXPECT_EQ(report.admitted, 2);
    EXPECT_EQ(report.rejected_queue, 2);
    EXPECT_EQ(report.tenants.at(0).admitted, 1);
    EXPECT_EQ(report.tenants.at(1).admitted, 1);
}

TEST(ServiceAdmission, HoggingTenantIsQuotaRejectedBeforeTheQueue)
{
    ServiceOptions options;
    options.tenant_quota = 2;
    options.queue_depth = 64;
    TranslationService service(options);
    const Loop loop = makeTraceLoop(3);

    // Tenant 0 floods: 2 admitted, 3 quota-rejected even though the
    // queue has plenty of room (quota is checked first).
    for (int i = 0; i < 5; ++i)
        service.submit(makeRequest(0, loop, "hog"));
    // Tenant 1 is unaffected by tenant 0's hogging.
    EXPECT_EQ(service.submit(makeRequest(1, loop, "quiet")),
              AdmissionOutcome::kAdmitted);
    EXPECT_EQ(service.submit(makeRequest(1, loop, "quiet")),
              AdmissionOutcome::kAdmitted);
    service.drainTick();

    const ServiceReport& report = service.report();
    EXPECT_EQ(report.tenants.at(0).admitted, 2);
    EXPECT_EQ(report.tenants.at(0).rejected_quota, 3);
    EXPECT_EQ(report.tenants.at(0).rejected_queue, 0);
    EXPECT_EQ(report.tenants.at(1).admitted, 2);
    EXPECT_EQ(report.tenants.at(1).rejected_quota, 0);

    // Quotas are per-tick: the drain resets tenant 0's budget.
    EXPECT_EQ(service.submit(makeRequest(0, loop, "hog")),
              AdmissionOutcome::kAdmitted);
}

TEST(ServiceAdmission, RejectionsAreSequencedIntoTheTickOutcomes)
{
    ServiceOptions options;
    options.tenant_quota = 1;
    TranslationService service(options);
    const Loop loop = makeTraceLoop(4);

    service.submit(makeRequest(0, loop, "k"));  // sequence 0, admitted
    service.submit(makeRequest(0, loop, "k"));  // sequence 1, quota
    service.submit(makeRequest(1, loop, "k"));  // sequence 2, admitted
    service.drainTick();

    const auto& outcomes = service.lastTickOutcomes();
    ASSERT_EQ(outcomes.size(), 3u);
    EXPECT_EQ(outcomes[0].sequence, 0);
    EXPECT_EQ(outcomes[0].admission, AdmissionOutcome::kAdmitted);
    EXPECT_EQ(outcomes[1].sequence, 1);
    EXPECT_EQ(outcomes[1].admission, AdmissionOutcome::kQuotaExceeded);
    EXPECT_EQ(outcomes[2].sequence, 2);
    EXPECT_EQ(outcomes[2].admission, AdmissionOutcome::kAdmitted);
    EXPECT_EQ(outcomes[2].cache, CacheOutcome::kCoalesced)
        << "same-tick duplicate rides the first request's translation";

    // Sequence numbers keep counting across ticks.
    service.submit(makeRequest(0, loop, "k"));
    service.drainTick();
    ASSERT_EQ(service.lastTickOutcomes().size(), 1u);
    EXPECT_EQ(service.lastTickOutcomes()[0].sequence, 3);
    EXPECT_EQ(service.lastTickOutcomes()[0].cache, CacheOutcome::kWarm);
}

TEST(ServiceAdmission, WarmTierPreventsSameEpochRetranslationAcrossShards)
{
    // 12 requests over 3 keys land on 8 shards in one tick: exactly one
    // fresh translation per key may happen, whatever shard it lands on;
    // everyone else coalesces.  The next tick serves all 12 warm.
    ServiceOptions options;
    options.shards = 8;
    options.tenant_quota = 16;
    TranslationService service(options);
    const Loop loops[3] = {makeTraceLoop(10), makeTraceLoop(11),
                           makeTraceLoop(12)};

    for (int round = 0; round < 4; ++round) {
        for (int k = 0; k < 3; ++k) {
            service.submit(makeRequest(round % 2, loops[k],
                                       "key-" + std::to_string(k)));
        }
    }
    service.drainTick();

    const ServiceReport& first = service.report();
    EXPECT_EQ(first.cold, 3) << "one fresh translation per distinct key";
    EXPECT_EQ(first.coalesced, 9);
    EXPECT_EQ(first.warm, 0);
    const WarmTier::Stats published = service.warmTier().stats();
    EXPECT_EQ(published.publishes, 3)
        << "no shard may re-translate a key in the same epoch";
    EXPECT_EQ(published.republishes, 0);

    for (int round = 0; round < 4; ++round) {
        for (int k = 0; k < 3; ++k) {
            service.submit(makeRequest(round % 2, loops[k],
                                       "key-" + std::to_string(k)));
        }
    }
    service.drainTick();

    const ServiceReport& second = service.report();
    EXPECT_EQ(second.cold, 3) << "nothing new to translate";
    EXPECT_EQ(second.warm, 12) << "the whole second tick serves warm";
    EXPECT_EQ(service.warmTier().stats().publishes, 3);
    EXPECT_EQ(service.warmTier().stats().serves, 12);
}

TEST(ServiceAdmission, EmptyTickIsHarmless)
{
    TranslationService service(ServiceOptions{});
    service.drainTick();
    service.drainTick();
    EXPECT_EQ(service.report().ticks, 2);
    EXPECT_EQ(service.report().submitted, 0);
    EXPECT_TRUE(service.lastTickOutcomes().empty());
}

}  // namespace
}  // namespace veal
