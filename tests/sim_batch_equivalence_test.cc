/**
 * Differential tests for the batched simulation engine.
 *
 * BatchSimulator's contract is bit-identity with the frozen reference
 * simulators in veal/sim/reference.h: cycle counts (including the
 * cycles-per-iteration double, compared bit for bit), architectural
 * memory images and live-outs, and per-phase LA invocation charges --
 * for any batch width and any grouping of lanes.  These tests sweep
 * 1000 seeded random fuzz loops plus the edge widths (a batch of one,
 * a ragged final batch, mixed trip counts) and the interpreter's
 * dense-window overflow paths.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <map>
#include <vector>

#include "tests/testing/random_workloads.h"
#include "veal/arch/la_config.h"
#include "veal/fuzz/driver.h"
#include "veal/fuzz/oracle.h"
#include "veal/ir/loop_builder.h"
#include "veal/sim/batch.h"
#include "veal/sim/reference.h"
#include "veal/vm/translator.h"

namespace veal {
namespace {

constexpr std::uint64_t kCampaignSeed = 0xba7c4ull;
constexpr int kLoops = 1000;

Loop
caseLoop(int index)
{
    return testing::caseLoop(kCampaignSeed, index);
}

void
expectSameTiming(const CpuLoopTiming& batched,
                 const CpuLoopTiming& scalar, int index)
{
    EXPECT_EQ(batched.total_cycles, scalar.total_cycles)
        << "case " << index;
    // The steady-state rate is a double produced by the same division;
    // require bit identity, not closeness.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(batched.cycles_per_iteration),
              std::bit_cast<std::uint64_t>(scalar.cycles_per_iteration))
        << "case " << index;
}

TEST(SimBatchEquivalence, CpuTimingMatchesReferenceOver1000Loops)
{
    const CpuConfig cpu = CpuConfig::arm11();
    std::vector<Loop> loops;
    std::vector<CpuSimRequest> requests;
    loops.reserve(kLoops);
    for (int i = 0; i < kLoops; ++i) {
        loops.push_back(caseLoop(i));
        requests.push_back({&loops.back(), loops.back().tripCount()});
    }
    // (vector growth invalidates nothing: requests point at loops,
    // which was reserved up front.)
    const auto batched = simulateCpuBatch(cpu, requests);
    ASSERT_EQ(batched.size(), requests.size());
    for (int i = 0; i < kLoops; ++i) {
        const auto scalar = reference::simulateLoopOnCpu(
            loops[static_cast<std::size_t>(i)], cpu,
            requests[static_cast<std::size_t>(i)].iterations);
        expectSameTiming(batched[static_cast<std::size_t>(i)], scalar,
                         i);
    }
}

TEST(SimBatchEquivalence, CpuTimingIndependentOfBatchWidth)
{
    const CpuConfig cpu = CpuConfig::arm11();
    constexpr int kCases = 200;
    const std::vector<Loop> loops = testing::caseLoops(kCampaignSeed,
                                                       kCases);
    const auto iterationsFor = [&](int i) {
        return testing::edgeTripIterations(loops, i);
    };

    std::vector<CpuLoopTiming> whole;
    for (int i = 0; i < kCases; ++i) {
        const std::vector<CpuSimRequest> one = {
            {&loops[static_cast<std::size_t>(i)], iterationsFor(i)}};
        whole.push_back(simulateCpuBatch(cpu, one)[0]);
    }

    // Width 16 and 64 (64 leaves a ragged final batch of 200 % 64 = 8),
    // one reused simulator across chunks.
    for (const int width : {16, 64}) {
        BatchSimulator simulator;
        std::vector<CpuLoopTiming> chunked;
        for (int begin = 0; begin < kCases; begin += width) {
            std::vector<CpuSimRequest> chunk;
            for (int i = begin; i < std::min(begin + width, kCases); ++i)
                chunk.push_back({&loops[static_cast<std::size_t>(i)],
                                 iterationsFor(i)});
            const auto part = simulator.simulateCpuBatch(cpu, chunk);
            chunked.insert(chunked.end(), part.begin(), part.end());
        }
        ASSERT_EQ(chunked.size(), whole.size()) << "width " << width;
        for (int i = 0; i < kCases; ++i) {
            expectSameTiming(chunked[static_cast<std::size_t>(i)],
                             whole[static_cast<std::size_t>(i)], i);
        }
    }
}

TEST(SimBatchEquivalence, InterpretationMatchesReferenceOver1000Loops)
{
    std::vector<Loop> loops;
    std::vector<ExecutionInput> inputs;
    loops.reserve(kLoops);
    inputs.reserve(kLoops);
    std::vector<InterpretRequest> requests;
    for (int i = 0; i < kLoops; ++i) {
        loops.push_back(caseLoop(i));
        ASSERT_TRUE(interpretable(loops.back())) << "case " << i;
        inputs.push_back(makeFuzzInput(
            loops.back(), makeFuzzCaseSeed(kCampaignSeed, i), 12));
        requests.push_back({&loops.back(), &inputs.back()});
    }
    const auto batched = interpretBatch(requests);
    ASSERT_EQ(batched.size(), requests.size());
    for (int i = 0; i < kLoops; ++i) {
        const auto scalar = reference::interpretLoop(
            loops[static_cast<std::size_t>(i)],
            inputs[static_cast<std::size_t>(i)]);
        EXPECT_EQ(batched[static_cast<std::size_t>(i)].memory,
                  scalar.memory)
            << "case " << i;
        EXPECT_EQ(batched[static_cast<std::size_t>(i)].live_outs,
                  scalar.live_outs)
            << "case " << i;
    }
}

TEST(SimBatchEquivalence, InterpretationIndependentOfBatchWidth)
{
    constexpr int kCases = 200;
    std::vector<Loop> loops;
    std::vector<ExecutionInput> inputs;
    loops.reserve(kCases);
    inputs.reserve(kCases);
    for (int i = 0; i < kCases; ++i) {
        loops.push_back(caseLoop(i));
        // Mixed trip counts, including the no-iteration edge where
        // live-outs read the initial carried state.
        ExecutionInput input = makeFuzzInput(
            loops.back(), makeFuzzCaseSeed(kCampaignSeed, i), 12);
        input.iterations = i % 13;
        inputs.push_back(std::move(input));
    }

    std::vector<ExecutionResult> scalar;
    for (int i = 0; i < kCases; ++i) {
        scalar.push_back(reference::interpretLoop(
            loops[static_cast<std::size_t>(i)],
            inputs[static_cast<std::size_t>(i)]));
    }

    for (const int width : {1, 16, 64}) {
        BatchSimulator simulator;
        std::vector<ExecutionResult> chunked;
        for (int begin = 0; begin < kCases; begin += width) {
            std::vector<InterpretRequest> chunk;
            for (int i = begin; i < std::min(begin + width, kCases); ++i)
                chunk.push_back({&loops[static_cast<std::size_t>(i)],
                                 &inputs[static_cast<std::size_t>(i)]});
            auto part = simulator.interpretBatch(chunk);
            for (auto& result : part)
                chunked.push_back(std::move(result));
        }
        ASSERT_EQ(chunked.size(), scalar.size()) << "width " << width;
        for (int i = 0; i < kCases; ++i) {
            EXPECT_EQ(chunked[static_cast<std::size_t>(i)].memory,
                      scalar[static_cast<std::size_t>(i)].memory)
                << "width " << width << " case " << i;
            EXPECT_EQ(chunked[static_cast<std::size_t>(i)].live_outs,
                      scalar[static_cast<std::size_t>(i)].live_outs)
                << "width " << width << " case " << i;
        }
    }
}

TEST(SimBatchEquivalence, FlatInputAndLazyViewMatchReference)
{
    // The campaign fast path end to end: pre-flattened memory images in,
    // the arena-backed BatchExecView out, no ExecutionResult maps ever
    // materialised.  Walking the view must reproduce the reference maps
    // exactly, cell for cell and in ascending order.
    constexpr int kCases = 64;
    std::vector<Loop> loops;
    std::vector<ExecutionInput> inputs;
    loops.reserve(kCases);
    inputs.reserve(kCases);
    for (int i = 0; i < kCases; ++i) {
        loops.push_back(caseLoop(i));
        inputs.push_back(makeFuzzInput(
            loops.back(), makeFuzzCaseSeed(kCampaignSeed, i), 12));
    }
    std::vector<FlatMemoryImage> flats;
    flats.reserve(kCases);
    for (const ExecutionInput& input : inputs)
        flats.push_back(flattenMemoryImage(input.memory));

    std::vector<InterpretRequest> requests;
    for (int i = 0; i < kCases; ++i) {
        requests.push_back({&loops[static_cast<std::size_t>(i)],
                            &inputs[static_cast<std::size_t>(i)],
                            &flats[static_cast<std::size_t>(i)]});
    }
    BatchSimulator simulator;
    const BatchExecView& view = simulator.interpretBatchFlat(requests);
    ASSERT_EQ(view.lanes.size(), requests.size());

    for (int i = 0; i < kCases; ++i) {
        const auto scalar = reference::interpretLoop(
            loops[static_cast<std::size_t>(i)],
            inputs[static_cast<std::size_t>(i)]);
        const auto& lane = view.lanes[static_cast<std::size_t>(i)];

        std::map<OpId, std::int64_t> live_outs;
        for (std::size_t lo = lane.live_out_begin;
             lo < lane.live_out_end; ++lo) {
            live_outs.emplace_hint(live_outs.end(),
                                   view.live_outs[lo].first,
                                   view.live_outs[lo].second);
        }
        EXPECT_EQ(live_outs, scalar.live_outs) << "case " << i;

        MemoryImage memory;
        for (std::size_t r = lane.region_begin; r < lane.region_end;
             ++r) {
            const BatchExecView::Region& region = view.regions[r];
            auto& cells = memory[*region.name];
            std::int64_t previous = std::numeric_limits<std::int64_t>::min();
            forEachRegionCell(
                region, [&](std::int64_t address, std::int64_t value) {
                    EXPECT_GT(address, previous)
                        << "case " << i << " region " << *region.name;
                    previous = address;
                    cells.emplace_hint(cells.end(), address, value);
                });
        }
        EXPECT_EQ(memory, scalar.memory) << "case " << i;
    }
}

TEST(SimBatchEquivalence, DenseWindowOverflowPathsMatchReference)
{
    // Stores land far outside the initial image's dense window, and one
    // array is too sparse for a window at all -- both must round-trip
    // through the overflow map bit-identically.
    LoopBuilder b("overflow");
    const OpId iv = b.induction(1);
    const OpId base = b.liveIn("base");
    const OpId loaded = b.load("sparse", iv);
    b.store("sparse", b.add(iv, base), b.add(loaded, b.constant(5)));
    b.loopBack(iv, b.constant(64));
    Loop loop = b.build();
    ASSERT_TRUE(interpretable(loop));

    ExecutionInput input;
    input.iterations = 16;
    input.live_ins[base] = 5'000'000;  // Stores beyond any window pad.
    for (std::int64_t address : {std::int64_t{-3}, std::int64_t{2},
                                 std::int64_t{4'000'000'000}}) {
        input.memory["sparse"][address] = address % 97;
    }
    input.memory["untouched"][7] = 42;

    const auto scalar = reference::interpretLoop(loop, input);
    const auto batched = interpretBatch({{&loop, &input}});
    ASSERT_EQ(batched.size(), 1u);
    EXPECT_EQ(batched[0].memory, scalar.memory);
    EXPECT_EQ(batched[0].live_outs, scalar.live_outs);
}

TEST(SimBatchEquivalence, LaChargesMatchReferencePerPhase)
{
    const LaConfig la = LaConfig::proposed();
    BatchSimulator simulator;
    int translated = 0;
    for (int i = 0; i < 200 && translated < 60; ++i) {
        const Loop loop = caseLoop(i);
        const TranslationResult translation =
            translateLoop(loop, la, TranslationMode::kFullyDynamic);
        if (!translation.ok || !translation.graph.has_value())
            continue;
        ++translated;
        for (const bool first : {true, false}) {
            const std::vector<LaCostRequest> requests = {
                {&translation.schedule, &*translation.graph,
                 &translation.analysis, &translation.registers,
                 loop.tripCount(), first}};
            const auto batched =
                simulator.acceleratorCostBatch(la, requests);
            const auto scalar = reference::acceleratorLoopCost(
                translation.schedule, *translation.graph,
                translation.analysis, translation.registers, la,
                loop.tripCount(), first);
            ASSERT_EQ(batched.size(), 1u);
            EXPECT_EQ(batched[0].setup_cycles, scalar.setup_cycles)
                << "case " << i << " first=" << first;
            EXPECT_EQ(batched[0].pipeline_cycles, scalar.pipeline_cycles)
                << "case " << i << " first=" << first;
            EXPECT_EQ(batched[0].drain_cycles, scalar.drain_cycles)
                << "case " << i << " first=" << first;
        }
    }
    // The fuzz presets translate well over half the stream; if this
    // ever drops to zero the test silently stops covering the model.
    EXPECT_GE(translated, 30);
}

TEST(SimBatchEquivalence, RejectsNonInterpretableLoops)
{
    LoopBuilder b("call");
    const OpId iv = b.induction(1);
    b.call("helper", {iv});
    b.loopBack(iv, b.constant(8));
    const Loop loop = b.build();
    EXPECT_FALSE(interpretable(loop));
}

}  // namespace
}  // namespace veal
