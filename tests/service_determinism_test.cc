/**
 * The determinism contract of the translation service, tested as a
 * property: for 500 generated multi-tenant traces, the rendered report,
 * the metrics-registry snapshot, and every per-tenant digest are
 * byte-identical at every point of the shards {1,2,8} x threads {1,8}
 * x batch {1,64} matrix.  A third of the traces run with the fault
 * stream armed, so corruption/degradation under concurrency is held to
 * the same standard.
 */

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include <gtest/gtest.h>

#include "veal/service/service.h"
#include "veal/service/trace.h"
#include "veal/support/metrics/metrics.h"

namespace veal {
namespace {

constexpr int kShards[] = {1, 2, 8};
constexpr int kThreads[] = {1, 8};
constexpr int kBatches[] = {1, 64};

struct RunSnapshot {
    std::string render;
    std::string metrics;
    std::map<int, std::uint64_t> digests;
};

RunSnapshot
runOnce(const ServiceTrace& trace, int shards, int threads, int batch,
        std::optional<std::uint64_t> fault_seed)
{
    metrics::Registry registry;
    ServiceOptions options;
    options.shards = shards;
    options.threads = threads;
    options.batch = batch;
    options.shard_cache_entries = 4;  // Small: force evictions too.
    options.fault_seed = fault_seed;
    TranslationService service(options, &registry);
    const ServiceReport& report = service.run(trace);

    RunSnapshot snapshot;
    snapshot.render = report.render();
    snapshot.metrics = registry.toJson();
    for (const auto& [tenant, tenant_report] : report.tenants)
        snapshot.digests[tenant] = tenant_report.digest;
    return snapshot;
}

TEST(ServiceDeterminism, FiveHundredTracesAcrossTheWholeMatrix)
{
    for (std::uint64_t seed = 1; seed <= 500; ++seed) {
        TraceGenOptions gen;
        gen.seed = seed;
        gen.requests = 6 + static_cast<int>(seed % 6);
        gen.tenants = 3;
        gen.loop_pool = 3;
        gen.tick_size = 4;
        gen.iterations = 6;
        const ServiceTrace trace = generateTrace(gen);

        // Every third trace runs with per-request fault streams armed.
        const std::optional<std::uint64_t> fault_seed =
            (seed % 3 == 0) ? std::optional<std::uint64_t>(seed ^ 0xf5)
                            : std::nullopt;

        const RunSnapshot baseline = runOnce(trace, 1, 1, 1, fault_seed);
        for (int shards : kShards) {
            for (int threads : kThreads) {
                for (int batch : kBatches) {
                    if (shards == 1 && threads == 1 && batch == 1)
                        continue;
                    const RunSnapshot probe =
                        runOnce(trace, shards, threads, batch, fault_seed);
                    ASSERT_EQ(probe.render, baseline.render)
                        << "report diverged: seed " << seed << " shards "
                        << shards << " threads " << threads << " batch "
                        << batch;
                    ASSERT_EQ(probe.metrics, baseline.metrics)
                        << "metrics diverged: seed " << seed << " shards "
                        << shards << " threads " << threads << " batch "
                        << batch;
                    ASSERT_EQ(probe.digests, baseline.digests)
                        << "per-tenant digest diverged: seed " << seed
                        << " shards " << shards << " threads " << threads
                        << " batch " << batch;
                }
            }
        }
    }
}

TEST(ServiceDeterminism, ReportsAreReplayStable)
{
    // The same trace through two fresh services (same knobs) is
    // byte-identical -- no hidden global state leaks between runs.
    TraceGenOptions gen;
    gen.seed = 77;
    gen.requests = 24;
    gen.tenants = 4;
    gen.loop_pool = 4;
    gen.tick_size = 6;
    const ServiceTrace trace = generateTrace(gen);
    const RunSnapshot first = runOnce(trace, 2, 8, 16, 1234);
    const RunSnapshot second = runOnce(trace, 2, 8, 16, 1234);
    EXPECT_EQ(first.render, second.render);
    EXPECT_EQ(first.metrics, second.metrics);
}

}  // namespace
}  // namespace veal
