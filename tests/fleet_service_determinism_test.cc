/**
 * The service determinism contract, re-proven under a heterogeneous
 * fleet: the PR-7 500-trace battery re-run with the standard 5-backend
 * fleet steering every loop, byte-comparing the rendered report, the
 * metrics snapshot (fleet.* counters included), and every per-tenant
 * digest across the shards {1,2,8} x threads {1,8} x batch {1,64}
 * matrix.  A third of the traces run with the fault stream armed, and a
 * dedicated test pins that quarantine stays (tenant, key)-scoped when
 * the offending key lives on a fleet backend: the same key under other
 * tenants keeps translating, on the same backend.
 */

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include <gtest/gtest.h>

#include "veal/fleet/fleet.h"
#include "veal/service/service.h"
#include "veal/service/trace.h"
#include "veal/support/metrics/metrics.h"

namespace veal {
namespace {

constexpr int kShards[] = {1, 2, 8};
constexpr int kThreads[] = {1, 8};
constexpr int kBatches[] = {1, 64};

struct RunSnapshot {
    std::string render;
    std::string metrics;
    std::map<int, std::uint64_t> digests;
};

RunSnapshot
runOnce(const ServiceTrace& trace, int shards, int threads, int batch,
        std::optional<std::uint64_t> fault_seed)
{
    metrics::Registry registry;
    ServiceOptions options;
    options.shards = shards;
    options.threads = threads;
    options.batch = batch;
    options.shard_cache_entries = 4;  // Small: force evictions too.
    options.fault_seed = fault_seed;
    options.fleet = fleet::FleetConfig::standard();
    TranslationService service(options, &registry);
    const ServiceReport& report = service.run(trace);

    RunSnapshot snapshot;
    snapshot.render = report.render();
    snapshot.metrics = registry.toJson();
    for (const auto& [tenant, tenant_report] : report.tenants)
        snapshot.digests[tenant] = tenant_report.digest;
    return snapshot;
}

TEST(FleetServiceDeterminism, FiveHundredTracesAcrossTheWholeMatrix)
{
    for (std::uint64_t seed = 1; seed <= 500; ++seed) {
        TraceGenOptions gen;
        gen.seed = seed;
        gen.requests = 6 + static_cast<int>(seed % 6);
        gen.tenants = 3;
        gen.loop_pool = 3;
        gen.tick_size = 4;
        gen.iterations = 6;
        const ServiceTrace trace = generateTrace(gen);

        // Every third trace runs with per-request fault streams armed:
        // invalidation/quarantine under concurrency must hold the same
        // byte-equality standard with steering in the consult path.
        const std::optional<std::uint64_t> fault_seed =
            (seed % 3 == 0) ? std::optional<std::uint64_t>(seed ^ 0xf5)
                            : std::nullopt;

        const RunSnapshot baseline = runOnce(trace, 1, 1, 1, fault_seed);
        for (int shards : kShards) {
            for (int threads : kThreads) {
                for (int batch : kBatches) {
                    if (shards == 1 && threads == 1 && batch == 1)
                        continue;
                    const RunSnapshot probe =
                        runOnce(trace, shards, threads, batch, fault_seed);
                    ASSERT_EQ(probe.render, baseline.render)
                        << "fleet report diverged: seed " << seed
                        << " shards " << shards << " threads " << threads
                        << " batch " << batch;
                    ASSERT_EQ(probe.metrics, baseline.metrics)
                        << "fleet metrics diverged: seed " << seed
                        << " shards " << shards << " threads " << threads
                        << " batch " << batch;
                    ASSERT_EQ(probe.digests, baseline.digests)
                        << "per-tenant digest diverged: seed " << seed
                        << " shards " << shards << " threads " << threads
                        << " batch " << batch;
                }
            }
        }
    }
}

TEST(FleetServiceDeterminism, ReportsAreReplayStable)
{
    TraceGenOptions gen;
    gen.seed = 77;
    gen.requests = 24;
    gen.tenants = 4;
    gen.loop_pool = 4;
    gen.tick_size = 6;
    const ServiceTrace trace = generateTrace(gen);
    const RunSnapshot first = runOnce(trace, 2, 8, 16, 1234);
    const RunSnapshot second = runOnce(trace, 2, 8, 16, 1234);
    EXPECT_EQ(first.render, second.render);
    EXPECT_EQ(first.metrics, second.metrics);
}

TEST(FleetServiceDeterminism, QuarantineStaysTenantScopedPerBackend)
{
    // Two tenants hammer the same key; the fault stream eventually
    // corrupts a cached serve often enough to quarantine one (tenant,
    // key) pair.  The other tenant must keep translating that key --
    // and on the same steered backend as before the quarantine.
    ServiceTrace trace;
    for (int tick = 0; tick < 24; ++tick) {
        std::vector<TraceRequest> requests;
        for (int tenant = 0; tenant < 2; ++tenant) {
            TraceRequest request;
            request.tenant = tenant;
            request.loop_seed = 7;
            request.mode = TranslationMode::kFullyDynamic;
            request.iterations = 6;
            requests.push_back(request);
        }
        trace.ticks.push_back(requests);
    }

    // Sweep fault seeds until one quarantines exactly one tenant; the
    // deterministic fault stream makes the found seed stable forever.
    for (std::uint64_t fault_seed = 1; fault_seed <= 64; ++fault_seed) {
        metrics::Registry registry;
        ServiceOptions options;
        options.shards = 2;
        options.threads = 2;
        options.batch = 4;
        options.quarantine_strikes = 2;
        options.fault_seed = fault_seed;
        options.fleet = fleet::FleetConfig::standard();
        TranslationService service(options, &registry);
        const ServiceReport& report = service.run(trace);

        std::int64_t quarantined_tenants = 0;
        for (const auto& [tenant, tenant_report] : report.tenants) {
            if (tenant_report.quarantined > 0)
                ++quarantined_tenants;
        }
        if (quarantined_tenants != 1 || report.quarantined_pairs != 1)
            continue;

        // Exactly one (tenant, key) pair is out; the other tenant kept
        // being served (placed on a backend every admitted request).
        std::int64_t placed_total = 0;
        for (const auto& [name, count] : report.fleet_placed)
            placed_total += count;
        std::int64_t quarantined_total = 0;
        for (const auto& [tenant, tenant_report] : report.tenants)
            quarantined_total += tenant_report.quarantined;
        EXPECT_EQ(placed_total + quarantined_total +
                      report.fleet_cpu_fallbacks,
                  report.admitted);
        for (const auto& [tenant, tenant_report] : report.tenants) {
            if (tenant_report.quarantined == 0) {
                EXPECT_EQ(tenant_report.quarantined, 0);
                EXPECT_GT(tenant_report.translate_ok, 0)
                    << "healthy tenant starved by a peer's quarantine";
            }
        }
        return;  // Found and verified the armed column.
    }
    FAIL() << "no fault seed in [1,64] produced a single-tenant "
              "quarantine; the fault stream distribution changed";
}

}  // namespace
}  // namespace veal
