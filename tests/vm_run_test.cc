#include "veal/vm/vm.h"

#include <gtest/gtest.h>

#include <string>

#include "veal/support/metrics/metrics.h"
#include "veal/workloads/kernels.h"
#include "veal/ir/transforms.h"

namespace veal {
namespace {

Application
makeSimpleApp()
{
    Application app;
    app.name = "testapp";
    app.sites.push_back(LoopSite{.loop = makeSadLoop("sad"),
                                 .fissioned = {},
                                 .invocations = 50,
                                 .iterations = 256});
    app.sites.push_back(LoopSite{.loop = makeQuantLoop("quant"),
                                 .fissioned = {},
                                 .invocations = 40,
                                 .iterations = 512});
    app.acyclic_cycles = 50000;
    return app;
}

TEST(VmRunTest, AcceleratesSimpleApp)
{
    VmOptions options;
    options.mode = TranslationMode::kStatic;
    VirtualMachine vm(LaConfig::proposed(), CpuConfig::arm11(), options);
    const auto result = vm.run(makeSimpleApp());
    EXPECT_GT(result.speedup, 1.2);
    EXPECT_EQ(result.sites.size(), 2u);
    for (const auto& site : result.sites)
        EXPECT_TRUE(site.accelerated);
    EXPECT_EQ(result.translation_cycles, 0);  // Static mode: no penalty.
}

TEST(VmRunTest, DynamicModePaysTranslationOnce)
{
    VmOptions options;
    options.mode = TranslationMode::kFullyDynamic;
    VirtualMachine vm(LaConfig::proposed(), CpuConfig::arm11(), options);
    const auto result = vm.run(makeSimpleApp());
    EXPECT_GT(result.translation_cycles, 0);
    for (const auto& site : result.sites) {
        if (site.accelerated) {
            EXPECT_EQ(site.translations, 1);
        }
    }
}

TEST(VmRunTest, DynamicNeverBeatsStatic)
{
    VmOptions st{.mode = TranslationMode::kStatic};
    VmOptions dy{.mode = TranslationMode::kFullyDynamic};
    const auto app = makeSimpleApp();
    const auto s =
        VirtualMachine(LaConfig::proposed(), CpuConfig::arm11(), st)
            .run(app);
    const auto d =
        VirtualMachine(LaConfig::proposed(), CpuConfig::arm11(), dy)
            .run(app);
    EXPECT_LE(d.speedup, s.speedup + 1e-9);
}

TEST(VmRunTest, RetranslationRateDegradesSpeedup)
{
    const auto app = makeSimpleApp();
    double previous = 1e18;
    for (const double rate : {0.0, 0.05, 0.25, 1.0}) {
        VmOptions options;
        options.mode = TranslationMode::kFullyDynamic;
        options.retranslation_rate = rate;
        const auto result =
            VirtualMachine(LaConfig::proposed(), CpuConfig::arm11(),
                           options)
                .run(app);
        EXPECT_LE(result.speedup, previous + 1e-9) << "rate " << rate;
        previous = result.speedup;
    }
}

TEST(VmRunTest, PenaltyOverrideDrivesFigure6Sweep)
{
    const auto app = makeSimpleApp();
    double previous = 1e18;
    for (const double penalty : {0.0, 20000.0, 100000.0, 300000.0}) {
        VmOptions options;
        options.mode = TranslationMode::kFullyDynamic;
        options.penalty_override = penalty;
        options.retranslation_rate = 0.01;
        const auto result =
            VirtualMachine(LaConfig::proposed(), CpuConfig::arm11(),
                           options)
                .run(app);
        EXPECT_LE(result.speedup, previous + 1e-9);
        previous = result.speedup;
    }
}

TEST(VmRunTest, UnmappableLoopFallsBackToCpu)
{
    Application app;
    app.name = "calls";
    app.sites.push_back(LoopSite{.loop = makeMathCallLoop("libm"),
                                 .fissioned = {},
                                 .invocations = 10,
                                 .iterations = 128});
    app.acyclic_cycles = 1000;
    VmOptions options;
    options.mode = TranslationMode::kFullyDynamic;
    VirtualMachine vm(LaConfig::proposed(), CpuConfig::arm11(), options);
    const auto result = vm.run(app);
    EXPECT_FALSE(result.sites[0].accelerated);
    EXPECT_EQ(result.sites[0].reject, TranslationReject::kAnalysis);
    EXPECT_NEAR(result.speedup, 1.0, 1e-6);
}

TEST(VmRunTest, FissionedSitesRunAllPieces)
{
    Application app;
    app.name = "fissioned";
    Loop wide = makeStencilNLoop("wide", 20);
    FissionBudget budget;
    budget.max_load_streams = 16;
    budget.max_store_streams = 8;
    budget.max_fp_ops = 24;
    auto fission = fissionLoop(wide, budget);
    ASSERT_TRUE(fission.has_value());
    app.sites.push_back(LoopSite{.loop = wide,
                                 .fissioned = std::move(fission->loops),
                                 .invocations = 20,
                                 .iterations = 256});
    VmOptions options;
    options.mode = TranslationMode::kStatic;
    VirtualMachine vm(LaConfig::proposed(), CpuConfig::arm11(), options);
    const auto result = vm.run(app);
    EXPECT_TRUE(result.sites[0].accelerated);
    EXPECT_GT(result.speedup, 1.0);
}

TEST(VmRunTest, SmallCodeCacheThrashes)
{
    // Three hot loops with a 1-entry cache: every invocation re-translates.
    Application app = makeSimpleApp();
    app.sites.push_back(LoopSite{.loop = makeCopyScaleLoop("copy"),
                                 .fissioned = {},
                                 .invocations = 30,
                                 .iterations = 512});
    VmOptions big;
    big.mode = TranslationMode::kFullyDynamic;
    big.code_cache_entries = 16;
    VmOptions tiny = big;
    tiny.code_cache_entries = 1;
    const auto roomy =
        VirtualMachine(LaConfig::proposed(), CpuConfig::arm11(), big)
            .run(app);
    const auto cramped =
        VirtualMachine(LaConfig::proposed(), CpuConfig::arm11(), tiny)
            .run(app);
    EXPECT_GT(cramped.translation_cycles, roomy.translation_cycles);
    EXPECT_LT(cramped.speedup, roomy.speedup);
    EXPECT_GT(cramped.cache_misses, roomy.cache_misses);
}

TEST(VmRunTest, CpuWinningPiecesDoNotOccupyTheCache)
{
    // Two real LA winners plus three trivial loops that translate fine
    // but lose to the CPU path (a single iteration cannot amortise the
    // LA's first-invocation cost).  Only the winners occupy the 2-entry
    // cache, so the working set fits and each misses exactly once.
    // Regression: the cache-fits test used to count every translated-ok
    // piece, so the three CPU-path loops "overflowed" the cache and
    // thrashed sad and quant into per-invocation retranslation.
    Application app = makeSimpleApp();
    for (int i = 0; i < 3; ++i) {
        app.sites.push_back(LoopSite{
            .loop = makeCopyScaleLoop("tiny" + std::to_string(i)),
            .fissioned = {},
            .invocations = 1,
            .iterations = 1});
    }
    VmOptions options;
    options.mode = TranslationMode::kFullyDynamic;
    options.code_cache_entries = 2;
    const VirtualMachine vm(LaConfig::proposed(), CpuConfig::arm11(),
                            options);
    metrics::Registry registry;
    const auto result = vm.run(app, &registry);
    // Precondition: the tiny loops really chose the CPU path.
    ASSERT_EQ(registry.counter("vm.path.cpu"), 3);
    ASSERT_EQ(registry.counter("vm.path.la"), 2);
    EXPECT_EQ(registry.counter("vm.resident_pieces"), 2);
    EXPECT_EQ(result.cache_misses, 2);
    EXPECT_EQ(result.cache_hits, 88);  // 50 + 40 invocations - 2 misses.
}

TEST(VmRunTest, SiteRejectReportsTheFirstFailedPiece)
{
    // A fissioned site whose first piece fails analysis (a libm call)
    // and whose second piece fails on stream limits (20 load streams on
    // a 16-stream LA).  Regression: the site verdict used to be
    // overwritten by each failed piece, reporting the *last* reason.
    Application app;
    app.name = "mixed-failure";
    app.sites.push_back(
        LoopSite{.loop = makeMathCallLoop("calls"),
                 .fissioned = {makeMathCallLoop("calls_piece"),
                               makeStencilNLoop("wide", 20)},
                 .invocations = 10,
                 .iterations = 128});
    VmOptions options;
    options.mode = TranslationMode::kFullyDynamic;
    const VirtualMachine vm(LaConfig::proposed(), CpuConfig::arm11(),
                            options);
    metrics::Registry registry;
    const auto result = vm.run(app, &registry);
    EXPECT_FALSE(result.sites[0].accelerated);
    EXPECT_EQ(result.sites[0].reject, TranslationReject::kAnalysis);
    // Both failures are still individually visible in the metrics.
    EXPECT_EQ(registry.counter("vm.translate.reject.analysis"), 1);
    EXPECT_EQ(
        registry.counter("vm.translate.reject.too-many-load-streams"), 1);
}

TEST(VmRunTest, BaselineCyclesMatchCpuOnly)
{
    const auto app = makeSimpleApp();
    VmOptions options;
    options.mode = TranslationMode::kStatic;
    VirtualMachine vm(LaConfig::proposed(), CpuConfig::arm11(), options);
    const auto result = vm.run(app);
    EXPECT_EQ(result.baseline_cycles,
              cpuOnlyCycles(app, CpuConfig::arm11()));
}

TEST(VmRunTest, WiderCpuIsFasterButScalesAcyclicOnly)
{
    const auto app = makeSimpleApp();
    const auto one = cpuOnlyCycles(app, CpuConfig::arm11());
    const auto two = cpuOnlyCycles(app, CpuConfig::cortexA8());
    const auto four = cpuOnlyCycles(app, CpuConfig::quadIssue());
    EXPECT_GT(one, two);
    EXPECT_GT(two, four);
}

}  // namespace
}  // namespace veal
