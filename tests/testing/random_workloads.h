#ifndef VEAL_TESTS_TESTING_RANDOM_WORKLOADS_H_
#define VEAL_TESTS_TESTING_RANDOM_WORKLOADS_H_

/**
 * @file
 * Shared seeded-workload helpers for the differential test batteries.
 *
 * The batch-equivalence, fuzz-driver, oracle, shrinker, and translation-
 * service tests all stress the same loop distribution (the fuzz stress
 * family behind makeFuzzCaseLoop / makeStressLoop); before this header
 * each test re-implemented its own copy of the case generator, the
 * edge-trip table, and the injected scheduler bug.  Keep the copies
 * here so a distribution change lands everywhere at once.
 */

#include <algorithm>
#include <cstdint>
#include <vector>

#include "veal/fuzz/driver.h"
#include "veal/ir/loop.h"
#include "veal/service/trace.h"
#include "veal/vm/translator.h"

namespace veal::testing {

/** The i-th loop of a seeded fuzz campaign stream. */
inline Loop
caseLoop(std::uint64_t campaign_seed, int index)
{
    return makeFuzzCaseLoop(campaign_seed, index);
}

/** The first @p count loops of a campaign stream, materialized. */
inline std::vector<Loop>
caseLoops(std::uint64_t campaign_seed, int count)
{
    std::vector<Loop> loops;
    loops.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i)
        loops.push_back(caseLoop(campaign_seed, i));
    return loops;
}

/**
 * Iteration counts that straddle the CPU timing model's warm-up and
 * measure-window boundaries (1, 2, 95..97), padded with each loop's own
 * trip count: the standard mixed-trip sweep for grouping-invariance
 * tests.
 */
inline std::int64_t
edgeTripIterations(const std::vector<Loop>& loops, int index)
{
    static constexpr std::int64_t kEdgeTrips[] = {1, 2, 7, 95, 96, 97,
                                                  500};
    if (index < 7)
        return kEdgeTrips[index];
    return loops[static_cast<std::size_t>(index)].tripCount();
}

/**
 * The canonical injected scheduler bug: pull one dependent op to
 * delay - 1 cycles after its producer (an off-by-one a validator must
 * catch), then re-derive length/stage_count so the schedule stays
 * internally consistent.  No-op on schedules without an eligible edge.
 */
inline void
injectOffByOne(TranslationResult& translation)
{
    if (!translation.graph.has_value())
        return;
    const SchedGraph& graph = *translation.graph;
    for (const auto& edge : graph.edges()) {
        if (edge.distance != 0 || edge.delay <= 0 || edge.from == edge.to)
            continue;
        auto& time = translation.schedule.time;
        time[static_cast<std::size_t>(edge.to)] =
            time[static_cast<std::size_t>(edge.from)] + edge.delay - 1;
        int length = 0;
        int max_stage = 0;
        for (std::size_t u = 0; u < time.size(); ++u) {
            length = std::max(length, time[u] + graph.units()[u].latency);
            max_stage = std::max(max_stage,
                                 time[u] / translation.schedule.ii);
        }
        translation.schedule.length = length;
        translation.schedule.stage_count = max_stage + 1;
        return;
    }
}

/**
 * Materialize every distinct loop a service trace references, keyed by
 * its published seed -- what TranslationService::run() does internally,
 * exposed so tests can drive submit()/drainTick() by hand.
 */
inline std::vector<std::pair<std::uint64_t, Loop>>
traceLoopPool(const ServiceTrace& trace)
{
    std::vector<std::pair<std::uint64_t, Loop>> pool;
    for (const auto& tick : trace.ticks) {
        for (const auto& request : tick) {
            const auto seen =
                std::find_if(pool.begin(), pool.end(), [&](const auto& p) {
                    return p.first == request.loop_seed;
                });
            if (seen == pool.end()) {
                pool.emplace_back(request.loop_seed,
                                  makeTraceLoop(request.loop_seed));
            }
        }
    }
    return pool;
}

}  // namespace veal::testing

#endif  // VEAL_TESTS_TESTING_RANDOM_WORKLOADS_H_
