/**
 * Property-based validation of the whole scheduling stack: random loops
 * are translated against several accelerator configurations, and every
 * produced schedule must satisfy every modulo-scheduling invariant.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "veal/ir/random_loop.h"
#include "veal/sched/mii.h"
#include "veal/vm/translator.h"

namespace veal {
namespace {

struct PropertyCase {
    std::uint64_t seed;
    TranslationMode mode;
};

void
PrintTo(const PropertyCase& c, std::ostream* os)
{
    *os << "seed=" << c.seed << " mode=" << toString(c.mode);
}

class ScheduleProperty : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(ScheduleProperty, TranslationsAreValidOrCleanlyRejected)
{
    const auto& param = GetParam();
    RandomLoopParams params;
    Loop loop = makeRandomLoop(params, param.seed);
    const LaConfig la = LaConfig::proposed();

    StaticAnnotations annotations;
    const StaticAnnotations* annotations_ptr = nullptr;
    if (param.mode == TranslationMode::kHybridStaticCcaPriority) {
        annotations = precompileAnnotations(loop, la);
        annotations_ptr = &annotations;
    }
    const auto result =
        translateLoop(loop, la, param.mode, annotations_ptr);
    if (!result.ok) {
        EXPECT_NE(result.reject, TranslationReject::kNone);
        return;
    }

    // The full validator: dependences, resources, II bounds, fields, and
    // register-file capacity via the allocator's live ranges.
    ASSERT_TRUE(result.graph.has_value());
    const auto error = validateSchedule(*result.graph, la, result.schedule,
                                        loop, result.analysis);
    EXPECT_FALSE(error.has_value()) << *error;

    // II is sandwiched between MII and max_ii.
    EXPECT_GE(result.schedule.ii, 1);
    EXPECT_LE(result.schedule.ii, la.max_ii);

    // Register files respected.
    EXPECT_LE(result.registers.int_regs_used, la.num_int_registers);
    EXPECT_LE(result.registers.fp_regs_used, la.num_fp_registers);

    // Metered work is non-zero in every dynamic mode.
    EXPECT_GT(result.meter.totalInstructions(), 0.0);
}

TEST_P(ScheduleProperty, MiiIsALowerBoundForTheAchievedIi)
{
    const auto& param = GetParam();
    RandomLoopParams params;
    Loop loop = makeRandomLoop(params, param.seed);
    const LaConfig la = LaConfig::proposed();
    const auto result = translateLoop(loop, la, param.mode);
    if (!result.ok)
        return;
    EXPECT_GE(result.schedule.ii, result.mii);
}

std::vector<PropertyCase>
makeCases()
{
    std::vector<PropertyCase> cases;
    for (std::uint64_t seed = 0; seed < 40; ++seed) {
        const auto mode =
            seed % 3 == 0
                ? TranslationMode::kFullyDynamic
                : (seed % 3 == 1
                       ? TranslationMode::kFullyDynamicHeight
                       : TranslationMode::kHybridStaticCcaPriority);
        cases.push_back(PropertyCase{seed, mode});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomLoops, ScheduleProperty,
                         ::testing::ValuesIn(makeCases()));

class InfiniteResourceProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InfiniteResourceProperty, InfiniteMachineTracksRecMii)
{
    // With unlimited resources the only hard limit is the recurrence
    // bound.  SMS is a heuristic and can occasionally need an extra II or
    // two even with free resources, so allow a small slack.
    RandomLoopParams params;
    Loop loop = makeRandomLoop(params, GetParam());
    const LaConfig la = LaConfig::infinite();
    const auto result =
        translateLoop(loop, la, TranslationMode::kFullyDynamic);
    ASSERT_TRUE(result.ok) << toString(result.reject);
    ASSERT_TRUE(result.graph.has_value());
    const int rec = recMii(*result.graph);
    EXPECT_GE(result.schedule.ii, rec);
    // Usually the II lands on RecMII exactly; the height-order fallback
    // (used when the swing placement wedges) can cost noticeably more.
    EXPECT_LE(result.schedule.ii, std::max(3 * rec + 4, 16));
}

TEST_P(InfiniteResourceProperty, FiniteNeverBeatsInfiniteByMuch)
{
    // The finite machine's MII floor is never below the infinite one;
    // the list scheduler's placement luck can differ by a cycle or two.
    RandomLoopParams params;
    Loop loop = makeRandomLoop(params, GetParam());
    const auto infinite =
        translateLoop(loop, LaConfig::infinite(),
                      TranslationMode::kFullyDynamic);
    const auto finite = translateLoop(loop, LaConfig::proposed(),
                                      TranslationMode::kFullyDynamic);
    ASSERT_TRUE(infinite.ok);
    if (!finite.ok)
        return;
    EXPECT_LE(infinite.mii, finite.mii);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InfiniteResourceProperty,
                         ::testing::Range<std::uint64_t>(100, 130));

}  // namespace
}  // namespace veal
