#include "veal/fault/campaign.h"

#include <gtest/gtest.h>

#include "veal/support/metrics/metrics.h"

namespace veal {
namespace {

TEST(CampaignPlans, AreDeterministicFunctionsOfSeedAndIndex)
{
    EXPECT_EQ(makeCampaignPlan(1, 0).describe(),
              makeCampaignPlan(1, 0).describe());
    EXPECT_NE(makeCampaignPlan(1, 0).describe(),
              makeCampaignPlan(1, 1).describe());
    EXPECT_NE(makeCampaignPlan(1, 0).describe(),
              makeCampaignPlan(2, 0).describe());
}

TEST(FaultCampaign, ReportIsIdenticalForAnyThreadCountAndClean)
{
    FaultCampaignOptions options;
    options.plans = 12;
    options.seed = 3;
    options.iterations = 8;
    options.max_invocations = 8;
    options.threads = 1;
    const FaultCampaignSummary serial = runFaultCampaign(options);

    options.threads = 3;
    const FaultCampaignSummary parallel = runFaultCampaign(options);

    EXPECT_EQ(serial.render(), parallel.render());
    EXPECT_TRUE(serial.clean()) << serial.render();
    EXPECT_TRUE(serial.divergences.empty());
    EXPECT_TRUE(serial.taxonomy_violations.empty());

    // Every plan lands on exactly one deepest rung.
    std::int64_t rung_total = 0;
    for (const auto& [rung, count] : serial.rung_counts)
        rung_total += count;
    EXPECT_EQ(rung_total, options.plans);

    const std::string report = serial.render();
    EXPECT_NE(report.find("verdict: CLEAN"), std::string::npos) << report;
}

TEST(FaultCampaign, RegistryCountersMatchTheSummary)
{
    FaultCampaignOptions options;
    options.plans = 8;
    options.seed = 11;
    options.iterations = 8;
    options.max_invocations = 8;
    metrics::Registry registry;
    const FaultCampaignSummary summary =
        runFaultCampaign(options, &registry);

    EXPECT_EQ(registry.counter("fault.plans"), summary.total_plans);
    EXPECT_EQ(registry.counter("fault.invalidations"),
              summary.invalidations);
    EXPECT_EQ(registry.counter("fault.retranslations"),
              summary.retranslations);
    EXPECT_EQ(registry.counter("fault.quarantines"), summary.quarantines);
    EXPECT_EQ(registry.counter("fault.divergences"), 0);
    EXPECT_EQ(registry.counter("fault.taxonomy_violations"), 0);
    std::int64_t rung_total = 0;
    for (const auto& [rung, count] : summary.rung_counts)
        EXPECT_EQ(registry.counter("fault.rung." + rung), count);
    (void)rung_total;
}

TEST(FaultCampaign, NamedAppSelectionIsHonoured)
{
    FaultCampaignOptions options;
    options.plans = 4;
    options.seed = 5;
    options.iterations = 8;
    options.max_invocations = 8;
    options.apps = {"g721enc"};
    const FaultCampaignSummary summary = runFaultCampaign(options);
    EXPECT_TRUE(summary.clean()) << summary.render();
    EXPECT_EQ(summary.total_plans, 4);
}

}  // namespace
}  // namespace veal
