#include "veal/service/trace.h"

#include <gtest/gtest.h>

#include "veal/ir/loop_parser.h"

namespace veal {
namespace {

std::string
errorOf(const std::variant<ServiceTrace, std::string>& parsed)
{
    const auto* error = std::get_if<std::string>(&parsed);
    return error == nullptr ? std::string() : *error;
}

TEST(ServiceTrace, FormatParseRoundTripIsExact)
{
    const ServiceTrace trace = generateTrace({});
    ASSERT_GT(trace.totalRequests(), 0);

    const std::string text = formatTrace(trace);
    EXPECT_EQ(text.rfind("veal-trace-v1\n", 0), 0u)
        << "versioned header leads the file";

    const auto parsed = parseTrace(text);
    ASSERT_TRUE(std::holds_alternative<ServiceTrace>(parsed))
        << errorOf(parsed);
    const ServiceTrace& round = std::get<ServiceTrace>(parsed);
    EXPECT_EQ(formatTrace(round), text) << "round trip is byte-exact";
    EXPECT_EQ(round.totalRequests(), trace.totalRequests());
    EXPECT_EQ(round.tenantCount(), trace.tenantCount());
}

TEST(ServiceTrace, GeneratorIsDeterministicAndSeedSensitive)
{
    TraceGenOptions options;
    options.seed = 9;
    options.requests = 100;
    options.tenants = 5;
    options.tick_size = 16;
    const ServiceTrace a = generateTrace(options);
    const ServiceTrace b = generateTrace(options);
    EXPECT_EQ(formatTrace(a), formatTrace(b));
    EXPECT_EQ(a.totalRequests(), 100);
    EXPECT_EQ(a.ticks.size(), 7u) << "ceil(100 / 16) ticks";
    EXPECT_LE(a.tenantCount(), 5);

    options.seed = 10;
    EXPECT_NE(formatTrace(generateTrace(options)), formatTrace(a))
        << "different seeds disagree on the request stream";
}

TEST(ServiceTrace, ParserToleratesCommentsCrlfAndImplicitFirstTick)
{
    const std::string text =
        "veal-trace-v1\r\n"
        "# a comment\r\n"
        "\r\n"
        "submit tenant=1 seed=42\r\n"
        "tick\r\n"
        "submit tenant=0 seed=42 mode=static iterations=3\r\n";
    const auto parsed = parseTrace(text);
    ASSERT_TRUE(std::holds_alternative<ServiceTrace>(parsed))
        << errorOf(parsed);
    const ServiceTrace& trace = std::get<ServiceTrace>(parsed);
    ASSERT_EQ(trace.ticks.size(), 2u)
        << "a submit before any tick opens tick 0";
    ASSERT_EQ(trace.ticks[0].size(), 1u);
    ASSERT_EQ(trace.ticks[1].size(), 1u);
    EXPECT_EQ(trace.ticks[0][0].tenant, 1);
    EXPECT_EQ(trace.ticks[0][0].mode, TranslationMode::kFullyDynamic)
        << "mode defaults to fully-dynamic";
    EXPECT_EQ(trace.ticks[0][0].iterations, 12);
    EXPECT_EQ(trace.ticks[1][0].mode, TranslationMode::kStatic);
    EXPECT_EQ(trace.ticks[1][0].iterations, 3);
}

TEST(ServiceTrace, ParserRejectsMalformedInputWithLineNumbers)
{
    const struct {
        const char* text;
        const char* fragment;
    } kCases[] = {
        {"", "missing veal-trace-v1"},
        {"veal-trace-v2\n", "expected header"},
        {"veal-trace-v1\nfrobnicate\n", "unknown directive"},
        {"veal-trace-v1\ntick now\n", "'tick' takes no arguments"},
        {"veal-trace-v1\nsubmit tenant=1\n", "needs tenant= and seed="},
        {"veal-trace-v1\nsubmit seed=1\n", "needs tenant= and seed="},
        {"veal-trace-v1\nsubmit tenant=x seed=1\n", "bad tenant"},
        {"veal-trace-v1\nsubmit tenant=1 seed=12abc\n", "bad seed"},
        {"veal-trace-v1\nsubmit tenant=1 seed=1 mode=warp\n",
         "unknown mode"},
        {"veal-trace-v1\nsubmit tenant=1 seed=1 iterations=0\n",
         "bad iterations"},
        {"veal-trace-v1\nsubmit tenant=1 seed=1 color=red\n",
         "unknown key"},
        {"veal-trace-v1\nsubmit tenant=1 seed=1 malformed\n",
         "expected key=value"},
    };
    for (const auto& test : kCases) {
        const auto parsed = parseTrace(test.text);
        ASSERT_TRUE(std::holds_alternative<std::string>(parsed))
            << "input must be rejected: " << test.text;
        EXPECT_NE(errorOf(parsed).find(test.fragment), std::string::npos)
            << "error '" << errorOf(parsed) << "' for " << test.text;
    }

    // Errors after the header carry the 1-based line number.
    const auto parsed = parseTrace("veal-trace-v1\n\n# pad\nbogus x\n");
    ASSERT_TRUE(std::holds_alternative<std::string>(parsed));
    EXPECT_EQ(errorOf(parsed).rfind("line 4:", 0), 0u) << errorOf(parsed);
}

TEST(ServiceTrace, SeedsCoverTheFull64BitRange)
{
    // Regression for the 19-digit parser cap: UINT64_MAX is 20 digits.
    const auto parsed = parseTrace(
        "veal-trace-v1\n"
        "submit tenant=0 seed=18446744073709551615\n");
    ASSERT_TRUE(std::holds_alternative<ServiceTrace>(parsed))
        << errorOf(parsed);
    EXPECT_EQ(std::get<ServiceTrace>(parsed).ticks[0][0].loop_seed,
              18446744073709551615ull);

    // One past UINT64_MAX must overflow, not wrap to 0.
    const auto over = parseTrace(
        "veal-trace-v1\n"
        "submit tenant=0 seed=18446744073709551616\n");
    ASSERT_TRUE(std::holds_alternative<std::string>(over));
    EXPECT_NE(errorOf(over).find("bad seed"), std::string::npos)
        << errorOf(over);
}

TEST(ServiceTrace, GeneratorDrawsSeedsAboveTheOld48BitMaskAndRoundTrips)
{
    // The generator used to mask pool seeds to 48 bits (hiding the
    // parser cap); with the mask lifted, full-width seeds must survive
    // the format/parse round trip byte-exactly.
    TraceGenOptions options;
    options.seed = 7;
    options.requests = 64;
    options.loop_pool = 32;
    const ServiceTrace trace = generateTrace(options);

    bool above_mask = false;
    for (const auto& tick : trace.ticks) {
        for (const auto& request : tick) {
            if (request.loop_seed > 0xffffffffffffull)
                above_mask = true;
        }
    }
    EXPECT_TRUE(above_mask) << "pool draws are full 64-bit values";

    const std::string text = formatTrace(trace);
    const auto parsed = parseTrace(text);
    ASSERT_TRUE(std::holds_alternative<ServiceTrace>(parsed))
        << errorOf(parsed);
    EXPECT_EQ(formatTrace(std::get<ServiceTrace>(parsed)), text);
}

TEST(ServiceTrace, TraceLoopsAreDeterministicAndKeyedBySeedAndMode)
{
    EXPECT_EQ(printLoop(makeTraceLoop(5)), printLoop(makeTraceLoop(5)));
    EXPECT_NE(printLoop(makeTraceLoop(5)), printLoop(makeTraceLoop(6)));

    TraceRequest request;
    request.loop_seed = 5;
    request.mode = TranslationMode::kStatic;
    const std::string key = traceRequestKey(request);
    EXPECT_EQ(key, "seed-5/static");
    request.mode = TranslationMode::kFullyDynamic;
    EXPECT_NE(traceRequestKey(request), key)
        << "the same loop under another mode is a distinct translation";
}

}  // namespace
}  // namespace veal
