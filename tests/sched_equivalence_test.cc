/**
 * Differential schedule-equivalence suite: the optimized translation
 * kernels against the frozen reference facade (sched/reference.h).
 *
 * The hot-path overhaul's contract is that every optimization is
 * *observationally* free: same RecMII, same node order, same schedule,
 * and bit-identical CostMeter charges per phase.  1000 seeded random
 * loops drive both paths through the full kernel pipeline (RecMII ->
 * swing/height priority -> modulo scheduling) and compare everything;
 * the produced schedules must also pass the oracle-grade validator.
 */

#include <gtest/gtest.h>

#include "veal/cca/cca_mapper.h"
#include "veal/ir/loop_analysis.h"
#include "veal/ir/random_loop.h"
#include "veal/sched/mii.h"
#include "veal/sched/reference.h"
#include "veal/sched/schedule.h"
#include "veal/sched/scheduler.h"
#include "veal/vm/translator.h"

namespace veal {
namespace {

constexpr int kCases = 1000;

/** Per-phase raw work units must match exactly, not approximately. */
void
expectChargesIdentical(const CostMeter& optimized,
                       const CostMeter& reference)
{
    for (int p = 0; p < kNumTranslationPhases; ++p) {
        const auto phase = static_cast<TranslationPhase>(p);
        EXPECT_EQ(optimized.units(phase), reference.units(phase))
            << "charge drift in phase " << toString(phase);
    }
}

/** Build the scheduling problem the way translateLoop does. */
struct KernelCase {
    LoopAnalysis analysis;
    CcaMapping mapping;
    std::optional<SchedGraph> graph;
};

bool
buildCase(const Loop& loop, const LaConfig& la, KernelCase* out)
{
    out->analysis = analyzeLoop(loop);
    if (!out->analysis.ok())
        return false;
    out->mapping = la.hasCca()
                       ? mapToCca(loop, out->analysis, *la.cca,
                                  la.latencies)
                       : emptyCcaMapping(loop);
    out->graph.emplace(loop, out->analysis, out->mapping, la);
    return true;
}

TEST(SchedEquivalence, KernelsMatchReferenceOnRandomLoops)
{
    const LaConfig la = LaConfig::proposed();
    RandomLoopParams params;
    int compared = 0;

    for (std::uint64_t seed = 0; seed < kCases; ++seed) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        const Loop loop = makeRandomLoop(params, seed);
        KernelCase kc;
        if (!buildCase(loop, la, &kc))
            continue;
        const SchedGraph& graph = kc.graph.value();

        CostMeter opt_meter;
        CostMeter ref_meter;

        // --- MII kernels.
        const int opt_rec = recMii(graph, &opt_meter);
        const int ref_rec = reference::recMii(graph, &ref_meter);
        ASSERT_EQ(opt_rec, ref_rec);

        const int res = resMii(graph, la);
        if (res >= LaConfig::kUnlimited)
            continue;  // Missing FU class: translation would reject.
        const int mii = std::max(res, opt_rec);

        // --- Feasibility probes agree at and below the bound.
        for (int ii = std::max(1, opt_rec - 1); ii <= opt_rec + 1; ++ii) {
            ASSERT_EQ(iiFeasible(graph, ii, &opt_meter),
                      reference::iiFeasible(graph, ii, &ref_meter));
        }

        // --- Priority: both orderings, with their exact charge trail.
        const NodeOrder opt_swing = computeSwingOrder(graph, mii,
                                                      &opt_meter);
        const NodeOrder ref_swing =
            reference::computeSwingOrder(graph, mii, &ref_meter);
        ASSERT_EQ(opt_swing.sequence, ref_swing.sequence);
        ASSERT_EQ(opt_swing.rank, ref_swing.rank);
        ASSERT_EQ(opt_swing.place_late, ref_swing.place_late);

        const NodeOrder opt_height = computeHeightOrder(graph, mii,
                                                        &opt_meter);
        const NodeOrder ref_height =
            reference::computeHeightOrder(graph, mii, &ref_meter);
        ASSERT_EQ(opt_height.sequence, ref_height.sequence);
        ASSERT_EQ(opt_height.place_late, ref_height.place_late);

        // --- The full modulo scheduler.
        SchedulerStats opt_stats;
        SchedulerStats ref_stats;
        const auto opt_schedule = scheduleLoop(graph, la, opt_swing, mii,
                                               &opt_meter, &opt_stats);
        const auto ref_schedule = reference::scheduleLoop(
            graph, la, ref_swing, mii, &ref_meter, &ref_stats);
        ASSERT_EQ(opt_schedule.has_value(), ref_schedule.has_value());
        ASSERT_EQ(opt_stats.attempted_iis, ref_stats.attempted_iis);
        ASSERT_EQ(opt_stats.placement_failures,
                  ref_stats.placement_failures);

        if (opt_schedule.has_value()) {
            // The ISSUE contract is II <= reference; the kernels are
            // deterministic twins, so assert the stronger property.
            EXPECT_LE(opt_schedule->ii, ref_schedule->ii);
            EXPECT_EQ(opt_schedule->ii, ref_schedule->ii);
            EXPECT_EQ(opt_schedule->time, ref_schedule->time);
            EXPECT_EQ(opt_schedule->fu_instance,
                      ref_schedule->fu_instance);
            EXPECT_EQ(opt_schedule->stage_count,
                      ref_schedule->stage_count);
            EXPECT_EQ(opt_schedule->length, ref_schedule->length);

            const auto error = validateSchedule(graph, la, *opt_schedule);
            EXPECT_FALSE(error.has_value()) << *error;
            ++compared;
        }

        expectChargesIdentical(opt_meter, ref_meter);
        if (::testing::Test::HasFailure())
            break;  // One diverging seed is enough to diagnose.
    }
    // The suite is vacuous if nearly everything rejects; keep a floor.
    EXPECT_GE(compared, kCases / 2);
}

TEST(SchedEquivalence, OracleGradeValidationOnProducedSchedules)
{
    // End-to-end: the production translator (all optimized kernels,
    // register-retry loop included) must emit schedules the oracle-grade
    // validator accepts, including register-file capacity.
    const LaConfig la = LaConfig::proposed();
    RandomLoopParams params;
    int validated = 0;
    for (std::uint64_t seed = 0; seed < 200; ++seed) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        const Loop loop = makeRandomLoop(params, seed);
        const auto result =
            translateLoop(loop, la, TranslationMode::kFullyDynamic);
        if (!result.ok)
            continue;
        ASSERT_TRUE(result.graph.has_value());
        const auto error =
            validateSchedule(*result.graph, la, result.schedule, loop,
                             result.analysis);
        EXPECT_FALSE(error.has_value()) << *error;
        ++validated;
    }
    EXPECT_GE(validated, 100);
}

TEST(SchedEquivalence, HeightOrderScheduleMatchesReference)
{
    // The height path (fully-dynamic-height mode, swing fallback) diffed
    // the same way, on a spread of seeds.
    const LaConfig la = LaConfig::proposed();
    RandomLoopParams params;
    for (std::uint64_t seed = 2000; seed < 2100; ++seed) {
        SCOPED_TRACE("seed=" + std::to_string(seed));
        const Loop loop = makeRandomLoop(params, seed);
        KernelCase kc;
        if (!buildCase(loop, la, &kc))
            continue;
        const SchedGraph& graph = kc.graph.value();
        const int res = resMii(graph, la);
        if (res >= LaConfig::kUnlimited)
            continue;

        CostMeter opt_meter;
        CostMeter ref_meter;
        const int mii = std::max(res, recMii(graph, &opt_meter));
        ASSERT_EQ(mii, std::max(res, reference::recMii(graph,
                                                       &ref_meter)));
        const NodeOrder opt_order =
            computeHeightOrder(graph, mii, &opt_meter);
        const NodeOrder ref_order =
            reference::computeHeightOrder(graph, mii, &ref_meter);
        const auto opt_schedule =
            scheduleLoop(graph, la, opt_order, mii, &opt_meter);
        const auto ref_schedule = reference::scheduleLoop(
            graph, la, ref_order, mii, &ref_meter);
        ASSERT_EQ(opt_schedule.has_value(), ref_schedule.has_value());
        if (opt_schedule.has_value()) {
            EXPECT_EQ(opt_schedule->ii, ref_schedule->ii);
            EXPECT_EQ(opt_schedule->time, ref_schedule->time);
        }
        expectChargesIdentical(opt_meter, ref_meter);
        if (::testing::Test::HasFailure())
            break;
    }
}

}  // namespace
}  // namespace veal
