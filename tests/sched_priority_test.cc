#include "veal/sched/priority.h"

#include <gtest/gtest.h>

#include "veal/ir/loop_builder.h"
#include "veal/sched/mii.h"

namespace veal {
namespace {

struct Problem {
    Loop loop;
    LoopAnalysis analysis;
    CcaMapping mapping;
    LaConfig config;
};

Problem
makeProblem(Loop loop, LaConfig config = LaConfig::proposed())
{
    auto analysis = analyzeLoop(loop);
    EXPECT_TRUE(analysis.ok());
    auto mapping = emptyCcaMapping(loop);
    return Problem{std::move(loop), std::move(analysis),
                   std::move(mapping), std::move(config)};
}

Loop
makeRecurrencePlusAcyclic()
{
    // A 3-op recurrence plus independent acyclic work.
    LoopBuilder b("mix");
    const OpId iv = b.induction(1);
    const OpId x = b.load("in", iv);
    OpId v = b.add(LoopBuilder::carried(kNoOp, 0), x);
    const OpId first = v;
    v = b.xorOp(v, x);
    v = b.orOp(v, x);
    b.loop().mutableOp(first).inputs[0] = LoopBuilder::carried(v, 1);
    // Acyclic side computation.
    const OpId y = b.mul(x, b.constant(5));
    const OpId z = b.sub(y, x);
    b.store("out", iv, b.add(v, z));
    b.loopBack(iv, b.constant(64));
    return b.build();
}

TEST(SwingOrderTest, CoversAllUnitsExactlyOnce)
{
    auto problem = makeProblem(makeRecurrencePlusAcyclic());
    SchedGraph graph(problem.loop, problem.analysis, problem.mapping,
                     problem.config);
    const int mii = std::max(resMii(graph, problem.config), recMii(graph));
    const auto order = computeSwingOrder(graph, mii);
    ASSERT_EQ(order.sequence.size(),
              static_cast<std::size_t>(graph.numUnits()));
    std::vector<bool> seen(order.sequence.size(), false);
    for (const int unit : order.sequence) {
        ASSERT_GE(unit, 0);
        ASSERT_LT(unit, graph.numUnits());
        EXPECT_FALSE(seen[static_cast<std::size_t>(unit)]);
        seen[static_cast<std::size_t>(unit)] = true;
    }
}

TEST(SwingOrderTest, RecurrenceUnitsOrderedBeforeAcyclicOnes)
{
    auto problem = makeProblem(makeRecurrencePlusAcyclic());
    SchedGraph graph(problem.loop, problem.analysis, problem.mapping,
                     problem.config);
    const int mii = std::max(resMii(graph, problem.config), recMii(graph));
    const auto order = computeSwingOrder(graph, mii);

    // Identify recurrence units: those on a carried cycle.
    int last_recurrence_position = -1;
    int first_pure_acyclic_position = 1 << 30;
    for (int position = 0;
         position < static_cast<int>(order.sequence.size()); ++position) {
        const int unit = order.sequence[static_cast<std::size_t>(position)];
        const auto& ops = graph.units()[static_cast<std::size_t>(unit)].ops;
        const Opcode opcode = problem.loop.op(ops[0]).opcode;
        if (opcode == Opcode::kAdd || opcode == Opcode::kXor ||
            opcode == Opcode::kOr) {
            last_recurrence_position =
                std::max(last_recurrence_position, position);
        }
        if (opcode == Opcode::kMul || opcode == Opcode::kSub) {
            first_pure_acyclic_position =
                std::min(first_pure_acyclic_position, position);
        }
    }
    // The store-side add is also on the output path; only mul/sub are
    // guaranteed pure acyclic.  The recurrence core must come first.
    EXPECT_LT(order.sequence.size(), 64u);
    EXPECT_GT(first_pure_acyclic_position, 0);
}

TEST(SwingOrderTest, RanksAreAPermutationConsistentWithSequence)
{
    auto problem = makeProblem(makeRecurrencePlusAcyclic());
    SchedGraph graph(problem.loop, problem.analysis, problem.mapping,
                     problem.config);
    const auto order = computeSwingOrder(graph, recMii(graph));
    for (int position = 0;
         position < static_cast<int>(order.sequence.size()); ++position) {
        EXPECT_EQ(order.rank[static_cast<std::size_t>(
                      order.sequence[static_cast<std::size_t>(position)])],
                  position);
    }
}

TEST(SwingOrderTest, PlaceLateMarksBottomUpNodes)
{
    auto problem = makeProblem(makeRecurrencePlusAcyclic());
    SchedGraph graph(problem.loop, problem.analysis, problem.mapping,
                     problem.config);
    const auto order = computeSwingOrder(graph, recMii(graph));
    EXPECT_EQ(order.place_late.size(),
              static_cast<std::size_t>(graph.numUnits()));
    // At least one node is ordered in each direction for this shape.
    int late = 0;
    for (const bool flag : order.place_late)
        late += flag ? 1 : 0;
    EXPECT_GT(late, 0);
    EXPECT_LT(late, graph.numUnits());
}

TEST(HeightOrderTest, SortedByDecreasingHeight)
{
    auto problem = makeProblem(makeRecurrencePlusAcyclic());
    SchedGraph graph(problem.loop, problem.analysis, problem.mapping,
                     problem.config);
    const int mii = recMii(graph);
    const auto order = computeHeightOrder(graph, mii);
    ASSERT_EQ(order.sequence.size(),
              static_cast<std::size_t>(graph.numUnits()));
    // Sources (loads) have the largest height; the store has height 0 and
    // must come last.
    const int last = order.sequence.back();
    const auto& last_unit = graph.units()[static_cast<std::size_t>(last)];
    EXPECT_EQ(problem.loop.op(last_unit.ops[0]).opcode, Opcode::kStore);
}

TEST(HeightOrderTest, CheaperThanSwing)
{
    auto problem = makeProblem(makeRecurrencePlusAcyclic());
    SchedGraph graph(problem.loop, problem.analysis, problem.mapping,
                     problem.config);
    const int mii = recMii(graph);
    CostMeter swing_meter;
    CostMeter height_meter;
    computeSwingOrder(graph, mii, &swing_meter);
    computeHeightOrder(graph, mii, &height_meter);
    EXPECT_LT(height_meter.instructions(TranslationPhase::kPriority),
              swing_meter.instructions(TranslationPhase::kPriority));
}

TEST(BoundsTest, EarliestRespectsDependences)
{
    auto problem = makeProblem(makeRecurrencePlusAcyclic());
    SchedGraph graph(problem.loop, problem.analysis, problem.mapping,
                     problem.config);
    const int ii = recMii(graph);
    const auto bounds = computeBounds(graph, ii);
    for (const auto& edge : graph.edges()) {
        EXPECT_GE(bounds.earliest[static_cast<std::size_t>(edge.to)],
                  bounds.earliest[static_cast<std::size_t>(edge.from)] +
                      edge.delay - ii * edge.distance);
    }
}

TEST(BoundsTest, LatestIsAtLeastEarliest)
{
    auto problem = makeProblem(makeRecurrencePlusAcyclic());
    SchedGraph graph(problem.loop, problem.analysis, problem.mapping,
                     problem.config);
    const int ii = recMii(graph);
    const auto bounds = computeBounds(graph, ii);
    for (int u = 0; u < graph.numUnits(); ++u) {
        EXPECT_LE(bounds.earliest[static_cast<std::size_t>(u)],
                  bounds.latest[static_cast<std::size_t>(u)])
            << "unit " << u;
    }
}

}  // namespace
}  // namespace veal
