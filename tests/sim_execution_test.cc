/**
 * Functional semantics and co-simulation: the reference interpreter
 * defines what a loop computes; every valid translation, executed
 * cycle-by-cycle on the accelerator model, must produce byte-identical
 * memory and live-out results.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "veal/ir/loop_builder.h"
#include "veal/ir/random_loop.h"
#include "veal/sim/interpreter.h"
#include "veal/sim/la_executor.h"
#include "veal/support/rng.h"
#include "veal/vm/translator.h"
#include "veal/workloads/kernels.h"

namespace veal {
namespace {

// ------------------------------------------------------------ interpreter

TEST(InterpreterTest, DotProductComputesTheSum)
{
    Loop loop = makeDotProductLoop("dot");
    ExecutionInput input;
    input.iterations = 8;
    // a[i] = i + 1, b[i] = 2: sum = 2 * (1 + ... + 8) = 72.
    // The loop's addresses start at iv = step after the first bump.
    for (int i = 0; i < 16; ++i) {
        input.memory["a"][i] = i;
        input.memory["b"][i] = 2;
    }
    const auto result = interpretLoop(loop, input);
    ASSERT_EQ(result.live_outs.size(), 1u);
    // Addresses are iv(n) = n + 1 for n in [0, 8): sum 2*(1+..+8) = 72.
    EXPECT_EQ(result.live_outs.begin()->second, 2 * (1 + 2 + 3 + 4 + 5 +
                                                     6 + 7 + 8));
}

TEST(InterpreterTest, StoresLandAtAffineAddresses)
{
    LoopBuilder b("addr");
    const OpId iv = b.induction(2);
    const OpId c3 = b.constant(3);
    const OpId v = b.mul(iv, c3);
    b.store("out", b.add(iv, b.constant(10)), v);
    b.loopBack(iv, b.constant(100));
    Loop loop = b.build();

    ExecutionInput input;
    input.iterations = 4;
    const auto result = interpretLoop(loop, input);
    // iv takes 2, 4, 6, 8; stores 3*iv at iv + 10.
    for (const std::int64_t iv_value : {2, 4, 6, 8}) {
        EXPECT_EQ(result.memory.at("out").at(iv_value + 10),
                  3 * iv_value);
    }
}

TEST(InterpreterTest, CarriedStateUsesInitialValues)
{
    LoopBuilder b("acc");
    const OpId iv = b.induction(1);
    const OpId x = b.load("in", iv);
    const OpId acc = b.add(x, LoopBuilder::carried(kNoOp, 0));
    b.loop().mutableOp(acc).inputs[1] = LoopBuilder::carried(acc, 1);
    b.markLiveOut(acc);
    b.loopBack(iv, b.constant(16));
    Loop loop = b.build();

    ExecutionInput input;
    input.iterations = 3;
    input.initial[acc] = 100;
    for (int i = 0; i < 8; ++i)
        input.memory["in"][i] = 1;
    const auto result = interpretLoop(loop, input);
    EXPECT_EQ(result.live_outs.at(acc), 103);
}

TEST(InterpreterTest, FloatingPointRoundTrips)
{
    LoopBuilder b("fp");
    const OpId iv = b.induction(1);
    const OpId x = b.load("in", iv);
    const OpId f = b.itof(x);
    const OpId scaled = b.fmul(f, b.itof(b.constant(3)));
    const OpId back = b.ftoi(scaled);
    b.store("out", iv, back);
    b.loopBack(iv, b.constant(8));
    Loop loop = b.build();

    ExecutionInput input;
    input.iterations = 2;
    input.memory["in"][1] = 7;
    input.memory["in"][2] = -4;
    const auto result = interpretLoop(loop, input);
    EXPECT_EQ(result.memory.at("out").at(1), 21);
    EXPECT_EQ(result.memory.at("out").at(2), -12);
}

TEST(InterpreterTest, SelectAndCompareSemantics)
{
    EXPECT_EQ(evaluateOp(Opcode::kCmp, {3, 5}, 0), 1);
    EXPECT_EQ(evaluateOp(Opcode::kCmp, {5, 3}, 0), 0);
    EXPECT_EQ(evaluateOp(Opcode::kSelect, {1, 10, 20}, 0), 10);
    EXPECT_EQ(evaluateOp(Opcode::kSelect, {0, 10, 20}, 0), 20);
    EXPECT_EQ(evaluateOp(Opcode::kMin, {-2, 7}, 0), -2);
    EXPECT_EQ(evaluateOp(Opcode::kMax, {-2, 7}, 0), 7);
    EXPECT_EQ(evaluateOp(Opcode::kAbs, {-9}, 0), 9);
    EXPECT_EQ(evaluateOp(Opcode::kDiv, {10, 0}, 0), 0);  // Guarded.
}

// ----------------------------------------------------------- co-simulation

ExecutionInput
randomInput(const Loop& loop, std::uint64_t seed, std::int64_t iterations,
            bool with_initial = true)
{
    Rng rng(seed * 77 + 5);
    ExecutionInput input;
    input.iterations = iterations;
    for (const auto& op : loop.operations()) {
        if (op.opcode == Opcode::kLiveIn)
            input.live_ins[op.id] = rng.nextInRange(-64, 64);
        if (with_initial && (op.is_induction || !op.inputs.empty())) {
            // Seed carried state for any op that might be read at
            // negative iterations.
            input.initial[op.id] = rng.nextInRange(-16, 16);
        }
        if (op.opcode == Opcode::kLoad) {
            // Populate a generous window of the source array.
            for (std::int64_t index = -64; index < 512; ++index) {
                input.memory[op.symbol][index] =
                    rng.nextInRange(-100, 100);
            }
        }
    }
    return input;
}

void
expectSameResults(const ExecutionResult& reference,
                  const ExecutionResult& accelerated)
{
    ASSERT_EQ(reference.live_outs.size(), accelerated.live_outs.size());
    for (const auto& [op, value] : reference.live_outs) {
        ASSERT_TRUE(accelerated.live_outs.contains(op));
        EXPECT_EQ(accelerated.live_outs.at(op), value) << "live-out " << op;
    }
    ASSERT_EQ(reference.memory.size(), accelerated.memory.size());
    for (const auto& [array, contents] : reference.memory) {
        ASSERT_TRUE(accelerated.memory.contains(array)) << array;
        const auto& other = accelerated.memory.at(array);
        ASSERT_EQ(contents.size(), other.size()) << array;
        for (const auto& [address, value] : contents) {
            ASSERT_TRUE(other.contains(address))
                << array << "[" << address << "]";
            EXPECT_EQ(other.at(address), value)
                << array << "[" << address << "]";
        }
    }
}

void
cosim(const Loop& loop, std::uint64_t seed, TranslationMode mode)
{
    const LaConfig la = LaConfig::proposed();
    StaticAnnotations annotations;
    const StaticAnnotations* annotations_ptr = nullptr;
    if (mode == TranslationMode::kHybridStaticCcaPriority) {
        annotations = precompileAnnotations(loop, la);
        annotations_ptr = &annotations;
    }
    const auto tr = translateLoop(loop, la, mode, annotations_ptr);
    if (!tr.ok)
        GTEST_SKIP() << "not mappable: " << toString(tr.reject);

    const auto input = randomInput(loop, seed, 25);
    const auto reference = interpretLoop(loop, input);
    const auto accelerated = executeOnAccelerator(loop, tr, input);
    expectSameResults(reference, accelerated);
}

TEST(CosimTest, Figure5StyleLoopMatches)
{
    cosim(makeAdpcmStepLoop("adpcm"), 1, TranslationMode::kFullyDynamic);
}

TEST(CosimTest, KernelsMatchUnderFullyDynamic)
{
    cosim(makeFirLoop("fir", 4), 2, TranslationMode::kFullyDynamic);
    cosim(makeWaveletLiftLoop("wave"), 3, TranslationMode::kFullyDynamic);
    cosim(makeQuantLoop("quant"), 4, TranslationMode::kFullyDynamic);
    cosim(makeViterbiAcsLoop("vit"), 5, TranslationMode::kFullyDynamic);
    cosim(makeDct8Loop("dct", 1), 6, TranslationMode::kFullyDynamic);
    cosim(makeShaMixLoop("sha", 2), 7, TranslationMode::kFullyDynamic);
}

TEST(CosimTest, FpKernelsMatch)
{
    cosim(makeStencil5Loop("sten"), 8, TranslationMode::kFullyDynamic);
    cosim(makeMatVecLoop("mv", 3, 3), 9, TranslationMode::kFullyDynamic);
    cosim(makeDotProductLoop("dot"), 10, TranslationMode::kFullyDynamic);
}

struct CosimCase {
    std::uint64_t seed;
    TranslationMode mode;
};

class RandomCosim : public ::testing::TestWithParam<CosimCase> {};

TEST_P(RandomCosim, RandomLoopsMatch)
{
    RandomLoopParams params;
    params.max_compute_ops = 24;
    Loop loop = makeRandomLoop(params, GetParam().seed);
    cosim(loop, GetParam().seed, GetParam().mode);
}

std::vector<CosimCase>
cosimCases()
{
    std::vector<CosimCase> cases;
    for (std::uint64_t seed = 200; seed < 240; ++seed) {
        const auto mode =
            seed % 3 == 0
                ? TranslationMode::kFullyDynamic
                : (seed % 3 == 1
                       ? TranslationMode::kFullyDynamicHeight
                       : TranslationMode::kHybridStaticCcaPriority);
        cases.push_back(CosimCase{seed, mode});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCosim,
                         ::testing::ValuesIn(cosimCases()));

TEST(CosimTest, FissionedPipelineMatchesWholeLoop)
{
    // Run the fissioned pieces in sequence (sharing memory) and compare
    // the final state against interpreting the original loop.
    Loop stencil = makeStencilNLoop("sten20", 20);
    FissionBudget budget;
    budget.max_load_streams = 16;
    budget.max_store_streams = 8;
    budget.max_fp_ops = 24;
    const auto fission = fissionLoop(stencil, budget);
    ASSERT_TRUE(fission.has_value());

    // No carried-state seeding: the fissioned pieces renumber ops, so
    // only the (zero) default initial state is common to both versions.
    auto input = randomInput(stencil, 99, 20, /*with_initial=*/false);
    const auto reference = interpretLoop(stencil, input);

    // Fission renumbers live-ins too: rebind their values by name.
    std::map<std::string, std::int64_t> live_in_by_name;
    for (const auto& op : stencil.operations()) {
        if (op.opcode == Opcode::kLiveIn)
            live_in_by_name[op.symbol] = input.live_ins[op.id];
    }

    ExecutionInput piece_input = input;
    ExecutionResult last;
    for (const auto& piece : fission->loops) {
        const auto tr = translateLoop(piece, LaConfig::proposed(),
                                      TranslationMode::kFullyDynamic);
        ASSERT_TRUE(tr.ok) << piece.name() << ": " << toString(tr.reject);
        piece_input.live_ins.clear();
        for (const auto& op : piece.operations()) {
            if (op.opcode == Opcode::kLiveIn)
                piece_input.live_ins[op.id] = live_in_by_name[op.symbol];
        }
        last = executeOnAccelerator(piece, tr, piece_input);
        piece_input.memory = last.memory;  // Pipe through memory.
    }

    // The original loop's outputs must appear identically; comm arrays
    // are extra.
    for (const auto& [array, contents] : reference.memory) {
        for (const auto& [address, value] : contents) {
            ASSERT_TRUE(last.memory.contains(array)) << array;
            EXPECT_EQ(last.memory.at(array).at(address), value)
                << array << "[" << address << "]";
        }
    }
}

}  // namespace
}  // namespace veal
